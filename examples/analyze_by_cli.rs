//! A tiny `ANALYZE BY` shell over generated data (Section 5's language).
//!
//! Pass a query as the first argument to run it; with no arguments, a demo
//! script exercises every clause the paper proposes, including an external
//! base table loaded from CSV (Example 2.4).
//!
//! Run with:
//!   cargo run -p mdj-app --example analyze_by_cli
//!   cargo run -p mdj-app --example analyze_by_cli -- \
//!     "select prod, month, sum(sale) from Sales analyze by cube(prod, month)"

use mdj_datagen::{sales, SalesConfig};
use mdj_sql::SqlEngine;
use mdj_storage::{csv, Catalog, DataType, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sales_rel = sales(
        &SalesConfig::default()
            .with_rows(20_000)
            .with_products(5)
            .with_states(4),
    );
    let mut catalog = Catalog::new();
    catalog.register("Sales", sales_rel);

    // Example 2.4: "the total sale at certain points of a data cube, given to
    // us in a precomputed datafile". ALL marks rolled-up dimensions.
    let t_csv = "prod,month\n1,ALL\n2,ALL\nALL,6\nALL,12\n";
    let t_schema = Schema::from_pairs(&[("prod", DataType::Int), ("month", DataType::Int)]);
    catalog.register("T", csv::read_str(t_csv, &t_schema)?);

    let engine = SqlEngine::new(catalog);

    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(q) = args.first() {
        run(&engine, q);
        return Ok(());
    }

    for q in [
        // Plain group-by.
        "select prod, sum(sale), count(*) from Sales group by prod",
        // Example 2.1: the full cube.
        "select prod, month, sum(sale) from Sales analyze by cube(prod, month)",
        // The unpivot marginals [GFC98].
        "select prod, month, state, sum(sale) from Sales analyze by unpivot(prod, month, state)",
        // SQL99 grouping sets.
        "select prod, state, sum(sale) from Sales analyze by grouping sets ((prod), (state))",
        // SQL99 rollup.
        "select prod, month, sum(sale) from Sales analyze by rollup(prod, month)",
        // Example 2.4: externally supplied cube points.
        "select prod, month, sum(sale) from Sales analyze by T(prod, month)",
        // Example 2.3 flavored: count above the per-product average.
        "select prod, count(Z.*) as above_avg from Sales group by prod ; Z \
         such that Z.prod = prod and Z.sale > avg(sale)",
        // Presentation clauses: top-3 states by revenue.
        "select state, sum(sale) from Sales group by state order by sum_sale desc limit 3",
    ] {
        run(&engine, q);
    }
    Ok(())
}

fn run(engine: &SqlEngine, q: &str) {
    println!("mdj> {q}");
    match engine.query(q) {
        Ok(rel) => {
            let n = rel.len();
            let head = mdj_storage::Relation::from_rows(
                rel.schema().clone(),
                rel.rows().iter().take(8).cloned().collect(),
            );
            println!("{head}({n} rows)\n");
        }
        Err(e) => println!("error: {e}\n"),
    }
}
