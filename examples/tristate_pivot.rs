//! Example 2.2 from the paper — the tri-state pivot — comparing the MD-join
//! formulation against the multi-block SQL a classical engine must run.
//!
//! "Suppose that we want to compute for each customer the average sale in
//! 'NY', in 'NJ' and in 'CT'. … This type of query is cumbersome to express
//! in SQL because the definition of aggregation is tied to the definition of
//! the groups."
//!
//! Run with: `cargo run -p mdj-app --example tristate_pivot --release`

use mdj_agg::Registry;
use mdj_datagen::{sales, SalesConfig};
use mdj_sql::SqlEngine;
use mdj_storage::Catalog;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = 200_000;
    let sales_rel = sales(
        &SalesConfig::default()
            .with_rows(rows)
            .with_customers(2_000)
            .with_states(10),
    );
    println!("Sales: {rows} rows, {} customers\n", 2_000);

    // --- MD-join path: grouping variables, coalesced to ONE scan. ---------
    let mut catalog = Catalog::new();
    catalog.register("Sales", sales_rel.clone());
    let engine = SqlEngine::new(catalog);
    let sql = "select cust, avg(X.sale) as avg_ny, avg(Y.sale) as avg_nj, avg(Z.sale) as avg_ct \
               from Sales group by cust ; X, Y, Z \
               such that X.cust = cust and X.state = 'NY', \
                         Y.cust = cust and Y.state = 'NJ', \
                         Z.cust = cust and Z.state = 'CT'";
    let t0 = Instant::now();
    let md_out = engine.query(sql)?;
    let md_time = t0.elapsed();
    println!(
        "MD-join (generalized, single scan): {md_time:?}  → {} rows",
        md_out.len()
    );
    println!("{}", engine.explain(sql)?);

    // --- Classical path: 4 subqueries + 3 outer joins (the paper's SQL). --
    let t0 = Instant::now();
    let naive_out = mdj_naive::plans::example_2_2(&sales_rel, &Registry::standard())?;
    let naive_time = t0.elapsed();
    println!(
        "Classical multi-block plan:          {naive_time:?}  → {} rows",
        naive_out.len()
    );

    // --- They agree. -------------------------------------------------------
    let cols = ["cust", "avg_ny", "avg_nj", "avg_ct"];
    let a = md_out.project(&cols)?;
    let b = naive_out.project(&cols)?;
    assert!(a.same_multiset(&b), "outputs diverge!");
    println!(
        "\nOutputs identical ({} customers). Speedup: {:.1}×",
        a.len(),
        naive_time.as_secs_f64() / md_time.as_secs_f64().max(1e-9)
    );

    // Show a few rows, Figure-1(b)-style.
    let head = mdj_storage::Relation::from_rows(
        a.schema().clone(),
        a.rows().iter().take(6).cloned().collect(),
    );
    println!("\n{head}");
    Ok(())
}
