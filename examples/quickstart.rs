//! Quickstart: the MD-join in five minutes.
//!
//! Builds a small Sales table, then shows the same query three ways:
//! 1. the raw operator API (the [`MdJoin`] builder from `mdj_core::prelude`),
//! 2. the algebra / optimizer API (`mdj_algebra::Plan`),
//! 3. the SQL surface (`mdj_sql::SqlEngine`).
//!
//! Run with: `cargo run -p mdj-app --example quickstart`

use mdj_algebra::{execute, explain::explain, optimize, Plan};
use mdj_core::prelude::*;
use mdj_datagen::{sales, SalesConfig};
use mdj_sql::SqlEngine;
use mdj_storage::Catalog;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sales_rel = sales(&SalesConfig::default().with_rows(1_000).with_customers(8));
    println!(
        "Sales: {} rows, schema {}\n",
        sales_rel.len(),
        sales_rel.schema()
    );

    // ------------------------------------------------------------------
    // 1. The operator itself: MD(B, R, l, θ).
    //    B = distinct customers; θ = Sales.cust = cust; l = avg, count.
    // ------------------------------------------------------------------
    let b = sales_rel.distinct_on(&["cust"])?;
    let ctx = ExecContext::new();
    let out = MdJoin::new(&b, &sales_rel)
        .theta(eq(col_b("cust"), col_r("cust")))
        .agg("avg(sale) as avg_sale")?
        .agg("count(*) as purchases")?
        .run(&ctx)?;
    println!("1) Operator API — per-customer averages:\n{out}");

    // The same builder drives every execution strategy; here the morsel
    // executor (work-stealing, 4 workers), with per-worker counters.
    let stats = Arc::new(ScanStats::new());
    let pctx = ExecContext::new().with_stats(stats.clone());
    let par = MdJoin::new(&b, &sales_rel)
        .theta(eq(col_b("cust"), col_r("cust")))
        .agg("avg(sale) as avg_sale")?
        .agg("count(*) as purchases")?
        .strategy(ExecStrategy::Morsel)
        .threads(4)
        .run(&pctx)?;
    assert_eq!(out, par); // morsel output is row-identical to serial
    println!("   Same answer on the morsel executor; per-worker counters:");
    for w in stats.workers() {
        println!("     {w}");
    }
    println!();

    // ------------------------------------------------------------------
    // 2. The algebra: same query as a plan, plus a more interesting one —
    //    Example 2.2's tri-state pivot as a series of MD-joins, which the
    //    optimizer coalesces into ONE scan (Theorem 4.3).
    // ------------------------------------------------------------------
    let mut catalog = Catalog::new();
    catalog.register("Sales", sales_rel.clone());
    let mut plan = Plan::table("Sales").group_by_base(&["cust"]);
    for st in ["NY", "NJ", "CT"] {
        plan =
            plan.md_join(
                Plan::table("Sales"),
                vec![AggSpec::on_column("avg", "sale")
                    .with_alias(format!("avg_{}", st.to_lowercase()))],
                and(
                    eq(col_r("cust"), col_b("cust")),
                    eq(col_r("state"), lit(st)),
                ),
            );
    }
    println!(
        "2) Logical plan (3 MD-joins = 3 scans):\n{}",
        explain(&plan)
    );
    let registry = ctx.registry().clone();
    let optimized = optimize(plan, &catalog, &registry)?;
    println!(
        "   After optimization (1 generalized MD-join = 1 scan):\n{}",
        explain(&optimized)
    );
    let pivot = execute(&optimized, &catalog, &ctx)?;
    println!("   Tri-state pivot (first 5 rows):");
    print_first(&pivot, 5);

    // ------------------------------------------------------------------
    // 3. The SQL surface (Section 5 of the paper).
    // ------------------------------------------------------------------
    let engine = SqlEngine::new(catalog);
    let out =
        engine.query("select prod, month, sum(sale) from Sales analyze by cube(prod, month)")?;
    println!(
        "3) SQL `ANALYZE BY cube(prod, month)` — {} cube cells; first 8:",
        out.len()
    );
    print_first(&out, 8);

    Ok(())
}

fn print_first(rel: &Relation, n: usize) {
    let head = Relation::from_rows(
        rel.schema().clone(),
        rel.rows().iter().take(n).cloned().collect(),
    );
    println!("{head}");
}
