//! Cube computation four ways (Section 4.4 / Figure 2).
//!
//! Computes `sum(sale), count(*)` over the cube of (prod, month, state) with:
//!   1. the wildcard-θ MD-join (direct Example 2.1 reading, nested loop),
//!   2. per-cuboid MD-joins (Theorem 4.1 expansion, hash probes),
//!   3. roll-up chains (Theorem 4.5 — detail scanned once),
//!   4. PIPESORT pipelines (Figure 2 — sorts instead of hashes),
//!   5. the Ross–Srivastava partitioned cube (Thm 4.1 + Obs 4.1 + Thm 4.5).
//!
//! All five agree; the timings show why the algebra matters.
//!
//! Run with: `cargo run -p mdj-app --example cube_explorer --release`

use mdj_core::prelude::*;
use mdj_cube::{
    naive::{cube_per_cuboid, cube_via_wildcard_theta},
    partitioned::cube_partitioned,
    pipesort::{build_pipelines, cube_pipesort, sort_count},
    rollup_chain::cube_rollup_chain,
    CubeSpec,
};
use mdj_datagen::{sales, SalesConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 10k rows keeps the deliberately-slow wildcard-θ variant to a few
    // seconds; the optimized algorithms barely notice the size.
    let sales_rel = sales(
        &SalesConfig::default()
            .with_rows(10_000)
            .with_products(20)
            .with_states(8),
    );
    let spec = CubeSpec::new(
        &["prod", "month", "state"],
        vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
    );
    let ctx = ExecContext::new();
    println!(
        "Cube over (prod, month, state): {} cuboids, detail = {} rows\n",
        spec.lattice().cuboid_count(),
        sales_rel.len()
    );

    let time = |name: &str, f: &dyn Fn() -> mdj_storage::Relation| {
        let t0 = Instant::now();
        let out = f();
        println!("{name:<28} {:>10.2?}  ({} cells)", t0.elapsed(), out.len());
        out
    };

    let wildcard = time("wildcard-θ MD-join", &|| {
        cube_via_wildcard_theta(&sales_rel, &spec, &ctx).expect("wildcard cube")
    });
    let per_cuboid = time("per-cuboid (Thm 4.1)", &|| {
        cube_per_cuboid(&sales_rel, &spec, &ctx).expect("per-cuboid cube")
    });
    let rollup = time("roll-up chain (Thm 4.5)", &|| {
        cube_rollup_chain(&sales_rel, &spec, &ctx).expect("rollup cube")
    });
    let pipesorted = time("PIPESORT (Fig. 2)", &|| {
        cube_pipesort(&sales_rel, &spec, &ctx).expect("pipesort cube")
    });
    let parted = time("partitioned (RS96)", &|| {
        cube_partitioned(&sales_rel, &spec, 0, &ctx).expect("partitioned cube")
    });

    // Compare with float tolerance: different plans sum floats in different
    // orders, so totals agree mathematically but not bit-for-bit.
    assert!(wildcard.approx_same_multiset(&per_cuboid, 1e-9));
    assert!(per_cuboid.approx_same_multiset(&rollup, 1e-9));
    assert!(rollup.approx_same_multiset(&pipesorted, 1e-9));
    assert!(pipesorted.approx_same_multiset(&parted, 1e-9));
    println!("\nAll five algorithms agree.");

    let pipelines = build_pipelines(&spec);
    println!(
        "PIPESORT used {} sorts to cover {} cuboids:",
        sort_count(&pipelines),
        spec.lattice().cuboid_count()
    );
    for p in &pipelines {
        let names: Vec<&str> = p.order.iter().map(|&d| spec.dims[d].as_str()).collect();
        println!(
            "  order ({}) emits prefixes {:?}",
            names.join(", "),
            p.prefixes
        );
    }

    // Figure 1 style peek: the apex and the per-product marginals.
    println!("\nSelected cube cells (Figure 1 style):");
    let mut shown = 0;
    for row in rollup.iter() {
        let is_marginal = row[1].is_all() && row[2].is_all();
        let is_apex = row[0].is_all() && is_marginal;
        if is_apex || (is_marginal && shown < 5) {
            println!(
                "  prod={:<4} month={:<4} state={:<4} sum(sale)={:<12} count={}",
                row[0], row[1], row[2], row[3], row[4]
            );
            if !is_apex {
                shown += 1;
            }
        }
    }

    // Sanity: apex count equals the table size.
    let apex = rollup
        .iter()
        .find(|r| r[0].is_all() && r[1].is_all() && r[2].is_all())
        .expect("apex exists");
    assert_eq!(apex[4], Value::Int(sales_rel.len() as i64));
    Ok(())
}
