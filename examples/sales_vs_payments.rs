//! Example 3.3 — multiple fact tables — and Theorem 4.4's distributed
//! evaluation.
//!
//! "A complex operation may involve different detail tables … a user wants to
//! know the total sales and payments for each customer and month."
//!
//! The chain `MD(MD(B, Sales, sum(sale), θ₁), Payments, sum(amount), θ₂)`
//! splits (Theorem 4.4) into an equijoin of two independent MD-joins — which
//! is exactly what lets each fact table be aggregated "at its own site" and
//! in parallel (the paper's Trenton/Albany example).
//!
//! Run with: `cargo run -p mdj-app --example sales_vs_payments --release`

use mdj_agg::Registry;
use mdj_algebra::{execute, explain::explain, rules::split_into_join, Plan};
use mdj_core::prelude::*;
use mdj_datagen::{payments, sales, PaymentsConfig, SalesConfig};
use mdj_storage::Catalog;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = 100_000;
    let sales_rel = sales(&SalesConfig::default().with_rows(rows).with_customers(500));
    let payments_rel = payments(
        &PaymentsConfig::default()
            .with_rows(rows)
            .with_customers(500),
    );
    let mut catalog = Catalog::new();
    catalog.register("Sales", sales_rel.clone());
    catalog.register("Payments", payments_rel);
    let ctx = ExecContext::new();
    let registry = Registry::standard();

    // The chain, verbatim from Example 3.3.
    let theta = |tbl: &str| {
        and(
            eq(col_r(format!("{tbl}.cust")), col_b("cust")),
            eq(col_r(format!("{tbl}.month")), col_b("month")),
        )
    };
    let _ = theta; // (qualified names are resolved by base-name matching)
    let chain = Plan::table("Sales")
        .group_by_base(&["cust", "month"])
        .md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale")],
            and(
                eq(col_r("cust"), col_b("cust")),
                eq(col_r("month"), col_b("month")),
            ),
        )
        .md_join(
            Plan::table("Payments"),
            vec![AggSpec::on_column("sum", "amount")],
            and(
                eq(col_r("cust"), col_b("cust")),
                eq(col_r("month"), col_b("month")),
            ),
        );

    let t0 = Instant::now();
    let sequential = execute(&chain, &catalog, &ctx)?;
    println!(
        "Sequential chain:       {:?}  → {} rows",
        t0.elapsed(),
        sequential.len()
    );

    // Theorem 4.4: split into an equijoin of independent MD-joins.
    let split = split_into_join(&chain, &catalog, &registry)?;
    println!("\nSplit plan (Theorem 4.4):\n{}", explain(&split));
    let t0 = Instant::now();
    let split_out = execute(&split, &catalog, &ctx)?;
    println!(
        "Split evaluation:       {:?}  → {} rows",
        t0.elapsed(),
        split_out.len()
    );
    assert!(sequential.same_multiset(&split_out));

    // Intra-operator parallelism on the Sales side (Theorem 4.1 / §4.1.2):
    let b = sales_rel.distinct_on(&["cust", "month"])?;
    let theta = and(
        eq(col_r("cust"), col_b("cust")),
        eq(col_r("month"), col_b("month")),
    );
    let l = [AggSpec::on_column("sum", "sale")];
    let join = MdJoin::new(&b, &sales_rel).aggs(&l).theta(theta);
    for threads in [1, 2, 4] {
        let t0 = Instant::now();
        let out = join
            .clone()
            .strategy(ExecStrategy::Morsel)
            .threads(threads)
            .run(&ctx)?;
        println!(
            "Sales MD-join, {threads} thread(s): {:?} → {} rows",
            t0.elapsed(),
            out.len()
        );
    }

    // Show a few rows.
    let head = mdj_storage::Relation::from_rows(
        sequential.schema().clone(),
        sequential.rows().iter().take(5).cloned().collect(),
    );
    println!("\nPer-(cust, month) totals (sales vs payments):\n{head}");
    Ok(())
}
