//! # mdj-app
//!
//! Facade crate: re-exports the whole MD-join stack under one name and hosts
//! the repository-level `examples/` and `tests/` targets.
//!
//! Layering (bottom to top):
//!
//! * [`storage`] — relations, values (incl. `ALL`), schemas, indexes.
//! * [`expr`] — θ-condition AST, evaluation, and analysis.
//! * [`agg`] — aggregate functions (distributive/algebraic/holistic, UDAFs).
//! * [`core`] — the MD-join operator: Algorithm 3.1, generalized MD-join,
//!   base-values builders, partitioned & parallel evaluation.
//! * [`naive`] — classical relational operators (baseline + test oracle).
//! * [`algebra`] — plans, the paper's transformation rules, optimizer.
//! * [`cube`] — cube algorithms (naive, roll-up chain, PIPESORT, partitioned).
//! * [`sql`] — the `ANALYZE BY` / grouping-variable SQL frontend.
//! * [`datagen`] — seeded Sales/Payments generators.

pub use mdj_agg as agg;
pub use mdj_algebra as algebra;
pub use mdj_core as core;
pub use mdj_cube as cube;
pub use mdj_datagen as datagen;
pub use mdj_expr as expr;
pub use mdj_naive as naive;
pub use mdj_sql as sql;
pub use mdj_storage as storage;

/// A ready-to-use engine over freshly generated Sales + Payments tables —
/// the common setup of the examples and integration tests.
pub fn demo_engine(rows: usize, seed: u64) -> mdj_sql::SqlEngine {
    let sales = mdj_datagen::sales(
        &mdj_datagen::SalesConfig::default()
            .with_rows(rows)
            .with_seed(seed),
    );
    let payments = mdj_datagen::payments(
        &mdj_datagen::PaymentsConfig::default()
            .with_rows(rows)
            .with_seed(seed ^ 0xBEEF),
    );
    let mut catalog = mdj_storage::Catalog::new();
    catalog.register("Sales", sales);
    catalog.register("Payments", payments);
    mdj_sql::SqlEngine::new(catalog)
}

#[cfg(test)]
mod tests {
    #[test]
    fn demo_engine_is_queryable() {
        let e = super::demo_engine(500, 1);
        let out = e.query("select count(*) from Sales").unwrap();
        assert_eq!(out.rows()[0][0], mdj_storage::Value::Int(500));
        let out = e.query("select count(*) from Payments").unwrap();
        assert_eq!(out.rows()[0][0], mdj_storage::Value::Int(500));
    }
}
