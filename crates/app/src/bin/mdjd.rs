//! `mdjd` — the multi-tenant MD-join query server daemon.
//!
//! Boots a [`mdj_server::Server`] over generated `Sales` and `Payments`
//! tables and serves the line-delimited JSON protocol (see
//! `crates/server/src/wire.rs`) on a TCP port. All sessions share one
//! immutable engine configuration; per-query memory budgets are drawn from
//! a global pool with bounded-queue admission control.
//!
//! ```text
//! cargo run -p mdj-app --bin mdjd --release -- [flags]
//!
//!   --port N        listen port (default 7450; 0 = ephemeral)
//!   --rows N        generated rows per table (default 20000)
//!   --pool BYTES    global memory pool capacity (default 268435456)
//!   --budget BYTES  default per-query budget (default 16777216)
//!   --queue N       max queries waiting for admission (default 32)
//!   --wait MS       max admission wait before PoolExhausted (default 500)
//!   --deadline MS   default per-query deadline (default 30000; 0 = none)
//!   --self-test     boot on an ephemeral port, run a scripted smoke
//!                   session (ping/open/prepare/execute/cancel/shed/close)
//!                   against the real socket, and exit nonzero on failure
//! ```
//!
//! The `--self-test` mode is what CI runs: it exercises the full TCP path —
//! prepared statements, parameter binding, mid-flight cancellation, typed
//! load shedding (`deadline_exceeded`, `pool_exhausted`) — and asserts the
//! pool drains back to zero bytes.

use mdj_core::EngineConfig;
use mdj_server::{QueryService, Server, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Args {
    port: u16,
    rows: usize,
    pool: usize,
    budget: usize,
    queue: usize,
    wait_ms: u64,
    deadline_ms: u64,
    self_test: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            port: 7450,
            rows: 20_000,
            pool: 256 << 20,
            budget: 16 << 20,
            queue: 32,
            wait_ms: 500,
            deadline_ms: 30_000,
            self_test: false,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut numeric = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a numeric argument")))
        };
        match flag.as_str() {
            "--port" => args.port = numeric("--port") as u16,
            "--rows" => args.rows = numeric("--rows") as usize,
            "--pool" => args.pool = numeric("--pool") as usize,
            "--budget" => args.budget = numeric("--budget") as usize,
            "--queue" => args.queue = numeric("--queue") as usize,
            "--wait" => args.wait_ms = numeric("--wait"),
            "--deadline" => args.deadline_ms = numeric("--deadline"),
            "--self-test" => args.self_test = true,
            "--help" | "-h" => {
                println!("usage: mdjd [--port N] [--rows N] [--pool BYTES] [--budget BYTES] [--queue N] [--wait MS] [--deadline MS] [--self-test]");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("mdjd: {msg}");
    std::process::exit(2);
}

fn build_service(args: &Args) -> Arc<QueryService> {
    let sales = mdj_datagen::sales(&mdj_datagen::SalesConfig::default().with_rows(args.rows));
    let payments =
        mdj_datagen::payments(&mdj_datagen::PaymentsConfig::default().with_rows(args.rows));
    let engine = EngineConfig::new()
        .register_table("Sales", sales)
        .register_table("Payments", payments)
        .build();
    let config = ServiceConfig {
        pool_bytes: args.pool,
        default_budget: args.budget,
        max_waiters: args.queue,
        admission_wait: Duration::from_millis(args.wait_ms),
        default_deadline: match args.deadline_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
    };
    Arc::new(QueryService::new(engine, config))
}

fn main() {
    let args = parse_args();
    if args.self_test {
        self_test::run(&args);
        return;
    }
    let service = build_service(&args);
    let server = Server::bind(("0.0.0.0", args.port), service)
        .unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    println!(
        "mdjd listening on {} ({} rows/table, pool {} MiB, queue {}, wait {} ms)",
        server.local_addr(),
        args.rows,
        args.pool >> 20,
        args.queue,
        args.wait_ms,
    );
    loop {
        std::thread::park();
    }
}

/// The CI smoke session: a scripted client driving the real TCP socket.
mod self_test {
    use super::{build_service, Args};
    use mdj_server::Server;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{SocketAddr, TcpStream};

    /// One line-delimited JSON client connection.
    struct Client {
        writer: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let writer = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(writer.try_clone().expect("clone"));
            Client { writer, reader }
        }

        fn send(&mut self, line: &str) -> String {
            self.writer.write_all(line.as_bytes()).expect("write");
            self.writer.write_all(b"\n").expect("write");
            self.writer.flush().expect("flush");
            let mut resp = String::new();
            self.reader.read_line(&mut resp).expect("read");
            resp
        }
    }

    fn check(step: &str, resp: &str, needle: &str) {
        if !resp.contains(needle) {
            eprintln!("mdjd self-test FAILED at `{step}`:\n  expected substring: {needle}\n  response: {resp}");
            std::process::exit(1);
        }
        println!("ok: {step}");
    }

    fn int_field(resp: &str, key: &str) -> i64 {
        // The wire format is single-line JSON with sorted keys; a substring
        // scan is enough for the smoke test's integer fields.
        let marker = format!("\"{key}\":");
        let start = resp.find(&marker).map(|i| i + marker.len());
        let Some(start) = start else {
            eprintln!("mdjd self-test FAILED: no `{key}` in {resp}");
            std::process::exit(1);
        };
        resp[start..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '-')
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| {
                eprintln!("mdjd self-test FAILED: bad `{key}` in {resp}");
                std::process::exit(1);
            })
    }

    pub fn run(args: &Args) {
        let service = build_service(args);
        let server = Server::bind("127.0.0.1:0", service.clone()).expect("bind");
        let addr = server.local_addr();
        println!("mdjd self-test against {addr} ({} rows/table)", args.rows);

        let mut c = Client::connect(addr);
        check("ping", &c.send(r#"{"op":"ping"}"#), "\"ok\":true");

        let resp = c.send(r#"{"op":"open"}"#);
        check("open", &resp, "\"ok\":true");
        let sid = int_field(&resp, "session");

        // Prepared statement with a `?` placeholder, bound per execute.
        let resp = c.send(&format!(
            r#"{{"op":"prepare","session":{sid},"sql":"select cust, sum(sale) from Sales where month = ? group by cust"}}"#
        ));
        check("prepare", &resp, "\"params\":1");
        let stmt = int_field(&resp, "stmt");

        let resp = c.send(&format!(
            r#"{{"op":"execute","session":{sid},"stmt":{stmt},"args":[3],"tag":"q1"}}"#
        ));
        check("execute", &resp, "\"rows\":[[");

        // Re-binding the same statement with a different value.
        let resp = c.send(&format!(
            r#"{{"op":"execute","session":{sid},"stmt":{stmt},"args":[7]}}"#
        ));
        check("rebind", &resp, "\"ok\":true");

        // Mid-flight cancellation: a heavy cube query runs on this
        // connection in a spawned thread while a *second* connection sends
        // the cancel — sessions are service-global, so out-of-band
        // cancellation must work across connections.
        let heavy = format!(
            r#"{{"op":"query","session":{sid},"sql":"select cust, prod, month, sum(sale) from Sales analyze by cube(cust, prod, month)","tag":"slow","deadline_ms":60000}}"#
        );
        // The thread returns the client so the connection stays open —
        // dropping it would trigger the server's disconnect cleanup and
        // close the session out from under the rest of the script.
        let runner = std::thread::spawn(move || {
            let resp = c.send(&heavy);
            (c, resp)
        });
        let mut side = Client::connect(addr);
        let mut cancelled = false;
        for _ in 0..500 {
            let resp = side.send(&format!(
                r#"{{"op":"cancel","session":{sid},"tag":"slow"}}"#
            ));
            check("cancel rpc", &resp, "\"ok\":true");
            if resp.contains("\"cancelled\":true") {
                cancelled = true;
                break;
            }
            if runner.is_finished() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let (mut c, resp) = runner.join().expect("runner thread");
        if cancelled {
            check("cancelled outcome", &resp, "\"code\":\"cancelled\"");
        } else {
            // The cube finished before the cancel landed — still a pass,
            // but say so in the log.
            check("heavy finished before cancel", &resp, "\"ok\":true");
        }
        drop(side);

        // Typed shedding: an immediate deadline trips `deadline_exceeded`
        // at the first governor poll ...
        let resp = c.send(&format!(
            r#"{{"op":"query","session":{sid},"sql":"select cust, sum(sale) from Sales group by cust","deadline_ms":0}}"#
        ));
        check("deadline shed", &resp, "\"code\":\"deadline_exceeded\"");

        // ... and a budget larger than the whole pool sheds with
        // `pool_exhausted` without executing anything.
        let resp = c.send(&format!(
            r#"{{"op":"query","session":{sid},"sql":"select count(*) from Sales","budget":{}}}"#,
            args.pool + 1
        ));
        check("pool shed", &resp, "\"code\":\"pool_exhausted\"");

        // The pool must be fully drained now that nothing is running.
        let resp = c.send(r#"{"op":"stats"}"#);
        check("pool drained", &resp, "\"pool_reserved\":0");

        check(
            "close",
            &c.send(&format!(r#"{{"op":"close","session":{sid}}}"#)),
            "\"ok\":true",
        );
        check(
            "double close rejected",
            &c.send(&format!(r#"{{"op":"close","session":{sid}}}"#)),
            "\"code\":\"unknown_session\"",
        );

        if service.pool().reserved() != 0 {
            eprintln!("mdjd self-test FAILED: pool not drained");
            std::process::exit(1);
        }
        println!("mdjd self-test passed");
    }
}
