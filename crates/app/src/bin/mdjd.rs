//! `mdjd` — the multi-tenant MD-join query server daemon.
//!
//! Boots a [`mdj_server::Server`] over generated `Sales` and `Payments`
//! tables and serves the line-delimited JSON protocol (see
//! `crates/server/src/wire.rs`) on a TCP port. All sessions share one
//! immutable engine configuration; per-query memory budgets are drawn from
//! a global pool with bounded-queue admission control.
//!
//! ```text
//! cargo run -p mdj-app --bin mdjd --release -- [flags]
//!
//!   --port N        listen port (default 7450; 0 = ephemeral)
//!   --rows N        generated rows per table (default 20000)
//!   --pool BYTES    global memory pool capacity (default 268435456)
//!   --budget BYTES  default per-query budget (default 16777216)
//!   --queue N       max queries waiting for admission (default 32)
//!   --wait MS       max admission wait before PoolExhausted (default 500)
//!   --deadline MS   default per-query deadline (default 30000; 0 = none)
//!   --max-conns N   max concurrent connections; excess shed with
//!                   `server_busy` (default 64)
//!   --read-timeout MS  idle/read timeout per connection; stalled peers
//!                   shed with `idle_timeout` (default 60000; 0 = none)
//!   --drain MS      graceful-shutdown drain deadline: in-flight queries
//!                   get this long before being cancelled (default 5000)
//!   --data DIR      durable page store directory. First boot clusters the
//!                   generated tables into checksummed pages under DIR;
//!                   later boots serve the persisted tables (including every
//!                   acknowledged ingest batch) instead of regenerating.
//!                   Queries stream pages through a buffer pool and report
//!                   `bytes_read`/`pages_read` in their stats.
//!   --page BYTES    page size for tables created under --data
//!                   (default 4096)
//!   --buffer BYTES  buffer-pool budget for paged reads; resident pages
//!                   are charged against the global memory pool, so cached
//!                   pages and query state compete for one limit
//!                   (default 8388608)
//!   --cache MIB     cuboid result cache budget in MiB; repeated canonical
//!                   group-by MD-joins are answered from memory, coarser
//!                   ones roll up from finer cached cuboids, and `ingest`
//!                   batches maintain distributive entries incrementally
//!                   (default 64; 0 = disabled)
//!   --self-test     boot on an ephemeral port, run a scripted smoke
//!                   session (ping/open/prepare/execute/cancel/shed/
//!                   oversized-frame/crash-recovery/ingest/cache/shutdown)
//!                   against the real socket, and exit nonzero on failure
//! ```
//!
//! On startup the engine sweeps its spill directory for orphaned run files
//! left by a crashed predecessor (crash-only recovery). On SIGTERM/SIGINT —
//! or a client `shutdown` op — the server stops accepting, drains in-flight
//! queries up to `--drain`, cancels stragglers, verifies the memory pool is
//! back to zero, and exits 0 only on a clean drain.
//!
//! The `--self-test` mode is what CI runs: it exercises the full TCP path —
//! prepared statements, parameter binding, mid-flight cancellation, typed
//! load shedding (`deadline_exceeded`, `pool_exhausted`), hostile frames,
//! and graceful shutdown — and asserts the pool drains back to zero bytes.

use mdj_core::EngineConfig;
use mdj_server::{ConnLimits, QueryService, Server, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Args {
    port: u16,
    rows: usize,
    pool: usize,
    budget: usize,
    queue: usize,
    wait_ms: u64,
    deadline_ms: u64,
    max_conns: usize,
    read_timeout_ms: u64,
    drain_ms: u64,
    cache_mib: usize,
    data: Option<std::path::PathBuf>,
    page_bytes: u64,
    buffer_bytes: u64,
    self_test: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            port: 7450,
            rows: 20_000,
            pool: 256 << 20,
            budget: 16 << 20,
            queue: 32,
            wait_ms: 500,
            deadline_ms: 30_000,
            max_conns: 64,
            read_timeout_ms: 60_000,
            drain_ms: 5_000,
            cache_mib: 64,
            data: None,
            page_bytes: 4096,
            buffer_bytes: 8 << 20,
            self_test: false,
        }
    }
}

impl Args {
    fn conn_limits(&self) -> ConnLimits {
        ConnLimits {
            max_conns: self.max_conns,
            read_timeout: match self.read_timeout_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            ..ConnLimits::default()
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut numeric = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a numeric argument")))
        };
        match flag.as_str() {
            "--port" => args.port = numeric("--port") as u16,
            "--rows" => args.rows = numeric("--rows") as usize,
            "--pool" => args.pool = numeric("--pool") as usize,
            "--budget" => args.budget = numeric("--budget") as usize,
            "--queue" => args.queue = numeric("--queue") as usize,
            "--wait" => args.wait_ms = numeric("--wait"),
            "--deadline" => args.deadline_ms = numeric("--deadline"),
            "--max-conns" => args.max_conns = numeric("--max-conns") as usize,
            "--read-timeout" => args.read_timeout_ms = numeric("--read-timeout"),
            "--drain" => args.drain_ms = numeric("--drain"),
            "--cache" => args.cache_mib = numeric("--cache") as usize,
            "--data" => {
                args.data = Some(
                    it.next()
                        .unwrap_or_else(|| die("--data needs a directory argument"))
                        .into(),
                )
            }
            "--page" => args.page_bytes = numeric("--page"),
            "--buffer" => args.buffer_bytes = numeric("--buffer"),
            "--self-test" => args.self_test = true,
            "--help" | "-h" => {
                println!("usage: mdjd [--port N] [--rows N] [--pool BYTES] [--budget BYTES] [--queue N] [--wait MS] [--deadline MS] [--max-conns N] [--read-timeout MS] [--drain MS] [--cache MIB] [--data DIR] [--page BYTES] [--buffer BYTES] [--self-test]");
                std::process::exit(0);
            }
            other => die(&format!("unknown flag `{other}` (try --help)")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("mdjd: {msg}");
    std::process::exit(2);
}

fn build_service(args: &Args) -> Arc<QueryService> {
    let mut engine = EngineConfig::new();
    let mut paged: Option<Arc<mdj_storage::PagedStore>> = None;
    if let Some(dir) = &args.data {
        // Durable catalog: open (or initialize) the page store and serve
        // its tables. Re-reading just-created tables keeps first boot and
        // every restart on the identical clustered row order.
        let (store, boot) = mdj_storage::PagedStore::open(dir)
            .unwrap_or_else(|e| die(&format!("--data {}: {e}", dir.display())));
        if boot.recovered_anything() {
            println!(
                "mdjd: page-store boot recovery at {}: {} torn table(s) ({} orphan bytes \
                 truncated), {} lost page(s), {} tmp manifest(s) removed{}",
                dir.display(),
                boot.torn_tables,
                boot.orphan_bytes,
                boot.lost_pages,
                boot.tmp_removed,
                if boot.manifest_fallback {
                    ", manifest fell back to .prev"
                } else {
                    ""
                },
            );
        }
        if store.table_names().is_empty() {
            let sales =
                mdj_datagen::sales(&mdj_datagen::SalesConfig::default().with_rows(args.rows));
            let payments =
                mdj_datagen::payments(&mdj_datagen::PaymentsConfig::default().with_rows(args.rows));
            // Cluster on `month`: the demo workloads range-filter by month,
            // so Theorem 4.2 pruning maps to contiguous page runs.
            for (name, rel) in [("Sales", &sales), ("Payments", &payments)] {
                store
                    .create_table(name, rel, "month", args.page_bytes)
                    .unwrap_or_else(|e| die(&format!("--data init {name}: {e}")));
            }
            println!(
                "mdjd: initialized page store at {} ({} rows/table, {} B pages)",
                dir.display(),
                args.rows,
                args.page_bytes,
            );
        }
        for name in store.table_names() {
            let table = store
                .table(&name)
                .unwrap_or_else(|| die(&format!("--data: table `{name}` vanished")));
            let rel = table
                .read_all(None)
                .unwrap_or_else(|e| die(&format!("--data load {name}: {e}")));
            println!(
                "mdjd: serving `{name}` from disk: {} rows in {} pages (generation {})",
                table.row_count(),
                table.page_count(),
                store.generation(),
            );
            engine = engine.register_table(name, rel);
        }
        paged = Some(store);
    } else {
        let sales = mdj_datagen::sales(&mdj_datagen::SalesConfig::default().with_rows(args.rows));
        let payments =
            mdj_datagen::payments(&mdj_datagen::PaymentsConfig::default().with_rows(args.rows));
        engine = engine
            .register_table("Sales", sales)
            .register_table("Payments", payments);
    }
    // `--cache 0` disables the cuboid cache entirely.
    if args.cache_mib > 0 {
        engine = engine.with_cuboid_cache(args.cache_mib << 20);
    }
    let engine = engine.build();
    if let Some(store) = &paged {
        for name in store.table_names() {
            if let Some(t) = store.table(&name) {
                let _ = engine.catalog().attach_paged(&name, t);
            }
        }
    }
    let config = ServiceConfig {
        pool_bytes: args.pool,
        default_budget: args.budget,
        max_waiters: args.queue,
        admission_wait: Duration::from_millis(args.wait_ms),
        default_deadline: match args.deadline_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
    };
    let service = Arc::new(QueryService::new(engine, config));
    if let Some(store) = paged {
        // Paged reads go through a buffer pool whose resident bytes are
        // charged to the same MemoryPool queries draw budgets from.
        let pool =
            mdj_core::PoolChargeAdapter::hooked_pool(service.pool().clone(), args.buffer_bytes);
        service.engine().attach_buffer_pool(pool);
        service.attach_paged_store(store);
    }
    service
}

/// SIGTERM/SIGINT flip the shared [`ShutdownController`] — a single atomic
/// compare-exchange, so the handler is async-signal-safe. The main loop
/// observes the flag and performs the actual drain outside signal context.
#[cfg(unix)]
mod signals {
    use mdj_server::ShutdownController;
    use std::sync::OnceLock;

    static CONTROLLER: OnceLock<ShutdownController> = OnceLock::new();
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        if let Some(c) = CONTROLLER.get() {
            c.request();
        }
    }

    pub fn install(controller: ShutdownController) -> bool {
        const SIG_ERR: usize = usize::MAX;
        if CONTROLLER.set(controller).is_err() {
            return false;
        }
        let a = unsafe { signal(SIGINT, on_signal) } != SIG_ERR;
        let b = unsafe { signal(SIGTERM, on_signal) } != SIG_ERR;
        a && b
    }
}

#[cfg(not(unix))]
mod signals {
    use mdj_server::ShutdownController;
    pub fn install(_controller: ShutdownController) -> bool {
        false
    }
}

fn main() {
    let args = parse_args();
    if args.self_test {
        self_test::run(&args);
        return;
    }
    let service = build_service(&args);
    let recovery = service.recovery_report();
    if recovery.removed > 0 {
        println!(
            "mdjd: recovered {} orphaned spill file(s) ({} bytes) left by a crashed process",
            recovery.removed, recovery.bytes_removed,
        );
    }
    let server = Server::bind_with(("0.0.0.0", args.port), service.clone(), args.conn_limits())
        .unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    println!(
        "mdjd listening on {} ({} rows/table, pool {} MiB, queue {}, wait {} ms, max conns {}, read timeout {} ms)",
        server.local_addr(),
        args.rows,
        args.pool >> 20,
        args.queue,
        args.wait_ms,
        args.max_conns,
        args.read_timeout_ms,
    );
    if !signals::install(service.shutdown().clone()) {
        eprintln!("mdjd: warning: signal handlers not installed; drain via the `shutdown` op");
    }
    // Wait for SIGTERM/SIGINT or a client `shutdown` op, then drain.
    while !service.shutdown().is_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!(
        "mdjd: shutdown requested; draining up to {} ms",
        args.drain_ms
    );
    let report = server.shutdown(Duration::from_millis(args.drain_ms));
    println!(
        "mdjd: drain complete: {} in flight at request, {} cancelled, pool_reserved={}, pool_waiters={}, sessions={}",
        report.in_flight_at_request,
        report.cancelled,
        report.pool_reserved,
        report.pool_waiters,
        report.sessions,
    );
    if !report.is_clean() {
        eprintln!("mdjd: drain left resources behind; exiting 1");
        std::process::exit(1);
    }
}

/// The CI smoke session: a scripted client driving the real TCP socket.
mod self_test {
    use super::{build_service, Args};
    use mdj_server::Server;
    use std::io::{BufRead, BufReader, Write};
    use std::net::{SocketAddr, TcpStream};

    /// One line-delimited JSON client connection.
    struct Client {
        writer: TcpStream,
        reader: BufReader<TcpStream>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let writer = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(writer.try_clone().expect("clone"));
            Client { writer, reader }
        }

        fn send(&mut self, line: &str) -> String {
            self.writer.write_all(line.as_bytes()).expect("write");
            self.writer.write_all(b"\n").expect("write");
            self.writer.flush().expect("flush");
            let mut resp = String::new();
            self.reader.read_line(&mut resp).expect("read");
            resp
        }
    }

    fn check(step: &str, resp: &str, needle: &str) {
        if !resp.contains(needle) {
            eprintln!("mdjd self-test FAILED at `{step}`:\n  expected substring: {needle}\n  response: {resp}");
            std::process::exit(1);
        }
        println!("ok: {step}");
    }

    fn int_field(resp: &str, key: &str) -> i64 {
        // The wire format is single-line JSON with sorted keys; a substring
        // scan is enough for the smoke test's integer fields.
        let marker = format!("\"{key}\":");
        let start = resp.find(&marker).map(|i| i + marker.len());
        let Some(start) = start else {
            eprintln!("mdjd self-test FAILED: no `{key}` in {resp}");
            std::process::exit(1);
        };
        resp[start..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '-')
            .collect::<String>()
            .parse()
            .unwrap_or_else(|_| {
                eprintln!("mdjd self-test FAILED: bad `{key}` in {resp}");
                std::process::exit(1);
            })
    }

    /// Durable catalog smoke: boot with `--data`, ingest one acknowledged
    /// batch, "restart" (rebuild the service from the same directory), and
    /// verify the restarted service serves the same tables *including* the
    /// batch — plus a paged query that actually reads pages.
    fn durable_restart_smoke(args: &Args) {
        use mdj_storage::{Row, Value};
        let dir = std::env::temp_dir().join(format!("mdjd-selftest-data-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut dargs = args.clone();
        dargs.data = Some(dir.clone());
        dargs.rows = 2_000;
        // Disable the cuboid cache so the canonical group-by below cannot
        // be answered from memory — this smoke must hit the page store.
        dargs.cache_mib = 0;
        let svc = super::build_service(&dargs);
        let before = svc
            .engine()
            .catalog()
            .get("Sales")
            .expect("Sales from page store")
            .len();
        let sid = svc.open_session();
        svc.ingest(
            sid,
            "Sales",
            vec![Row::new(vec![
                Value::Int(1),
                Value::Int(1),
                Value::Int(1),
                Value::Int(1),
                Value::Int(2024),
                Value::str("NY"),
                Value::Float(5.0),
            ])],
        )
        .expect("durable ingest");
        // A paged MD-join must stream pages through the buffer pool, and a
        // clustered-key range predicate (Theorem 4.2) must prune pages.
        let full = svc
            .query(
                sid,
                "select cust, sum(sale) from Sales group by cust",
                Default::default(),
            )
            .expect("paged query");
        if full.stats.pages_read == 0 || full.stats.bytes_read == 0 {
            eprintln!(
                "mdjd self-test FAILED: --data query read no pages (stats: {:?})",
                full.stats
            );
            std::process::exit(1);
        }
        svc.engine().buffer_pool().expect("buffer pool").clear();
        let pruned = svc
            .query(
                sid,
                "select cust, sum(sale) from Sales where month = 3 group by cust",
                Default::default(),
            )
            .expect("pruned paged query");
        if pruned.stats.pages_read == 0 || pruned.stats.pages_read >= full.stats.pages_read {
            eprintln!(
                "mdjd self-test FAILED: key-range pruning did not cut pages \
                 ({} vs {} unpruned)",
                pruned.stats.pages_read, full.stats.pages_read
            );
            std::process::exit(1);
        }
        println!(
            "ok: --data paged scan ({} pages full, {} pages with month = 3)",
            full.stats.pages_read, pruned.stats.pages_read
        );
        drop(svc);
        // "Restart": rebuild from the same directory.
        let svc2 = super::build_service(&dargs);
        let after = svc2
            .engine()
            .catalog()
            .get("Sales")
            .expect("Sales after restart")
            .len();
        if after != before + 1 {
            eprintln!(
                "mdjd self-test FAILED: restart lost the ingested batch \
                 ({before} rows before, {after} after; wanted {})",
                before + 1
            );
            std::process::exit(1);
        }
        if svc2.engine().catalog().paged("Sales").is_none() {
            eprintln!("mdjd self-test FAILED: restarted Sales not paged-backed");
            std::process::exit(1);
        }
        let _ = std::fs::remove_dir_all(&dir);
        println!("ok: --data restart served {after} rows (ingested batch survived)");
    }

    pub fn run(args: &Args) {
        durable_restart_smoke(args);
        // Crash recovery: plant an orphaned spill run file under a dead pid
        // *before* the engine boots; startup must sweep it away.
        let orphan = std::env::temp_dir().join("mdj-spill-999999999-0-selftest.run");
        std::fs::write(&orphan, b"MDJS orphaned by a crash").expect("plant orphan");
        let service = build_service(args);
        let recovery = service.recovery_report();
        if orphan.exists() || recovery.removed < 1 {
            eprintln!("mdjd self-test FAILED: planted orphan not swept (report: {recovery:?})");
            std::process::exit(1);
        }
        println!(
            "ok: crash recovery swept {} orphan(s), {} bytes",
            recovery.removed, recovery.bytes_removed
        );
        let server =
            Server::bind_with("127.0.0.1:0", service.clone(), args.conn_limits()).expect("bind");
        let addr = server.local_addr();
        println!("mdjd self-test against {addr} ({} rows/table)", args.rows);

        // Hostile client: a frame past the limit is shed with a typed code
        // on its own connection, before the scripted session even starts.
        let mut evil = Client::connect(addr);
        let resp = evil.send(&"x".repeat(args.conn_limits().max_frame_bytes + 1));
        check(
            "oversized frame shed",
            &resp,
            "\"code\":\"frame_too_large\"",
        );
        drop(evil);

        let mut c = Client::connect(addr);
        check("ping", &c.send(r#"{"op":"ping"}"#), "\"ok\":true");

        let resp = c.send(r#"{"op":"open"}"#);
        check("open", &resp, "\"ok\":true");
        let sid = int_field(&resp, "session");

        // Prepared statement with a `?` placeholder, bound per execute.
        let resp = c.send(&format!(
            r#"{{"op":"prepare","session":{sid},"sql":"select cust, sum(sale) from Sales where month = ? group by cust"}}"#
        ));
        check("prepare", &resp, "\"params\":1");
        let stmt = int_field(&resp, "stmt");

        let resp = c.send(&format!(
            r#"{{"op":"execute","session":{sid},"stmt":{stmt},"args":[3],"tag":"q1"}}"#
        ));
        check("execute", &resp, "\"rows\":[[");

        // Re-binding the same statement with a different value.
        let resp = c.send(&format!(
            r#"{{"op":"execute","session":{sid},"stmt":{stmt},"args":[7]}}"#
        ));
        check("rebind", &resp, "\"ok\":true");

        // Mid-flight cancellation: a heavy cube query runs on this
        // connection in a spawned thread while a *second* connection sends
        // the cancel — sessions are service-global, so out-of-band
        // cancellation must work across connections.
        let heavy = format!(
            r#"{{"op":"query","session":{sid},"sql":"select cust, prod, month, sum(sale) from Sales analyze by cube(cust, prod, month)","tag":"slow","deadline_ms":60000}}"#
        );
        // The thread returns the client so the connection stays open —
        // dropping it would trigger the server's disconnect cleanup and
        // close the session out from under the rest of the script.
        let runner = std::thread::spawn(move || {
            let resp = c.send(&heavy);
            (c, resp)
        });
        let mut side = Client::connect(addr);
        let mut cancelled = false;
        for _ in 0..500 {
            let resp = side.send(&format!(
                r#"{{"op":"cancel","session":{sid},"tag":"slow"}}"#
            ));
            check("cancel rpc", &resp, "\"ok\":true");
            if resp.contains("\"cancelled\":true") {
                cancelled = true;
                break;
            }
            if runner.is_finished() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let (mut c, resp) = runner.join().expect("runner thread");
        if cancelled {
            check("cancelled outcome", &resp, "\"code\":\"cancelled\"");
        } else {
            // The cube finished before the cancel landed — still a pass,
            // but say so in the log.
            check("heavy finished before cancel", &resp, "\"ok\":true");
        }
        drop(side);

        // Typed shedding: an immediate deadline trips `deadline_exceeded`
        // at the first governor poll ...
        let resp = c.send(&format!(
            r#"{{"op":"query","session":{sid},"sql":"select cust, sum(sale) from Sales group by cust","deadline_ms":0}}"#
        ));
        check("deadline shed", &resp, "\"code\":\"deadline_exceeded\"");

        // ... and a budget larger than the whole pool sheds with
        // `pool_exhausted` without executing anything.
        let resp = c.send(&format!(
            r#"{{"op":"query","session":{sid},"sql":"select count(*) from Sales","budget":{}}}"#,
            args.pool + 1
        ));
        check("pool shed", &resp, "\"code\":\"pool_exhausted\"");

        // The pool must be fully drained now that nothing is running, and
        // stats must remember the startup recovery sweep.
        let resp = c.send(r#"{"op":"stats"}"#);
        check("pool drained", &resp, "\"pool_reserved\":0");
        if int_field(&resp, "recovered_spill_files") < 1 {
            eprintln!("mdjd self-test FAILED: stats lost the recovery sweep: {resp}");
            std::process::exit(1);
        }
        println!("ok: stats report recovery sweep");

        check(
            "close",
            &c.send(&format!(r#"{{"op":"close","session":{sid}}}"#)),
            "\"ok\":true",
        );
        check(
            "double close rejected",
            &c.send(&format!(r#"{{"op":"close","session":{sid}}}"#)),
            "\"code\":\"unknown_session\"",
        );

        if service.pool().reserved() != 0 {
            eprintln!("mdjd self-test FAILED: pool not drained");
            std::process::exit(1);
        }

        // Cuboid cache smoke: a canonical group-by MD-join repeated on a
        // fresh session — the repeat must be a cache hit, and an ingested
        // batch must be folded into the resident entry (Algorithm 3.1)
        // rather than invalidating it.
        let resp = c.send(r#"{"op":"open"}"#);
        let sid3 = int_field(&resp, "session");
        let cube_q = format!(
            r#"{{"op":"query","session":{sid3},"sql":"select cust, sum(sale), count(*) from Sales group by cust"}}"#
        );
        check("cache cold query", &c.send(&cube_q), "\"ok\":true");
        check("cache warm query", &c.send(&cube_q), "\"ok\":true");
        let resp = c.send(r#"{"op":"stats"}"#);
        if int_field(&resp, "cache_hits") < 1 || int_field(&resp, "cache_entries") < 1 {
            eprintln!("mdjd self-test FAILED: warm repeat did not hit the cuboid cache: {resp}");
            std::process::exit(1);
        }
        println!("ok: cuboid cache hit on warm repeat");
        let resp = c.send(&format!(
            r#"{{"op":"ingest","session":{sid3},"table":"Sales","rows":[[1,1,1,1,2024,"NY",5.0],[1,2,2,1,2024,"NY",7.0]]}}"#
        ));
        check("ingest maintains cache", &resp, "\"cache_maintained\":1");
        check("ingest rows", &resp, "\"rows\":2");
        check("warm after ingest", &c.send(&cube_q), "\"ok\":true");
        let resp = c.send(r#"{"op":"stats"}"#);
        if int_field(&resp, "ingest_batches") < 1 || int_field(&resp, "cache_hits") < 2 {
            eprintln!("mdjd self-test FAILED: maintained entry did not serve post-ingest: {resp}");
            std::process::exit(1);
        }
        println!("ok: ingest maintained the cached cuboid");
        check(
            "close cache session",
            &c.send(&format!(r#"{{"op":"close","session":{sid3}}}"#)),
            "\"ok\":true",
        );

        // Graceful shutdown: the wire op flips the drain flag, new queries
        // are shed with `shutting_down`, and the drain verifies the pool.
        let resp = c.send(r#"{"op":"shutdown"}"#);
        check("shutdown op", &resp, "\"draining\":true");
        let resp = c.send(r#"{"op":"open"}"#);
        let sid2 = int_field(&resp, "session");
        let resp = c.send(&format!(
            r#"{{"op":"query","session":{sid2},"sql":"select count(*) from Sales"}}"#
        ));
        check("draining shed", &resp, "\"code\":\"shutting_down\"");
        let report = server.shutdown(std::time::Duration::from_millis(args.drain_ms));
        if !report.is_clean() {
            eprintln!("mdjd self-test FAILED: drain not clean: {report:?}");
            std::process::exit(1);
        }
        println!("ok: graceful drain clean ({report:?})");
        println!("mdjd self-test passed");
    }
}
