//! `mdjsh` — an interactive shell for the MD-join SQL surface.
//!
//! Starts with generated `Sales` and `Payments` tables; additional tables
//! load from CSV at startup or via the `\load` meta-command. Queries use the
//! full Section 5 surface: `GROUP BY` (with grouping variables),
//! `ANALYZE BY cube/rollup/unpivot/grouping sets/<table>`, `HAVING`,
//! `ORDER BY`, `LIMIT`.
//!
//! ```text
//! cargo run -p mdj-app --bin mdjsh --release [-- rows [csv ...]]
//!
//! mdj> \tables
//! mdj> select prod, month, sum(sale) from Sales analyze by cube(prod, month) limit 5
//! mdj> \explain select cust, avg(sale) from Sales group by cust
//! mdj> \load T path/to/table.csv prod:int,month:int
//! mdj> \timeout 5
//! mdj> \quit
//! ```
//!
//! Ctrl-C during a query cancels it cooperatively (the query stops at its
//! next governor poll with a `query cancelled` error) instead of killing the
//! shell; `\timeout <secs>` gives every subsequent query a wall-clock
//! deadline.

use mdj_core::prelude::*;
use mdj_core::CancelToken;
use mdj_sql::SqlEngine;
use mdj_storage::{csv, Catalog};
use std::io::{BufRead, Write};
use std::time::Duration;

/// Route SIGINT to a [`CancelToken`] so Ctrl-C cancels the running query
/// cooperatively instead of killing the shell. Uses the C `signal` binding
/// directly (no crate dependency); the handler only flips the token's atomic
/// flag, which is async-signal-safe.
#[cfg(unix)]
mod sigint {
    use mdj_core::CancelToken;
    use std::sync::OnceLock;

    static TOKEN: OnceLock<CancelToken> = OnceLock::new();
    const SIGINT: i32 = 2;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        if let Some(token) = TOKEN.get() {
            token.cancel();
        }
    }

    pub fn install(token: CancelToken) -> bool {
        const SIG_ERR: usize = usize::MAX;
        if TOKEN.set(token).is_err() {
            return false;
        }
        unsafe { signal(SIGINT, on_sigint) != SIG_ERR }
    }
}

#[cfg(not(unix))]
mod sigint {
    use mdj_core::CancelToken;
    pub fn install(_token: CancelToken) -> bool {
        false
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let sales = mdj_datagen::sales(&mdj_datagen::SalesConfig::default().with_rows(rows));
    let payments = mdj_datagen::payments(&mdj_datagen::PaymentsConfig::default().with_rows(rows));
    let mut catalog = Catalog::new();
    catalog.register("Sales", sales);
    catalog.register("Payments", payments);
    let mut engine = SqlEngine::new(catalog);

    let cancel = CancelToken::new();
    engine.ctx.set_cancel_token(Some(cancel.clone()));
    let ctrl_c = sigint::install(cancel.clone());
    let mut timeout: Option<Duration> = None;

    println!("mdjsh — MD-join SQL shell ({rows}-row Sales/Payments loaded)");
    println!(
        "Meta: \\tables  \\schema <t>  \\explain <query>  \\load <name> <csv> <schema>  \\timeout <secs>|off  \\quit"
    );
    if ctrl_c {
        println!("Ctrl-C cancels the running query.");
    }

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("mdj> ");
        let _ = std::io::stdout().flush();
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        if let Some(meta) = input.strip_prefix('\\') {
            if !meta_command(meta, &mut engine, &mut timeout) {
                break;
            }
            continue;
        }
        // Re-arm the governor for this statement: clear any Ctrl-C left over
        // from a previous query and start the deadline clock now.
        cancel.reset();
        engine
            .ctx
            .set_deadline_at(timeout.map(|d| std::time::Instant::now() + d));
        run_query(&engine, input);
    }
}

/// Handle a meta command; returns false to exit the shell.
fn meta_command(meta: &str, engine: &mut SqlEngine, timeout: &mut Option<Duration>) -> bool {
    let mut parts = meta.split_whitespace();
    match parts.next() {
        Some("quit") | Some("q") | Some("exit") => return false,
        Some("timeout") => match parts.next() {
            Some("off") => {
                *timeout = None;
                println!("query timeout off");
            }
            Some(secs) => match secs.parse::<f64>() {
                Ok(s) if s > 0.0 => {
                    *timeout = Some(Duration::from_secs_f64(s));
                    println!("query timeout set to {s}s");
                }
                _ => println!("usage: \\timeout <seconds>|off"),
            },
            None => match timeout {
                Some(d) => println!("query timeout is {:?}", d),
                None => println!("query timeout off"),
            },
        },
        Some("tables") => {
            for name in engine.catalog.names() {
                let rel = engine.catalog.get(&name).expect("listed name resolves");
                println!("  {name}  ({} rows) {}", rel.len(), rel.schema());
            }
        }
        Some("schema") => match parts.next() {
            Some(name) => match engine.catalog.get(name) {
                Ok(rel) => println!("  {}", rel.schema()),
                Err(e) => println!("error: {e}"),
            },
            None => println!("usage: \\schema <table>"),
        },
        Some("explain") => {
            let rest: Vec<&str> = parts.collect();
            match engine.explain(&rest.join(" ")) {
                Ok(plan) => print!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
        }
        Some("load") => {
            let (name, path, schema_spec) = (parts.next(), parts.next(), parts.next());
            match (name, path, schema_spec) {
                (Some(name), Some(path), Some(spec)) => match load_csv(path, spec) {
                    Ok(rel) => {
                        println!("loaded {name}: {} rows", rel.len());
                        engine.register(name.to_string(), rel);
                    }
                    Err(e) => println!("error: {e}"),
                },
                _ => println!("usage: \\load <name> <file.csv> col:type,col:type  (types: int,float,str,bool)"),
            }
        }
        other => println!("unknown meta command {other:?}"),
    }
    true
}

fn load_csv(path: &str, schema_spec: &str) -> Result<Relation, Box<dyn std::error::Error>> {
    let fields: Vec<Field> = schema_spec
        .split(',')
        .map(|part| {
            let (name, ty) = part
                .split_once(':')
                .ok_or_else(|| format!("bad column spec `{part}` (want name:type)"))?;
            let dtype = match ty {
                "int" => DataType::Int,
                "float" => DataType::Float,
                "str" => DataType::Str,
                "bool" => DataType::Bool,
                other => return Err(format!("unknown type `{other}`").into()),
            };
            Ok::<Field, Box<dyn std::error::Error>>(Field::new(name, dtype))
        })
        .collect::<Result<_, _>>()?;
    let text = std::fs::read_to_string(path)?;
    Ok(csv::read_str(&text, &Schema::new(fields))?)
}

fn run_query(engine: &SqlEngine, query: &str) {
    let t0 = std::time::Instant::now();
    match engine.query(query) {
        Ok(rel) => {
            let n = rel.len();
            let shown = 40.min(n);
            let head = Relation::from_rows(
                rel.schema().clone(),
                rel.rows().iter().take(shown).cloned().collect(),
            );
            print!("{head}");
            if shown < n {
                println!("… {} more rows", n - shown);
            }
            println!("({n} rows, {:?})", t0.elapsed());
        }
        Err(e) => println!("error: {e}"),
    }
}
