//! # mdj-naive
//!
//! The classical relational evaluator — our stand-in for the "commercially
//! available DBMS" of the paper's Section 5 performance discussion.
//!
//! Without the MD-join, the paper's example queries require multi-block SQL:
//! one group-by subquery per aggregate context, joined (outer-joined, to keep
//! groups with no matches) back together. This crate implements exactly those
//! operators — selection, projection, hash group-by, hash equi-join, left
//! outer join, theta join, union — and, in [`plans`], the literal multi-block
//! plans for the paper's worked examples. The benchmark harness compares
//! these against the MD-join formulations; the *shape* of the gap (number of
//! scans, joins, and intermediate tuples) reproduces the paper's
//! order-of-magnitude claim.
//!
//! The same operators double as the *test oracle*: MD-join outputs are
//! cross-checked against outer-join + group-by compositions in the
//! integration and property tests.

pub mod error;
pub mod groupby;
pub mod join;
pub mod ops;
pub mod plans;
pub mod sortexec;

pub use error::{NaiveError, Result};
