//! Error type for the naive evaluator.

use std::fmt;

pub type Result<T, E = NaiveError> = std::result::Result<T, E>;

/// Errors from the classical relational operators.
#[derive(Debug, Clone, PartialEq)]
pub enum NaiveError {
    Storage(mdj_storage::StorageError),
    Expr(mdj_expr::ExprError),
    Agg(mdj_agg::AggError),
    /// Join key lists have different lengths.
    KeyArity {
        left: usize,
        right: usize,
    },
}

impl fmt::Display for NaiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NaiveError::Storage(e) => write!(f, "storage error: {e}"),
            NaiveError::Expr(e) => write!(f, "expression error: {e}"),
            NaiveError::Agg(e) => write!(f, "aggregate error: {e}"),
            NaiveError::KeyArity { left, right } => {
                write!(f, "join key arity mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for NaiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NaiveError::Storage(e) => Some(e),
            NaiveError::Expr(e) => Some(e),
            NaiveError::Agg(e) => Some(e),
            NaiveError::KeyArity { .. } => None,
        }
    }
}

impl From<mdj_storage::StorageError> for NaiveError {
    fn from(e: mdj_storage::StorageError) -> Self {
        NaiveError::Storage(e)
    }
}

impl From<mdj_expr::ExprError> for NaiveError {
    fn from(e: mdj_expr::ExprError) -> Self {
        NaiveError::Expr(e)
    }
}

impl From<mdj_agg::AggError> for NaiveError {
    fn from(e: mdj_agg::AggError) -> Self {
        NaiveError::Agg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e: NaiveError = mdj_storage::StorageError::UnknownRelation("x".into()).into();
        assert!(e.to_string().contains("storage"));
        let e = NaiveError::KeyArity { left: 2, right: 1 };
        assert!(e.to_string().contains("mismatch"));
    }
}
