//! Literal multi-block relational plans for the paper's worked examples —
//! what a user had to write *without* the MD-join, and what the benchmark
//! harness uses as the commercial-DBMS stand-in.

use crate::error::Result;
use crate::groupby::group_by_agg;
use crate::join::{hash_join, left_outer_join};
use crate::ops::select;
use mdj_agg::{AggSpec, Registry};
use mdj_expr::builder::*;
use mdj_storage::{Relation, Row, Schema, Value};

/// Positional projection helper (needed because joins produce duplicate
/// column names).
fn project_idx(r: &Relation, indices: &[usize]) -> Relation {
    let schema = r.schema().project(indices);
    let rows = r.iter().map(|row| Row::new(row.key(indices))).collect();
    Relation::from_rows(schema, rows)
}

/// Rename columns positionally.
fn rename(r: &Relation, names: &[&str]) -> Relation {
    let fields: Vec<mdj_storage::Field> = r
        .schema()
        .fields()
        .iter()
        .zip(names)
        .map(|(f, n)| mdj_storage::Field::new(*n, f.dtype))
        .collect();
    r.with_schema(Schema::new(fields)).expect("same arity")
}

/// Replace NULL with 0 in the given column (COALESCE for count columns after
/// outer joins).
fn coalesce_zero(r: &Relation, col: usize) -> Relation {
    let rows = r
        .iter()
        .map(|row| {
            let mut vals = row.values().to_vec();
            if vals[col].is_null() {
                vals[col] = Value::Int(0);
            }
            Row::new(vals)
        })
        .collect();
    Relation::from_rows(r.schema().clone(), rows)
}

/// **Example 2.2** (tri-state pivot), as the paper describes the SQL: three
/// per-state group-by subqueries, a fourth subquery for the distinct
/// customers, and outer joins to attach each average.
///
/// Output: `(cust, avg_ny, avg_nj, avg_ct)`.
pub fn example_2_2(sales: &Relation, registry: &Registry) -> Result<Relation> {
    let states = ["NY", "NJ", "CT"];
    // Subquery 4: all unique customers.
    let mut acc = sales.distinct_on(&["cust"])?;
    for st in states {
        // Subquery per state: SELECT cust, AVG(sale) FROM Sales WHERE state=st GROUP BY cust.
        let filtered = select(sales, &eq(col_r("state"), lit(st)))?;
        let avgs = group_by_agg(
            &filtered,
            &["cust"],
            &[AggSpec::on_column("avg", "sale").with_alias(format!("avg_{}", st.to_lowercase()))],
            registry,
        )?;
        // Outer join keeps customers with no purchases in `st`.
        let joined = left_outer_join(&acc, &avgs, &["cust"], &["cust"])?;
        // Drop the duplicated join key.
        let keep: Vec<usize> = (0..acc.schema().len())
            .chain([acc.schema().len() + 1])
            .collect();
        acc = project_idx(&joined, &keep);
    }
    Ok(acc)
}

/// **Example 2.5** (for each product, count 1997 sales strictly between the
/// previous month's and the following month's average sale), as multi-block
/// SQL: an averages-per-(prod, month) subquery joined twice against the fact
/// table with shifted months, filtered, re-aggregated, and outer-joined onto
/// the group list.
///
/// Output: `(prod, month, cnt)` over all (prod, month) pairs present in
/// `year`.
pub fn example_2_5(sales: &Relation, year: i64, registry: &Registry) -> Result<Relation> {
    let sales_y = select(sales, &eq(col_r("year"), lit(year)))?;
    // Group list (the output rows): distinct (prod, month).
    let base = sales_y.distinct_on(&["prod", "month"])?;
    // Averages per (prod, month) across the same year.
    let avgs = group_by_agg(
        &sales_y,
        &["prod", "month"],
        &[AggSpec::on_column("avg", "sale")],
        registry,
    )?;
    // X: previous month's average, keyed so that X.month + 1 = group month.
    let prev = rename(
        &crate::ops::project_exprs(
            &avgs,
            &[
                ("prod", col_r("prod")),
                ("month", add(col_r("month"), lit(1i64))),
                ("prev_avg", col_r("avg_sale")),
            ],
        )?,
        &["prod", "month", "prev_avg"],
    );
    // Y: following month's average, keyed so that Y.month - 1 = group month.
    let next = rename(
        &crate::ops::project_exprs(
            &avgs,
            &[
                ("prod", col_r("prod")),
                ("month", sub(col_r("month"), lit(1i64))),
                ("next_avg", col_r("avg_sale")),
            ],
        )?,
        &["prod", "month", "next_avg"],
    );
    // Join the fact table with both shifted average tables.
    let j1 = hash_join(&sales_y, &prev, &["prod", "month"], &["prod", "month"])?;
    let n1 = sales_y.schema().len();
    // Keep sales columns + prev_avg.
    let mut keep: Vec<usize> = (0..n1).collect();
    keep.push(n1 + 2);
    let j1 = project_idx(&j1, &keep);
    let j2 = hash_join(&j1, &next, &["prod", "month"], &["prod", "month"])?;
    let n2 = j1.schema().len();
    let mut keep: Vec<usize> = (0..n2).collect();
    keep.push(n2 + 2);
    let j2 = project_idx(&j2, &keep);
    // Filter: prev_avg < sale < next_avg.
    let filtered = select(
        &j2,
        &and(
            gt(col_r("sale"), col_r("prev_avg")),
            lt(col_r("sale"), col_r("next_avg")),
        ),
    )?;
    // Re-aggregate.
    let counts = group_by_agg(
        &filtered,
        &["prod", "month"],
        &[AggSpec::count_star().with_alias("cnt")],
        registry,
    )?;
    // Outer join onto the group list so empty groups report 0.
    let joined = left_outer_join(&base, &counts, &["prod", "month"], &["prod", "month"])?;
    let out = project_idx(&joined, &[0, 1, 4]);
    Ok(coalesce_zero(&out, 2))
}

/// **Example 2.2, sort-based executor profile** — the same four-subquery /
/// three-outer-join plan, but evaluated the way a 2001 commercial engine
/// would: sort-based group-bys and sort-merge outer joins, each operator
/// re-sorting and materializing its inputs. See [`crate::sortexec`].
pub fn example_2_2_sort_based(sales: &Relation, registry: &Registry) -> Result<Relation> {
    use crate::sortexec::{sort_group_by, sort_merge_left_outer};
    let states = ["NY", "NJ", "CT"];
    let mut acc = sales.distinct_on(&["cust"])?;
    for st in states {
        let filtered = select(sales, &eq(col_r("state"), lit(st)))?;
        let avgs = sort_group_by(
            &filtered,
            &["cust"],
            &[AggSpec::on_column("avg", "sale").with_alias(format!("avg_{}", st.to_lowercase()))],
            registry,
        )?;
        let joined = sort_merge_left_outer(&acc, &avgs, &["cust"], &["cust"])?;
        let keep: Vec<usize> = (0..acc.schema().len())
            .chain([acc.schema().len() + 1])
            .collect();
        acc = project_idx(&joined, &keep);
    }
    Ok(acc)
}

/// **Example 2.5, sort-based executor profile** — the multi-block plan with
/// sort-based group-bys and sort-merge joins (both fact-table joins re-sort
/// the fact table: exactly the repeated large sorts a 2001 engine pays).
pub fn example_2_5_sort_based(
    sales: &Relation,
    year: i64,
    registry: &Registry,
) -> Result<Relation> {
    use crate::sortexec::{sort_group_by, sort_merge_join, sort_merge_left_outer};
    let sales_y = select(sales, &eq(col_r("year"), lit(year)))?;
    let base = sales_y.distinct_on(&["prod", "month"])?;
    let avgs = sort_group_by(
        &sales_y,
        &["prod", "month"],
        &[AggSpec::on_column("avg", "sale")],
        registry,
    )?;
    let prev = rename(
        &crate::ops::project_exprs(
            &avgs,
            &[
                ("prod", col_r("prod")),
                ("month", add(col_r("month"), lit(1i64))),
                ("prev_avg", col_r("avg_sale")),
            ],
        )?,
        &["prod", "month", "prev_avg"],
    );
    let next = rename(
        &crate::ops::project_exprs(
            &avgs,
            &[
                ("prod", col_r("prod")),
                ("month", sub(col_r("month"), lit(1i64))),
                ("next_avg", col_r("avg_sale")),
            ],
        )?,
        &["prod", "month", "next_avg"],
    );
    let j1 = sort_merge_join(&sales_y, &prev, &["prod", "month"], &["prod", "month"])?;
    let n1 = sales_y.schema().len();
    let mut keep: Vec<usize> = (0..n1).collect();
    keep.push(n1 + 2);
    let j1 = project_idx(&j1, &keep);
    let j2 = sort_merge_join(&j1, &next, &["prod", "month"], &["prod", "month"])?;
    let n2 = j1.schema().len();
    let mut keep: Vec<usize> = (0..n2).collect();
    keep.push(n2 + 2);
    let j2 = project_idx(&j2, &keep);
    let filtered = select(
        &j2,
        &and(
            gt(col_r("sale"), col_r("prev_avg")),
            lt(col_r("sale"), col_r("next_avg")),
        ),
    )?;
    let counts = sort_group_by(
        &filtered,
        &["prod", "month"],
        &[AggSpec::count_star().with_alias("cnt")],
        registry,
    )?;
    let joined = sort_merge_left_outer(&base, &counts, &["prod", "month"], &["prod", "month"])?;
    let out = project_idx(&joined, &[0, 1, 4]);
    Ok(coalesce_zero(&out, 2))
}

/// **Cube by 2ⁿ group-bys** — the pre-\[AAD+96\] naive cube plan: one
/// independent group-by per cuboid, results padded with `ALL` and unioned.
/// Used as the baseline of experiment E1.
pub fn cube_by_groupbys(
    r: &Relation,
    dims: &[&str],
    specs: &[AggSpec],
    registry: &Registry,
) -> Result<Relation> {
    let n = dims.len();
    let mut out: Option<Relation> = None;
    for mask in (0..(1u32 << n)).rev() {
        let kept: Vec<&str> = dims
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, d)| *d)
            .collect();
        let grouped = group_by_agg(r, &kept, specs, registry)?;
        // Pad rolled-up dimensions with ALL, restoring dim order.
        let padded = pad_with_all(&grouped, dims, &kept, specs);
        out = Some(match out {
            None => padded,
            Some(acc) => acc.union(&padded)?,
        });
    }
    Ok(out.expect("at least the apex cuboid"))
}

/// Reshape a cuboid's group-by output to the full `(dims…, aggs…)` schema,
/// inserting `ALL` for rolled-up dimensions.
fn pad_with_all(grouped: &Relation, dims: &[&str], kept: &[&str], specs: &[AggSpec]) -> Relation {
    let mut fields = Vec::with_capacity(dims.len() + specs.len());
    for d in dims {
        fields.push(mdj_storage::Field::new(*d, mdj_storage::DataType::Any));
    }
    for (i, _) in specs.iter().enumerate() {
        fields.push(grouped.schema().field(kept.len() + i).clone());
    }
    let mut out = Relation::empty(Schema::new(fields));
    for row in grouped.iter() {
        let mut vals = Vec::with_capacity(dims.len() + specs.len());
        for d in dims {
            match kept.iter().position(|k| k == d) {
                Some(i) => vals.push(row[i].clone()),
                None => vals.push(Value::All),
            }
        }
        for i in 0..specs.len() {
            vals.push(row[kept.len() + i].clone());
        }
        out.push_unchecked(Row::new(vals));
    }
    out
}

/// **Example 2.3** (count sales above the average of their cube cell), as
/// the paper describes the naive formulation: "the user has to define eight
/// group bys, join each one with the Sales table and perform eight new group
/// bys". Output: `(prod, month, state, cnt)` with `ALL` markers, one row per
/// cube cell.
pub fn example_2_3(sales: &Relation, registry: &Registry) -> Result<Relation> {
    let dims = ["prod", "month", "state"];
    let n = dims.len();
    let mut out: Option<Relation> = None;
    for mask in (0..(1u32 << n)).rev() {
        let kept: Vec<&str> = dims
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, d)| *d)
            .collect();
        // Group-by #1: per-cell averages.
        let avgs = group_by_agg(sales, &kept, &[AggSpec::on_column("avg", "sale")], registry)?;
        // Join the cell averages back onto the fact table.
        let joined = hash_join(sales, &avgs, &kept, &kept)?;
        let n_sales = sales.schema().len();
        let avg_col = n_sales + kept.len();
        let mut keep: Vec<usize> = (0..n_sales).collect();
        keep.push(avg_col);
        let joined = project_idx(&joined, &keep);
        // Filter above-average tuples.
        let above = select(&joined, &gt(col_r("sale"), col_r("avg_sale")))?;
        // Group-by #2: count per cell.
        let counts = group_by_agg(
            &above,
            &kept,
            &[AggSpec::count_star().with_alias("cnt")],
            registry,
        )?;
        // Keep zero-count cells via outer join onto the cell list.
        let cells = sales.distinct_on(&kept)?;
        let joined = left_outer_join(&cells, &counts, &kept, &kept)?;
        let keep: Vec<usize> = (0..kept.len()).chain([2 * kept.len()]).collect();
        let cuboid = coalesce_zero(&project_idx(&joined, &keep), kept.len());
        let padded = pad_with_all(
            &cuboid,
            &dims,
            &kept,
            &[AggSpec::count_star().with_alias("cnt")],
        );
        out = Some(match out {
            None => padded,
            Some(acc) => acc.union(&padded)?,
        });
    }
    Ok(out.expect("at least the apex cuboid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_storage::DataType;

    /// Tiny Sales table with the full paper schema.
    fn sales() -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("prod", DataType::Int),
            ("day", DataType::Int),
            ("month", DataType::Int),
            ("year", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        let mk = |cust: i64, prod: i64, month: i64, year: i64, state: &str, sale: f64| {
            Row::from_values(vec![
                Value::Int(cust),
                Value::Int(prod),
                Value::Int(1),
                Value::Int(month),
                Value::Int(year),
                Value::str(state),
                Value::Float(sale),
            ])
        };
        Relation::from_rows(
            schema,
            vec![
                mk(1, 10, 1, 1997, "NY", 10.0),
                mk(1, 10, 2, 1997, "NY", 25.0),
                mk(1, 10, 3, 1997, "NJ", 50.0),
                mk(2, 10, 2, 1997, "CT", 15.0),
                mk(2, 20, 2, 1997, "NY", 100.0),
                mk(3, 20, 2, 1996, "CA", 999.0), // other year: ignored by 2.5
            ],
        )
    }

    #[test]
    fn example_2_2_schema_and_outer_semantics() {
        let out = example_2_2(&sales(), &Registry::standard()).unwrap();
        assert_eq!(
            out.schema().names(),
            vec!["cust", "avg_ny", "avg_nj", "avg_ct"]
        );
        assert_eq!(out.len(), 3);
        let c3 = out.rows().iter().find(|r| r[0] == Value::Int(3)).unwrap();
        assert_eq!(c3[1], Value::Null); // no NY purchases in any year? cust 3 only CA
        let c1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(c1[1], Value::Float(17.5)); // (10+25)/2
        assert_eq!(c1[2], Value::Float(50.0));
        assert_eq!(c1[3], Value::Null);
    }

    #[test]
    fn example_2_5_counts_between_neighbor_averages() {
        // prod 10: month 1 avg 10, month 2 avg (25+15)/2 = 20, month 3 avg 50.
        // Month-2 tuples between avg(month 1)=10 and avg(month 3)=50:
        // 25 (yes), 15 (yes) → cnt 2. Months 1 and 3 lack a neighbor → 0.
        let out = example_2_5(&sales(), 1997, &Registry::standard()).unwrap();
        assert_eq!(out.schema().names(), vec!["prod", "month", "cnt"]);
        let m2 = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(10) && r[1] == Value::Int(2))
            .unwrap();
        assert_eq!(m2[2], Value::Int(2));
        let m1 = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(10) && r[1] == Value::Int(1))
            .unwrap();
        assert_eq!(m1[2], Value::Int(0));
        // prod 20 has no month-1/month-3 averages in 1997, so the inner joins
        // drop its tuples and the outer join restores it with count 0. (The
        // 1996 row is excluded by the year filter.)
        let p20 = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(20) && r[1] == Value::Int(2))
            .unwrap();
        assert_eq!(p20[2], Value::Int(0));
    }

    #[test]
    fn sort_based_plans_match_hash_based_plans() {
        let reg = Registry::standard();
        let s = sales();
        let a = example_2_2(&s, &reg).unwrap();
        let b = example_2_2_sort_based(&s, &reg).unwrap();
        assert!(a.same_multiset(&b));
        let a = example_2_5(&s, 1997, &reg).unwrap();
        let b = example_2_5_sort_based(&s, 1997, &reg).unwrap();
        assert!(a.same_multiset(&b));
    }

    #[test]
    fn cube_by_groupbys_row_count_matches_cube() {
        let s = sales();
        let cube = cube_by_groupbys(
            &s,
            &["prod", "state"],
            &[AggSpec::on_column("sum", "sale")],
            &Registry::standard(),
        )
        .unwrap();
        // Cross-check with the MD-join cube base builder's cardinality.
        // distinct (prod,state): NY10,NJ10,CT10,NY20,CA20 = 5; prods: 2;
        // states: 4; apex: 1 → 12.
        assert_eq!(cube.len(), 12);
        let apex = cube
            .rows()
            .iter()
            .find(|r| r[0].is_all() && r[1].is_all())
            .unwrap();
        assert_eq!(apex[2], Value::Float(1199.0));
    }

    #[test]
    fn example_2_3_counts_above_average() {
        let s = sales();
        let out = example_2_3(&s, &Registry::standard()).unwrap();
        // Apex cell: global avg = 1199/6 ≈ 199.8; above it: 999 only → 1.
        let apex = out
            .rows()
            .iter()
            .find(|r| r[0].is_all() && r[1].is_all() && r[2].is_all())
            .unwrap();
        assert_eq!(apex[3], Value::Int(1));
        // Cell (prod=10, ALL, ALL): avg 25; above: 50 → 1.
        let p10 = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(10) && r[1].is_all() && r[2].is_all())
            .unwrap();
        assert_eq!(p10[3], Value::Int(1));
        // Finest single-tuple cells can never beat their own average → 0.
        let fine = out
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(10) && r[1] == Value::Int(1) && r[2] == Value::str("NY"))
            .unwrap();
        assert_eq!(fine[3], Value::Int(0));
    }
}
