//! Single-relation operators: selection, projection over expressions.

use crate::error::Result;
use mdj_expr::{Expr, Side};
use mdj_storage::{DataType, Field, Relation, Row, Schema};

/// σ — filter rows by a detail-side predicate. Column references must use
/// [`Side::Detail`] (there is no base side in a one-relation context).
pub fn select(r: &Relation, pred: &Expr) -> Result<Relation> {
    let bound = pred.bind(None, Some(r.schema()))?;
    let mut out = Relation::empty(r.schema().clone());
    for row in r.iter() {
        if bound.eval_bool(&[], row.values())? {
            out.push_unchecked(row.clone());
        }
    }
    Ok(out)
}

/// π with computation — each output column is `(name, expr)` where `expr`
/// references the input with [`Side::Detail`]. Output types are `Any` unless
/// the expression is a bare column reference (whose type is preserved).
pub fn project_exprs(r: &Relation, cols: &[(&str, Expr)]) -> Result<Relation> {
    let bound: Vec<_> = cols
        .iter()
        .map(|(_, e)| e.bind(None, Some(r.schema())))
        .collect::<std::result::Result<_, _>>()?;
    let fields: Vec<Field> = cols
        .iter()
        .map(|(name, e)| {
            let dtype = match e {
                Expr::Col(c) if c.side == Side::Detail => r
                    .schema()
                    .index_of(&c.name)
                    .map(|i| r.schema().field(i).dtype)
                    .unwrap_or(DataType::Any),
                _ => DataType::Any,
            };
            Field::new(*name, dtype)
        })
        .collect();
    let mut out = Relation::empty(Schema::new(fields));
    for row in r.iter() {
        let vals = bound
            .iter()
            .map(|b| b.eval_detail(row.values()))
            .collect::<std::result::Result<Vec<_>, _>>()?;
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, Value};

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[("x", DataType::Int), ("y", DataType::Int)]);
        Relation::from_rows(
            schema,
            (0..10).map(|i| Row::from_values([i, i * i])).collect(),
        )
    }

    #[test]
    fn select_filters() {
        let out = select(&rel(), &gt(col_r("x"), lit(6i64))).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn select_true_keeps_everything() {
        let out = select(&rel(), &Expr::always_true()).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn project_computes() {
        let out = project_exprs(
            &rel(),
            &[("x", col_r("x")), ("x_plus_y", add(col_r("x"), col_r("y")))],
        )
        .unwrap();
        assert_eq!(out.schema().names(), vec!["x", "x_plus_y"]);
        assert_eq!(out.schema().field(0).dtype, DataType::Int);
        assert_eq!(out.schema().field(1).dtype, DataType::Any);
        assert_eq!(out.rows()[3][1], Value::Int(12));
    }

    #[test]
    fn project_unknown_column_errors() {
        assert!(project_exprs(&rel(), &[("z", col_r("z"))]).is_err());
    }
}
