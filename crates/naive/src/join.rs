//! Join operators: hash equi-join, left outer join, theta join.

use crate::error::{NaiveError, Result};
use mdj_expr::Expr;
use mdj_storage::{HashIndex, Relation, Row, Schema, Value};

fn check_keys(lk: &[&str], rk: &[&str]) -> Result<()> {
    if lk.len() != rk.len() {
        return Err(NaiveError::KeyArity {
            left: lk.len(),
            right: rk.len(),
        });
    }
    Ok(())
}

fn joined_schema(left: &Schema, right: &Schema) -> Schema {
    left.concat(right)
}

/// Inner hash equi-join on the named keys. NULL keys never match
/// (SQL semantics). Output columns: left's then right's.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[&str],
    right_keys: &[&str],
) -> Result<Relation> {
    check_keys(left_keys, right_keys)?;
    let lk = left.schema().indices_of(left_keys)?;
    let index = HashIndex::build_on(right, right_keys)?;
    let mut out = Relation::empty(joined_schema(left.schema(), right.schema()));
    for lrow in left.iter() {
        let key = lrow.key(&lk);
        if key.iter().any(Value::is_null) {
            continue;
        }
        for &ri in index.get(&key) {
            out.push_unchecked(lrow.concat(&right.rows()[ri]));
        }
    }
    Ok(out)
}

/// Left outer hash equi-join: unmatched left rows appear once, with the
/// right columns NULL. This is the glue of the paper's Example 2.2 discussion
/// ("four outer joins to attach the sales to the customer in NY, NJ, CT").
pub fn left_outer_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[&str],
    right_keys: &[&str],
) -> Result<Relation> {
    check_keys(left_keys, right_keys)?;
    let lk = left.schema().indices_of(left_keys)?;
    let index = HashIndex::build_on(right, right_keys)?;
    let mut out = Relation::empty(joined_schema(left.schema(), right.schema()));
    let null_pad = Row::new(vec![Value::Null; right.schema().len()]);
    for lrow in left.iter() {
        let key = lrow.key(&lk);
        let bucket = if key.iter().any(Value::is_null) {
            &[][..]
        } else {
            index.get(&key)
        };
        if bucket.is_empty() {
            out.push_unchecked(lrow.concat(&null_pad));
        } else {
            for &ri in bucket {
                out.push_unchecked(lrow.concat(&right.rows()[ri]));
            }
        }
    }
    Ok(out)
}

/// General theta join (nested loop): the predicate sees the left row as the
/// *base* side and the right row as the *detail* side.
pub fn theta_join(left: &Relation, right: &Relation, pred: &Expr) -> Result<Relation> {
    let bound = pred.bind(Some(left.schema()), Some(right.schema()))?;
    let mut out = Relation::empty(joined_schema(left.schema(), right.schema()));
    for lrow in left.iter() {
        for rrow in right.iter() {
            if bound.eval_bool(lrow.values(), rrow.values())? {
                out.push_unchecked(lrow.concat(rrow));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_expr::builder::*;
    use mdj_storage::DataType;

    fn custs() -> Relation {
        Relation::from_rows(
            Schema::from_pairs(&[("cust", DataType::Int)]),
            vec![
                Row::from_values([1i64]),
                Row::from_values([2i64]),
                Row::from_values([3i64]),
            ],
        )
    }

    fn sales() -> Relation {
        Relation::from_rows(
            Schema::from_pairs(&[("scust", DataType::Int), ("sale", DataType::Int)]),
            vec![
                Row::from_values([1i64, 10]),
                Row::from_values([1i64, 20]),
                Row::from_values([2i64, 30]),
            ],
        )
    }

    #[test]
    fn inner_join_matches_only() {
        let out = hash_join(&custs(), &sales(), &["cust"], &["scust"]).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().names(), vec!["cust", "scust", "sale"]);
    }

    #[test]
    fn left_outer_pads_unmatched() {
        let out = left_outer_join(&custs(), &sales(), &["cust"], &["scust"]).unwrap();
        assert_eq!(out.len(), 4); // cust 1 ×2, cust 2 ×1, cust 3 padded
        let c3 = out.rows().iter().find(|r| r[0] == Value::Int(3)).unwrap();
        assert_eq!(c3[1], Value::Null);
        assert_eq!(c3[2], Value::Null);
    }

    #[test]
    fn null_keys_never_match() {
        let mut left = custs();
        left.rows_mut().push(Row::new(vec![Value::Null]));
        let inner = hash_join(&left, &sales(), &["cust"], &["scust"]).unwrap();
        assert_eq!(inner.len(), 3);
        let outer = left_outer_join(&left, &sales(), &["cust"], &["scust"]).unwrap();
        // NULL left row survives as padded.
        assert_eq!(outer.len(), 5);
    }

    #[test]
    fn key_arity_checked() {
        let err = hash_join(&custs(), &sales(), &["cust"], &["scust", "sale"]);
        assert!(matches!(err, Err(NaiveError::KeyArity { .. })));
    }

    #[test]
    fn theta_join_inequality() {
        // cust < sale/10
        let out = theta_join(
            &custs(),
            &sales(),
            &lt(col_b("cust"), div(col_r("sale"), lit(10i64))),
        )
        .unwrap();
        // sale 10 → 1.0: no cust < 1; sale 20 → 2: cust 1; sale 30 → 3: custs 1,2.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn join_empty_sides() {
        let empty = Relation::empty(sales().schema().clone());
        assert_eq!(
            hash_join(&custs(), &empty, &["cust"], &["scust"])
                .unwrap()
                .len(),
            0
        );
        let outer = left_outer_join(&custs(), &empty, &["cust"], &["scust"]).unwrap();
        assert_eq!(outer.len(), 3); // all padded
    }
}
