//! A sort-based executor profile — the closest in-memory model of the
//! commercial engines the paper benchmarked against (Section 5).
//!
//! Year-2001 executors evaluated multi-block decision-support SQL with
//! sort-based operators: every group-by sorts its input, every join is a
//! sort-merge join that re-sorts both sides, and every operator materializes
//! its output. No hash aggregation, no shared scans, no order propagation
//! between blocks. The hash-based operators in [`crate::groupby`] /
//! [`crate::join`] are a *best-case* classical baseline; this module is the
//! *representative-case* one. The E2/E4 experiments report both.

use crate::error::Result;
use mdj_agg::{AggInput, AggSpec, AggState, Registry};
use mdj_storage::{DataType, Field, Relation, Row, Schema, Value};

/// Sort-based group-by: sort a copy of the input on the keys, then aggregate
/// run-by-run in one pass.
pub fn sort_group_by(
    r: &Relation,
    keys: &[&str],
    specs: &[AggSpec],
    registry: &Registry,
) -> Result<Relation> {
    let mut sorted = r.clone(); // materialize (the 2001 way)
    sorted.sort_by(keys)?;
    let key_idx = sorted.schema().indices_of(keys)?;
    let mut bound: Vec<(mdj_agg::traits::AggRef, Option<usize>, Field)> = Vec::new();
    for spec in specs {
        let agg = registry.get(&spec.function)?;
        let (col, input_type) = match &spec.input {
            AggInput::Star => (None, DataType::Int),
            AggInput::Column(c) => {
                let i = sorted.schema().index_of(c)?;
                (Some(i), sorted.schema().field(i).dtype)
            }
        };
        bound.push((
            agg.clone(),
            col,
            Field::new(spec.output_name(), agg.output_type(input_type)),
        ));
    }
    let mut fields: Vec<Field> = key_idx
        .iter()
        .map(|&i| sorted.schema().field(i).clone())
        .collect();
    fields.extend(bound.iter().map(|(_, _, f)| f.clone()));
    let mut out = Relation::empty(Schema::new(fields));
    let mut current: Option<Vec<Value>> = None;
    let mut states: Vec<Box<dyn AggState>> = Vec::new();
    for row in sorted.iter() {
        let key = row.key(&key_idx);
        if current.as_deref() != Some(&key[..]) {
            if let Some(k) = current.take() {
                let mut vals = k;
                vals.extend(states.iter().map(|s| s.finalize()));
                out.push_unchecked(Row::new(vals));
            }
            states = bound.iter().map(|(a, _, _)| a.init()).collect();
            current = Some(key);
        }
        for (j, (_, col, _)) in bound.iter().enumerate() {
            let v = match col {
                Some(c) => &row[*c],
                None => &Value::Null,
            };
            states[j].update(v)?;
        }
    }
    if let Some(k) = current {
        let mut vals = k;
        vals.extend(states.iter().map(|s| s.finalize()));
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

/// Sort-merge inner equi-join: re-sorts *both* inputs (no order reuse), then
/// merges, materializing the cross product of each matching run pair.
pub fn sort_merge_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[&str],
    right_keys: &[&str],
) -> Result<Relation> {
    merge_join(left, right, left_keys, right_keys, false)
}

/// Sort-merge left outer join.
pub fn sort_merge_left_outer(
    left: &Relation,
    right: &Relation,
    left_keys: &[&str],
    right_keys: &[&str],
) -> Result<Relation> {
    merge_join(left, right, left_keys, right_keys, true)
}

fn merge_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[&str],
    right_keys: &[&str],
    outer: bool,
) -> Result<Relation> {
    let mut l = left.clone();
    l.sort_by(left_keys)?;
    let mut r = right.clone();
    r.sort_by(right_keys)?;
    let lk = l.schema().indices_of(left_keys)?;
    let rk = r.schema().indices_of(right_keys)?;
    let schema = l.schema().concat(r.schema());
    let null_pad = Row::new(vec![Value::Null; r.schema().len()]);
    let mut out = Relation::empty(schema);
    let (lrows, rrows) = (l.rows(), r.rows());
    let (mut i, mut j) = (0usize, 0usize);
    while i < lrows.len() {
        let lkey = lrows[i].key(&lk);
        // NULL keys never match; outer keeps them padded.
        if lkey.iter().any(Value::is_null) {
            if outer {
                out.push_unchecked(lrows[i].concat(&null_pad));
            }
            i += 1;
            continue;
        }
        // Advance right side to the first key ≥ lkey.
        while j < rrows.len() && rrows[j].key(&rk) < lkey {
            j += 1;
        }
        // Find the right-side run equal to lkey.
        let run_start = j;
        let mut run_end = j;
        while run_end < rrows.len() && rrows[run_end].key(&rk) == lkey {
            run_end += 1;
        }
        // Emit for every left row in the equal run.
        let lrun_start = i;
        while i < lrows.len() && lrows[i].key(&lk) == lkey {
            if run_start == run_end {
                if outer {
                    out.push_unchecked(lrows[i].concat(&null_pad));
                }
            } else {
                for rrow in &rrows[run_start..run_end] {
                    out.push_unchecked(lrows[i].concat(rrow));
                }
            }
            i += 1;
        }
        debug_assert!(i > lrun_start, "left cursor must advance");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groupby::group_by_agg;
    use crate::join::{hash_join, left_outer_join};

    fn rel(rows: &[(i64, i64)]) -> Relation {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        Relation::from_rows(
            schema,
            rows.iter()
                .map(|&(k, v)| Row::from_values([k, v]))
                .collect(),
        )
    }

    #[test]
    fn sort_group_by_matches_hash_group_by() {
        let r = rel(&[(1, 10), (2, 20), (1, 30), (3, 40), (2, 50)]);
        let specs = [
            AggSpec::on_column("sum", "v"),
            AggSpec::count_star(),
            AggSpec::on_column("min", "v"),
        ];
        let reg = Registry::standard();
        let a = sort_group_by(&r, &["k"], &specs, &reg).unwrap();
        let b = group_by_agg(&r, &["k"], &specs, &reg).unwrap();
        assert!(a.same_multiset(&b));
    }

    #[test]
    fn sort_merge_matches_hash_join() {
        let l = rel(&[(1, 1), (2, 2), (2, 22), (4, 4)]);
        let r = rel(&[(2, 200), (2, 201), (3, 300), (4, 400)]);
        let a = sort_merge_join(&l, &r, &["k"], &["k"]).unwrap();
        let b = hash_join(&l, &r, &["k"], &["k"]).unwrap();
        assert!(a.same_multiset(&b));
        assert_eq!(a.len(), 5); // 2×2 + 1
    }

    #[test]
    fn sort_merge_outer_matches_hash_outer() {
        let l = rel(&[(1, 1), (2, 2), (5, 5)]);
        let r = rel(&[(2, 200), (3, 300)]);
        let a = sort_merge_left_outer(&l, &r, &["k"], &["k"]).unwrap();
        let b = left_outer_join(&l, &r, &["k"], &["k"]).unwrap();
        assert!(a.same_multiset(&b));
    }

    #[test]
    fn null_keys_padded_in_outer_dropped_in_inner() {
        let mut l = rel(&[(1, 1)]);
        l.rows_mut()
            .push(Row::new(vec![Value::Null, Value::Int(9)]));
        let r = rel(&[(1, 100)]);
        let inner = sort_merge_join(&l, &r, &["k"], &["k"]).unwrap();
        assert_eq!(inner.len(), 1);
        let outer = sort_merge_left_outer(&l, &r, &["k"], &["k"]).unwrap();
        assert_eq!(outer.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let l = rel(&[]);
        let r = rel(&[(1, 1)]);
        assert!(sort_merge_join(&l, &r, &["k"], &["k"]).unwrap().is_empty());
        assert!(
            sort_group_by(&l, &["k"], &[AggSpec::count_star()], &Registry::standard())
                .unwrap()
                .is_empty()
        );
    }
}
