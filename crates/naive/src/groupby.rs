//! Hash group-by aggregation — "standard aggregation" in the paper's terms.
//!
//! Unlike the MD-join, the group keys come *from the data* (a group with no
//! tuples does not exist), and the aggregates run over exactly the group's
//! tuples. The MD-join paper's point is that this coupling is what makes
//! complex OLAP awkward; we implement it faithfully so both the baseline
//! plans and the test oracle can use it.

use crate::error::Result;
use mdj_agg::{AggInput, AggSpec, AggState, Registry};
use mdj_storage::{DataType, Field, Relation, Row, Schema, Value};
use std::collections::HashMap;

/// `SELECT keys…, aggs… FROM r GROUP BY keys…`.
///
/// Output columns: the key columns (original types) followed by one column
/// per aggregate spec. Group order follows first appearance in `r`.
pub fn group_by_agg(
    r: &Relation,
    keys: &[&str],
    specs: &[AggSpec],
    registry: &Registry,
) -> Result<Relation> {
    let key_idx = r.schema().indices_of(keys)?;
    // Bind aggregates to input columns.
    let mut bound: Vec<(mdj_agg::traits::AggRef, Option<usize>, Field)> = Vec::new();
    for spec in specs {
        let agg = registry.get(&spec.function)?;
        let (col, input_type) = match &spec.input {
            AggInput::Star => (None, DataType::Int),
            AggInput::Column(c) => {
                let i = r.schema().index_of(c)?;
                (Some(i), r.schema().field(i).dtype)
            }
        };
        bound.push((
            agg.clone(),
            col,
            Field::new(spec.output_name(), agg.output_type(input_type)),
        ));
    }

    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<Box<dyn AggState>>> = HashMap::new();
    for row in r.iter() {
        let key = row.key(&key_idx);
        let states = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            bound.iter().map(|(agg, _, _)| agg.init()).collect()
        });
        for (j, (_, col, _)) in bound.iter().enumerate() {
            let v = match col {
                Some(c) => &row[*c],
                None => &Value::Null,
            };
            states[j].update(v)?;
        }
    }

    let mut fields: Vec<Field> = key_idx
        .iter()
        .map(|&i| r.schema().field(i).clone())
        .collect();
    fields.extend(bound.iter().map(|(_, _, f)| f.clone()));
    let mut out = Relation::empty(Schema::new(fields));
    for key in order {
        let states = &groups[&key];
        let mut vals = key.clone();
        vals.extend(states.iter().map(|s| s.finalize()));
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::str("NY"), Value::Float(10.0)]),
                Row::from_values(vec![Value::Int(1), Value::str("NY"), Value::Float(30.0)]),
                Row::from_values(vec![Value::Int(2), Value::str("NJ"), Value::Float(5.0)]),
            ],
        )
    }

    #[test]
    fn groups_and_aggregates() {
        let out = group_by_agg(
            &sales(),
            &["cust"],
            &[AggSpec::on_column("avg", "sale"), AggSpec::count_star()],
            &Registry::standard(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.schema().names(), vec!["cust", "avg_sale", "count_star"]);
        let c1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(c1[1], Value::Float(20.0));
        assert_eq!(c1[2], Value::Int(2));
    }

    #[test]
    fn missing_groups_do_not_exist() {
        // The coupling the paper criticizes: only groups present in the data.
        let ny = sales().filter(|r| r[1] == Value::str("NY"));
        let out = group_by_agg(
            &ny,
            &["cust"],
            &[AggSpec::on_column("sum", "sale")],
            &Registry::standard(),
        )
        .unwrap();
        assert_eq!(out.len(), 1); // cust 2 absent
    }

    #[test]
    fn group_by_multiple_keys() {
        let out = group_by_agg(
            &sales(),
            &["cust", "state"],
            &[AggSpec::count_star()],
            &Registry::standard(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn group_by_no_keys_is_global_aggregate() {
        let out = group_by_agg(
            &sales(),
            &[],
            &[AggSpec::on_column("sum", "sale")],
            &Registry::standard(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Float(45.0));
    }

    #[test]
    fn empty_input_no_keys_yields_empty() {
        // SQL subtlety: GROUP BY () over an empty table yields one row, but a
        // hash group-by (what we model) yields none. The MD-join gets this
        // right via B; the naive plans must outer-join to recover rows.
        let empty = Relation::empty(sales().schema().clone());
        let out =
            group_by_agg(&empty, &[], &[AggSpec::count_star()], &Registry::standard()).unwrap();
        assert!(out.is_empty());
    }
}
