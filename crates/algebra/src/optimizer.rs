//! The rewrite driver: apply the paper's transformations, keep what the cost
//! model likes.

use crate::cost::estimate_cost;
use crate::error::Result;
use crate::plan::Plan;
use crate::rules::{coalesce_chains, push_base_ranges_to_detail, pushdown_detail_selection};
use mdj_agg::Registry;
use mdj_storage::Catalog;

/// Cost-based optimizer over the paper's rule set.
///
/// Pipeline (each step keeps its output only if the cost model does not
/// regress, so a pathological estimate cannot produce a worse plan than the
/// input):
///
/// 1. Theorem 4.2 pushdown (detail-only conjuncts → σ on `R`).
/// 2. Observation 4.1 (base range predicates copied to `R`).
/// 3. Theorem 4.3 coalescing (chains → generalized MD-joins).
/// 4. Theorem 4.1 parallelization (MD-joins → morsel-parallel [`Plan::Parallel`]
///    nodes, kept only when the modeled work exceeds the per-thread startup
///    charge — small plans stay serial).
#[derive(Debug, Default)]
pub struct Optimizer {
    /// Skip the coalescing phase (ablation knob for benches).
    pub disable_coalesce: bool,
    /// Skip the pushdown phases (ablation knob for benches).
    pub disable_pushdown: bool,
    /// Skip the parallelization phase (ablation knob for benches).
    pub disable_parallel: bool,
    /// Worker threads used when costing/wrapping `Plan::Parallel` nodes.
    /// `None` → all available cores.
    pub parallel_threads: Option<usize>,
}

impl Optimizer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Optimize a plan. Never errors on rule preconditions (rules are
    /// applied where they match); only cost estimation can fail.
    pub fn optimize(&self, plan: Plan, catalog: &Catalog, registry: &Registry) -> Result<Plan> {
        let mut best = plan;
        let mut best_cost = estimate_cost(&best, catalog, registry)?;
        let consider = |candidate: Plan, best: &mut Plan, best_cost: &mut f64| -> Result<()> {
            let cost = estimate_cost(&candidate, catalog, registry)?;
            if cost < *best_cost {
                *best = candidate;
                *best_cost = cost;
            }
            Ok(())
        };
        if !self.disable_pushdown {
            let pushed = pushdown_detail_selection(best.clone());
            consider(pushed, &mut best, &mut best_cost)?;
            let ranged = push_base_ranges_to_detail(best.clone());
            consider(ranged, &mut best, &mut best_cost)?;
        }
        if !self.disable_coalesce {
            let coalesced = coalesce_chains(best.clone());
            consider(coalesced, &mut best, &mut best_cost)?;
        }
        if !self.disable_parallel {
            let threads = self.parallel_threads.unwrap_or(0); // 0 → all cores
            let parallelized = parallelize(best.clone(), threads);
            consider(parallelized, &mut best, &mut best_cost)?;
        }
        Ok(best)
    }
}

/// Wrap every MD-join node in a [`Plan::Parallel`] node so it runs on the
/// morsel-driven executor. Generalized MD-joins stay serial (their single-scan
/// evaluation is already the coalescing win). The caller cost-gates the
/// result, so this is safe to apply unconditionally.
fn parallelize(plan: Plan, threads: usize) -> Plan {
    plan.transform_up(&|p| match p {
        Plan::MdJoin { .. } => p.parallel(threads),
        other => other,
    })
}

/// One-shot convenience: default optimizer.
pub fn optimize(plan: Plan, catalog: &Catalog, registry: &Registry) -> Result<Plan> {
    Optimizer::new().optimize(plan, catalog, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::rules::coalesce::detail_scan_count;
    use mdj_agg::AggSpec;
    use mdj_core::ExecContext;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, Relation, Row, Schema, Value};

    fn catalog() -> Catalog {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("state", DataType::Str),
            ("year", DataType::Int),
            ("sale", DataType::Float),
        ]);
        let mk = |c: i64, st: &str, y: i64, s: f64| {
            Row::from_values(vec![
                Value::Int(c),
                Value::str(st),
                Value::Int(y),
                Value::Float(s),
            ])
        };
        let rel = Relation::from_rows(
            schema,
            vec![
                mk(1, "NY", 1994, 10.0),
                mk(1, "NJ", 1996, 20.0),
                mk(1, "CT", 1999, 30.0),
                mk(2, "NY", 1999, 40.0),
            ],
        );
        let mut c = Catalog::new();
        c.register("Sales", rel);
        c
    }

    fn tri_state_chain() -> Plan {
        let mut plan = Plan::table("Sales").group_by_base(&["cust"]);
        for st in ["NY", "NJ", "CT"] {
            plan = plan.md_join(
                Plan::table("Sales"),
                vec![AggSpec::on_column("avg", "sale")
                    .with_alias(format!("avg_{}", st.to_lowercase()))],
                and(
                    eq(col_r("cust"), col_b("cust")),
                    eq(col_r("state"), lit(st)),
                ),
            );
        }
        plan
    }

    #[test]
    fn optimizer_pushes_and_coalesces_example_2_2() {
        let cat = catalog();
        let reg = Registry::standard();
        let plan = tri_state_chain();
        let optimized = optimize(plan.clone(), &cat, &reg).unwrap();
        // One scan, and the per-state selections live on the θs or σs, not in
        // three separate scans.
        assert_eq!(detail_scan_count(&optimized), 1);
        // Equivalence.
        let ctx = ExecContext::new();
        let a = execute(&plan, &cat, &ctx).unwrap();
        let b = execute(&optimized, &cat, &ctx).unwrap();
        let cols = ["cust", "avg_ny", "avg_nj", "avg_ct"];
        assert!(a
            .project(&cols)
            .unwrap()
            .same_multiset(&b.project(&cols).unwrap()));
    }

    #[test]
    fn optimizer_never_regresses_cost() {
        let cat = catalog();
        let reg = Registry::standard();
        let plan = tri_state_chain();
        let before = estimate_cost(&plan, &cat, &reg).unwrap();
        let optimized = optimize(plan, &cat, &reg).unwrap();
        let after = estimate_cost(&optimized, &cat, &reg).unwrap();
        assert!(after <= before);
    }

    #[test]
    fn ablation_knobs() {
        let cat = catalog();
        let reg = Registry::standard();
        let plan = tri_state_chain();
        let no_coalesce = Optimizer {
            disable_coalesce: true,
            ..Default::default()
        }
        .optimize(plan.clone(), &cat, &reg)
        .unwrap();
        assert_eq!(detail_scan_count(&no_coalesce), 3);
        let full = Optimizer::new().optimize(plan, &cat, &reg).unwrap();
        assert_eq!(detail_scan_count(&full), 1);
    }

    #[test]
    fn plain_table_passes_through() {
        let cat = catalog();
        let reg = Registry::standard();
        let plan = Plan::table("Sales");
        assert_eq!(optimize(plan.clone(), &cat, &reg).unwrap(), plan);
    }

    #[test]
    fn small_md_joins_stay_serial() {
        // 4-row catalog: the per-thread startup charge dwarfs the work, so
        // the cost gate must reject the Parallel wrapping.
        let cat = catalog();
        let reg = Registry::standard();
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("avg", "sale")],
            eq(col_b("cust"), col_r("cust")),
        );
        let optimized = optimize(plan, &cat, &reg).unwrap();
        let mut parallel_nodes = 0;
        optimized.visit(&mut |p| {
            if matches!(p, Plan::Parallel { .. }) {
                parallel_nodes += 1;
            }
        });
        assert_eq!(parallel_nodes, 0);
    }

    #[test]
    fn large_md_joins_get_parallelized() {
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Float)]);
        let rel = Relation::from_rows(
            schema,
            (0..50_000)
                .map(|i| Row::from_values(vec![Value::Int(i % 64), Value::Float(i as f64)]))
                .collect(),
        );
        let mut cat = Catalog::new();
        cat.register("Big", rel);
        let reg = Registry::standard();
        let plan = Plan::table("Big").group_by_base(&["cust"]).md_join(
            Plan::table("Big"),
            vec![AggSpec::on_column("sum", "sale")],
            eq(col_b("cust"), col_r("cust")),
        );
        let opt = Optimizer {
            parallel_threads: Some(8),
            ..Default::default()
        };
        let optimized = opt.optimize(plan.clone(), &cat, &reg).unwrap();
        assert!(
            matches!(optimized, Plan::Parallel { threads: 8, .. }),
            "expected Parallel wrapping, got {optimized:?}"
        );
        // And the parallel plan computes the same answer.
        let ctx = ExecContext::new();
        let a = execute(&plan, &cat, &ctx).unwrap();
        let b = execute(&optimized, &cat, &ctx).unwrap();
        assert!(a.same_multiset(&b));
    }
}
