//! Error type for planning and execution.

use std::fmt;

pub type Result<T, E = AlgebraError> = std::result::Result<T, E>;

/// Errors from plan construction, optimization, or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    Storage(mdj_storage::StorageError),
    Expr(mdj_expr::ExprError),
    Agg(mdj_agg::AggError),
    Core(mdj_core::CoreError),
    Naive(mdj_naive::NaiveError),
    /// A rewrite's precondition did not hold.
    RuleNotApplicable { rule: &'static str, reason: String },
    /// Plan is malformed (e.g. empty union).
    InvalidPlan(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Storage(e) => write!(f, "storage error: {e}"),
            AlgebraError::Expr(e) => write!(f, "expression error: {e}"),
            AlgebraError::Agg(e) => write!(f, "aggregate error: {e}"),
            AlgebraError::Core(e) => write!(f, "md-join error: {e}"),
            AlgebraError::Naive(e) => write!(f, "relational operator error: {e}"),
            AlgebraError::RuleNotApplicable { rule, reason } => {
                write!(f, "rule `{rule}` not applicable: {reason}")
            }
            AlgebraError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for AlgebraError {}

impl From<mdj_storage::StorageError> for AlgebraError {
    fn from(e: mdj_storage::StorageError) -> Self {
        AlgebraError::Storage(e)
    }
}

impl From<mdj_expr::ExprError> for AlgebraError {
    fn from(e: mdj_expr::ExprError) -> Self {
        AlgebraError::Expr(e)
    }
}

impl From<mdj_agg::AggError> for AlgebraError {
    fn from(e: mdj_agg::AggError) -> Self {
        AlgebraError::Agg(e)
    }
}

impl From<mdj_core::CoreError> for AlgebraError {
    fn from(e: mdj_core::CoreError) -> Self {
        AlgebraError::Core(e)
    }
}

impl From<mdj_naive::NaiveError> for AlgebraError {
    fn from(e: mdj_naive::NaiveError) -> Self {
        AlgebraError::Naive(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: AlgebraError = mdj_core::CoreError::BadConfig("x".into()).into();
        assert!(e.to_string().contains("md-join"));
        let e = AlgebraError::RuleNotApplicable {
            rule: "split",
            reason: "θ mentions both detail tables".into(),
        };
        assert!(e.to_string().contains("split"));
    }
}
