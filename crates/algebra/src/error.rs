//! Error type for planning and execution.

use std::fmt;

pub type Result<T, E = AlgebraError> = std::result::Result<T, E>;

/// Errors from plan construction, optimization, or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    Storage(mdj_storage::StorageError),
    Expr(mdj_expr::ExprError),
    Agg(mdj_agg::AggError),
    Core(mdj_core::CoreError),
    Naive(mdj_naive::NaiveError),
    /// A rewrite's precondition did not hold.
    RuleNotApplicable {
        rule: &'static str,
        reason: String,
    },
    /// Plan is malformed (e.g. empty union).
    InvalidPlan(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Storage(e) => write!(f, "storage error: {e}"),
            AlgebraError::Expr(e) => write!(f, "expression error: {e}"),
            AlgebraError::Agg(e) => write!(f, "aggregate error: {e}"),
            AlgebraError::Core(e) => write!(f, "md-join error: {e}"),
            AlgebraError::Naive(e) => write!(f, "relational operator error: {e}"),
            AlgebraError::RuleNotApplicable { rule, reason } => {
                write!(f, "rule `{rule}` not applicable: {reason}")
            }
            AlgebraError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for AlgebraError {
    /// Expose the wrapped layer's error so `source()` chains walk the full
    /// hierarchy (storage → expr/agg → core → algebra), matching
    /// [`mdj_core::CoreError`].
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Storage(e) => Some(e),
            AlgebraError::Expr(e) => Some(e),
            AlgebraError::Agg(e) => Some(e),
            AlgebraError::Core(e) => Some(e),
            AlgebraError::Naive(e) => Some(e),
            AlgebraError::RuleNotApplicable { .. } | AlgebraError::InvalidPlan(_) => None,
        }
    }
}

impl From<mdj_storage::StorageError> for AlgebraError {
    fn from(e: mdj_storage::StorageError) -> Self {
        AlgebraError::Storage(e)
    }
}

impl From<mdj_expr::ExprError> for AlgebraError {
    fn from(e: mdj_expr::ExprError) -> Self {
        AlgebraError::Expr(e)
    }
}

impl From<mdj_agg::AggError> for AlgebraError {
    fn from(e: mdj_agg::AggError) -> Self {
        AlgebraError::Agg(e)
    }
}

impl From<mdj_core::CoreError> for AlgebraError {
    fn from(e: mdj_core::CoreError) -> Self {
        AlgebraError::Core(e)
    }
}

impl From<mdj_naive::NaiveError> for AlgebraError {
    fn from(e: mdj_naive::NaiveError) -> Self {
        AlgebraError::Naive(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: AlgebraError = mdj_core::CoreError::BadConfig("x".into()).into();
        assert!(e.to_string().contains("md-join"));
        let e = AlgebraError::RuleNotApplicable {
            rule: "split",
            reason: "θ mentions both detail tables".into(),
        };
        assert!(e.to_string().contains("split"));
    }

    #[test]
    fn source_chains_through_the_layers() {
        use std::error::Error;
        // storage → core → algebra: source() walks all the way down.
        let storage = mdj_storage::StorageError::UnknownColumn {
            name: "ghost".into(),
            schema: "(cust, sale)".into(),
        };
        let core: mdj_core::CoreError = storage.into();
        let e: AlgebraError = core.into();
        let src = e.source().expect("algebra error wraps core");
        assert!(src.to_string().contains("ghost"));
        let inner = src.source().expect("core error wraps storage");
        assert!(inner.to_string().contains("ghost"));
        // Leaf variants have no source.
        assert!(AlgebraError::InvalidPlan("x".into()).source().is_none());
    }
}
