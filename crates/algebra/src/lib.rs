//! # mdj-algebra
//!
//! Relational algebra with an MD-join node, plus the paper's algebraic
//! transformations as rewrite rules and a small cost-based optimizer.
//!
//! Section 4's argument is that because the MD-join is *one operator* with
//! clean algebraic properties, complex OLAP queries become optimizable by an
//! ordinary rewrite/cost framework instead of per-query-class algorithms. The
//! rule set here implements exactly the paper's transformations:
//!
//! | Rule | Paper | Effect |
//! |---|---|---|
//! | [`rules::partition`] | Thm 4.1 | `MD(B,R,l,θ) = ⋃ᵢ MD(Bᵢ,R,l,θ)` |
//! | [`rules::pushdown`] | Thm 4.2 | detail-only conjuncts of θ become `σ` on `R` |
//! | [`rules::pushdown`] (base ranges) | Obs 4.1 | range selections on `B` copied to `R` |
//! | [`rules::commute`] | Thm 4.3 | independent MD-joins swap |
//! | [`rules::coalesce`] | Thm 4.3 | a chain collapses into generalized MD-joins (O(k²) scheduling) |
//! | [`rules::split`] | Thm 4.4 | a chain over different detail tables splits into an equijoin |
//!
//! (Theorem 4.5's roll-up lives in `mdj-cube`, where the cuboid lattice it
//! needs is available.)

pub mod cost;
pub mod error;
pub mod exec;
pub mod explain;
pub mod optimizer;
pub mod plan;
pub mod rules;

pub use error::{AlgebraError, Result};
pub use exec::execute;
pub use optimizer::{optimize, Optimizer};
pub use plan::{BaseShape, Plan, PlanBlock};
