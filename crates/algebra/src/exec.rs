//! Plan execution.

use crate::error::{AlgebraError, Result};
use crate::plan::{BaseShape, Plan};
use mdj_core::basevalues;
use mdj_core::{Block, ExecContext, ExecStrategy, MdJoin};
use mdj_storage::{Catalog, Relation, Row};

/// Execute a logical plan against a catalog.
///
/// MD-join nodes run Algorithm 3.1 with the context's probe strategy;
/// generalized MD-join nodes evaluate all blocks in one scan.
pub fn execute(plan: &Plan, catalog: &Catalog, ctx: &ExecContext) -> Result<Relation> {
    // Governor poll per plan node: a cancelled or timed-out query stops
    // between operators even when an individual operator's own polls are far
    // apart (e.g. a cheap Select feeding an expensive MD-join).
    ctx.check_interrupt()?;
    // Fault-injection site per plan node (constant false unless armed): a
    // typed failure here exercises the same error path a planner bug would.
    if ctx.fault_should_fail_planner() {
        return Err(AlgebraError::Core(mdj_core::CoreError::Internal(
            "injected fault: plan execution".into(),
        )));
    }
    match plan {
        Plan::Table(name) => Ok(catalog.get(name)?.as_ref().clone()),
        Plan::Inline(rel) => Ok(rel.as_ref().clone()),
        Plan::Select { input, pred } => {
            let rel = execute(input, catalog, ctx)?;
            // σ predicates are usually written over the detail side, but
            // predicates produced for *base* plans (Observation 4.1 inputs)
            // use base-side references; accept both.
            if pred.uses_side(mdj_expr::Side::Base) {
                let bound = pred.bind(Some(rel.schema()), None)?;
                let mut out = Relation::empty(rel.schema().clone());
                for row in rel.iter() {
                    if bound.eval_bool(row.values(), &[])? {
                        out.push_unchecked(row.clone());
                    }
                }
                Ok(out)
            } else {
                Ok(mdj_naive::ops::select(&rel, pred)?)
            }
        }
        Plan::Project { input, cols } => {
            let rel = execute(input, catalog, ctx)?;
            let names: Vec<&str> = cols.iter().map(String::as_str).collect();
            Ok(rel.project(&names)?)
        }
        Plan::Base { input, shape } => {
            let rel = execute(input, catalog, ctx)?;
            let dims: Vec<&str> = shape.dims().iter().map(String::as_str).collect();
            let out = match shape {
                BaseShape::GroupBy(_) => basevalues::group_by(&rel, &dims)?,
                BaseShape::Cube(_) => basevalues::cube(&rel, &dims)?,
                BaseShape::Rollup(_) => basevalues::rollup(&rel, &dims)?,
                BaseShape::GroupingSets(_, sets) => {
                    let sets: Vec<Vec<&str>> = sets
                        .iter()
                        .map(|s| s.iter().map(String::as_str).collect())
                        .collect();
                    basevalues::grouping_sets(&rel, &dims, &sets)?
                }
                BaseShape::Unpivot(_) => basevalues::unpivot(&rel, &dims)?,
            };
            Ok(out)
        }
        Plan::Union(parts) => {
            let mut iter = parts.iter();
            let first = iter
                .next()
                .ok_or_else(|| AlgebraError::InvalidPlan("union of zero plans".into()))?;
            let mut acc = execute(first, catalog, ctx)?;
            for p in iter {
                let next = execute(p, catalog, ctx)?;
                acc = acc.union(&next)?;
            }
            Ok(acc)
        }
        Plan::MdJoin {
            base,
            detail,
            aggs,
            theta,
        } => {
            if let Some(out) = try_cached_cuboid(base, detail, aggs, theta, catalog, ctx)? {
                return Ok(out);
            }
            if let Some(out) = try_paged_md_join(
                base,
                detail,
                aggs,
                theta,
                ExecStrategy::Serial,
                None,
                catalog,
                ctx,
            )? {
                return Ok(out);
            }
            let b = execute(base, catalog, ctx)?;
            let r = execute(detail, catalog, ctx)?;
            Ok(MdJoin::new(&b, &r)
                .aggs(aggs)
                .theta(theta.clone())
                .strategy(ExecStrategy::Serial)
                .run(ctx)?)
        }
        Plan::GenMdJoin {
            base,
            detail,
            blocks,
        } => {
            let b = execute(base, catalog, ctx)?;
            let r = execute(detail, catalog, ctx)?;
            let core_blocks: Vec<Block> = blocks
                .iter()
                .map(|blk| Block::new(blk.theta.clone(), blk.aggs.clone()))
                .collect();
            Ok(MdJoin::new(&b, &r).blocks(core_blocks).run(ctx)?)
        }
        Plan::Parallel { input, threads } => match input.as_ref() {
            Plan::MdJoin {
                base,
                detail,
                aggs,
                theta,
            } => {
                let threads = if *threads > 0 { Some(*threads) } else { None };
                if let Some(out) = try_paged_md_join(
                    base,
                    detail,
                    aggs,
                    theta,
                    ExecStrategy::Morsel,
                    threads,
                    catalog,
                    ctx,
                )? {
                    return Ok(out);
                }
                let b = execute(base, catalog, ctx)?;
                let r = execute(detail, catalog, ctx)?;
                let mut join = MdJoin::new(&b, &r)
                    .aggs(aggs)
                    .theta(theta.clone())
                    .strategy(ExecStrategy::Morsel);
                if let Some(t) = threads {
                    join = join.threads(t);
                }
                Ok(join.run(ctx)?)
            }
            other => Err(AlgebraError::InvalidPlan(format!(
                "Parallel may only wrap an MD-join node, got {other:?}"
            ))),
        },
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            keep_right,
        } => {
            let l = execute(left, catalog, ctx)?;
            let r = execute(right, catalog, ctx)?;
            let lk: Vec<&str> = left_keys.iter().map(String::as_str).collect();
            let rk: Vec<&str> = right_keys.iter().map(String::as_str).collect();
            let joined = mdj_naive::join::hash_join(&l, &r, &lk, &rk)?;
            // Keep left columns + the requested right columns.
            let keep_idx: Vec<usize> = {
                let mut idx: Vec<usize> = (0..l.schema().len()).collect();
                for name in keep_right {
                    let i = r.schema().index_of(name)?;
                    idx.push(l.schema().len() + i);
                }
                idx
            };
            let schema = joined.schema().project(&keep_idx);
            let rows = joined
                .iter()
                .map(|row| Row::new(row.key(&keep_idx)))
                .collect();
            Ok(Relation::from_rows(schema, rows))
        }
    }
}

/// The disk-resident fast path: when the MD-join's detail input is a
/// catalog table backed by a page store (and the engine has a buffer pool
/// attached), evaluate with [`mdj_core::paged_md_join`] instead of handing
/// the executor the resident relation. Theorem 4.2's prefilter then becomes
/// clustered-key page pruning — skipped pages are never read — and the
/// query's `ScanStats` pick up `pages_read` / `bytes_read`.
///
/// A detail-side σ directly under the MD-join participates too:
/// `MD(B, σ_p(R), l, θ) = MD(B, R, l, θ ∧ p)` (the range over `b` is
/// `{r | p(r) ∧ θ(b, r)}` either way), and folding `p` into θ is exactly
/// what lets a key predicate prune pages instead of filtering rows after
/// a full read.
#[allow(clippy::too_many_arguments)]
fn try_paged_md_join(
    base: &Plan,
    detail: &Plan,
    aggs: &[mdj_agg::AggSpec],
    theta: &mdj_expr::Expr,
    strategy: ExecStrategy,
    threads: Option<usize>,
    catalog: &Catalog,
    ctx: &ExecContext,
) -> Result<Option<Relation>> {
    let Some(pool) = ctx.buffer_pool() else {
        return Ok(None);
    };
    // Unwrap an optional detail-side σ; base-side predicates (Observation
    // 4.1 base inputs) cannot be folded into θ, so those fall through.
    let (table_plan, folded_theta) = match detail {
        Plan::Select { input, pred } if !pred.uses_side(mdj_expr::Side::Base) => (
            input.as_ref(),
            mdj_expr::builder::and(theta.clone(), pred.clone()),
        ),
        other => (other, theta.clone()),
    };
    let Plan::Table(name) = table_plan else {
        return Ok(None);
    };
    let Some(paged) = catalog.paged(name) else {
        return Ok(None);
    };
    let b = execute(base, catalog, ctx)?;
    let scan = mdj_core::PagedScan::new(paged, pool);
    Ok(Some(mdj_core::paged_md_join(
        &b,
        &scan,
        aggs,
        &folded_theta,
        strategy,
        threads,
        ctx,
    )?))
}

/// The cuboid-cache fast path for the canonical group-by shape
/// `MD(γ_dims(T), T, l, θ_dims)`: exact repeats are answered from the cached
/// result, coarser queries roll up from a finer cached cuboid (Theorem 4.5),
/// and misses execute once and become resident. Returns `None` (fall through
/// to ordinary execution) when no cache is configured or the plan is not in
/// canonical form.
fn try_cached_cuboid(
    base: &Plan,
    detail: &Plan,
    aggs: &[mdj_agg::AggSpec],
    theta: &mdj_expr::Expr,
    catalog: &Catalog,
    ctx: &ExecContext,
) -> Result<Option<Relation>> {
    use mdj_core::cache::{cuboid_theta, CacheAnswer, CuboidRequest};
    let Some(cache) = ctx.cuboid_cache() else {
        return Ok(None);
    };
    let (
        Plan::Table(detail_name),
        Plan::Base {
            input,
            shape: crate::plan::BaseShape::GroupBy(dims),
        },
    ) = (detail, base)
    else {
        return Ok(None);
    };
    let Plan::Table(base_name) = input.as_ref() else {
        return Ok(None);
    };
    if base_name != detail_name || *theta != cuboid_theta(dims) {
        return Ok(None);
    }
    // Resolve the *shared* Arc so the cache's pointer-identity validity test
    // sees the same allocation on every repeat of the query.
    let detail_rel = catalog.get(detail_name)?;
    let req = CuboidRequest::new(detail_name.clone(), dims.clone(), aggs.to_vec());
    match cache.lookup(&req, &detail_rel, ctx)? {
        CacheAnswer::Exact(rel) => {
            if let Some(stats) = ctx.stats() {
                stats.record_cache_hit();
            }
            Ok(Some(rel.as_ref().clone()))
        }
        CacheAnswer::Rollup(rel) => {
            if let Some(stats) = ctx.stats() {
                stats.record_cache_rollup_hit();
            }
            Ok(Some(rel.as_ref().clone()))
        }
        CacheAnswer::Miss => {
            if let Some(stats) = ctx.stats() {
                stats.record_cache_miss();
            }
            let dim_refs: Vec<&str> = dims.iter().map(String::as_str).collect();
            let b = basevalues::group_by(&detail_rel, &dim_refs)?;
            let out = MdJoin::new(&b, &detail_rel)
                .aggs(aggs)
                .theta(theta.clone())
                .strategy(ExecStrategy::Serial)
                .run(ctx)?;
            let shared = std::sync::Arc::new(out);
            cache.insert(&req, &detail_rel, shared.clone());
            Ok(Some(shared.as_ref().clone()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_agg::AggSpec;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, Schema, Value};

    fn catalog() -> Catalog {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        let mk = |c: i64, m: i64, st: &str, s: f64| {
            Row::from_values(vec![
                Value::Int(c),
                Value::Int(m),
                Value::str(st),
                Value::Float(s),
            ])
        };
        let rel = Relation::from_rows(
            schema,
            vec![
                mk(1, 1, "NY", 10.0),
                mk(1, 2, "NY", 20.0),
                mk(2, 1, "NJ", 30.0),
                mk(2, 2, "CT", 40.0),
            ],
        );
        let mut c = Catalog::new();
        c.register("Sales", rel);
        c
    }

    #[test]
    fn end_to_end_group_by_md_join() {
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale")],
            eq(col_b("cust"), col_r("cust")),
        );
        let out = execute(&plan, &catalog(), &ExecContext::new()).unwrap();
        assert_eq!(out.len(), 2);
        let c1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(c1[1], Value::Float(30.0));
    }

    #[test]
    fn select_pushes_into_detail() {
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales").select(eq(col_r("state"), lit("NY"))),
            vec![AggSpec::count_star()],
            eq(col_b("cust"), col_r("cust")),
        );
        let out = execute(&plan, &catalog(), &ExecContext::new()).unwrap();
        let c2 = out.rows().iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(c2[1], Value::Int(0)); // outer semantics
    }

    #[test]
    fn cube_base_execution() {
        let plan = Plan::table("Sales").cube_base(&["cust", "month"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale")],
            mdj_core::basevalues::cube_match_theta(&["cust", "month"]),
        );
        let out = execute(&plan, &catalog(), &ExecContext::new()).unwrap();
        // distinct pairs 4 + custs 2 + months 2 + apex 1 = 9
        assert_eq!(out.len(), 9);
        let apex = out
            .rows()
            .iter()
            .find(|r| r[0].is_all() && r[1].is_all())
            .unwrap();
        assert_eq!(apex[2], Value::Float(100.0));
    }

    #[test]
    fn union_and_project() {
        let p = Plan::Union(vec![
            Plan::table("Sales").select(eq(col_r("cust"), lit(1i64))),
            Plan::table("Sales").select(eq(col_r("cust"), lit(2i64))),
        ])
        .project(&["cust", "sale"]);
        let out = execute(&p, &catalog(), &ExecContext::new()).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out.schema().names(), vec!["cust", "sale"]);
    }

    #[test]
    fn gen_md_join_node() {
        let blocks = vec![
            crate::plan::PlanBlock::new(
                vec![AggSpec::on_column("sum", "sale").with_alias("s1")],
                and(
                    eq(col_b("cust"), col_r("cust")),
                    eq(col_r("month"), lit(1i64)),
                ),
            ),
            crate::plan::PlanBlock::new(
                vec![AggSpec::on_column("sum", "sale").with_alias("s2")],
                and(
                    eq(col_b("cust"), col_r("cust")),
                    eq(col_r("month"), lit(2i64)),
                ),
            ),
        ];
        let plan = Plan::GenMdJoin {
            base: Box::new(Plan::table("Sales").group_by_base(&["cust"])),
            detail: Box::new(Plan::table("Sales")),
            blocks,
        };
        let out = execute(&plan, &catalog(), &ExecContext::new()).unwrap();
        let c1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(c1[1], Value::Float(10.0));
        assert_eq!(c1[2], Value::Float(20.0));
    }

    #[test]
    fn join_node_keeps_selected_right_columns() {
        let left = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale").with_alias("total")],
            eq(col_b("cust"), col_r("cust")),
        );
        let right = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star().with_alias("n")],
            eq(col_b("cust"), col_r("cust")),
        );
        let plan = Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            left_keys: vec!["cust".into()],
            right_keys: vec!["cust".into()],
            keep_right: vec!["n".into()],
        };
        let out = execute(&plan, &catalog(), &ExecContext::new()).unwrap();
        assert_eq!(out.schema().names(), vec!["cust", "total", "n"]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn unknown_table_errors() {
        let plan = Plan::table("Nope");
        assert!(execute(&plan, &catalog(), &ExecContext::new()).is_err());
    }

    #[test]
    fn parallel_node_runs_morsel_executor() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let md = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale")],
            eq(col_b("cust"), col_r("cust")),
        );
        let serial = execute(&md, &catalog(), &ExecContext::new()).unwrap();
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new().with_stats(stats.clone());
        let par = execute(&md.parallel(2), &catalog(), &ctx).unwrap();
        assert!(serial.same_multiset(&par));
        // The morsel executor reported per-worker counters.
        assert_eq!(stats.workers().len(), 2);
    }

    #[test]
    fn cuboid_cache_serves_repeats_and_rollups() {
        use mdj_core::EngineConfig;
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let cat = catalog();
        let engine = EngineConfig::new().with_cuboid_cache(1 << 20).build();
        let stats = Arc::new(ScanStats::new());
        let ctx = mdj_core::ExecContext::from_parts(
            engine,
            mdj_core::QueryCtx::new().with_stats(stats.clone()),
        );
        let fine = Plan::table("Sales")
            .group_by_base(&["cust", "month"])
            .md_join(
                Plan::table("Sales"),
                vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
                and(
                    eq(col_b("cust"), col_r("cust")),
                    eq(col_b("month"), col_r("month")),
                ),
            );
        let cold = execute(&fine, &cat, &ctx).unwrap();
        assert_eq!(stats.cache_misses(), 1);
        let warm = execute(&fine, &cat, &ctx).unwrap();
        assert_eq!(stats.cache_hits(), 1);
        assert_eq!(cold.rows(), warm.rows());
        // A coarser query rolls up from the cached finer cuboid.
        let coarse = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
            eq(col_b("cust"), col_r("cust")),
        );
        let rolled = execute(&coarse, &cat, &ctx).unwrap();
        assert_eq!(stats.cache_rollup_hits(), 1);
        let direct = execute(&coarse, &cat, &mdj_core::ExecContext::new()).unwrap();
        assert!(direct.same_multiset(&rolled));
        // Non-canonical θ (extra predicate) bypasses the cache entirely.
        let filtered = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star()],
            and(
                eq(col_b("cust"), col_r("cust")),
                eq(col_r("state"), lit("NY")),
            ),
        );
        let (h, rh, m) = (
            stats.cache_hits(),
            stats.cache_rollup_hits(),
            stats.cache_misses(),
        );
        execute(&filtered, &cat, &ctx).unwrap();
        assert_eq!(
            (
                stats.cache_hits(),
                stats.cache_rollup_hits(),
                stats.cache_misses()
            ),
            (h, rh, m)
        );
    }

    #[test]
    fn paged_detail_runs_from_disk_and_prunes_with_theta() {
        use mdj_core::{EngineConfig, PagedScan, QueryCtx};
        use mdj_storage::{BufferPool, PagedStore, ScanStats};
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("mdj-algebra-paged-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut cat = Catalog::new();
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("sale", DataType::Float),
        ]);
        let rel = Relation::from_rows(
            schema,
            (0..240)
                .map(|i: i64| {
                    Row::from_values(vec![
                        Value::Int(i % 5),
                        Value::Int(1 + i % 12),
                        Value::Float(i as f64 * 0.5),
                    ])
                })
                .collect(),
        );
        cat.register("Sales", rel.clone());
        let rel = std::sync::Arc::new(rel);
        let (store, _) = PagedStore::open(&dir).unwrap();
        let table = store.create_table("Sales", &rel, "month", 256).unwrap();
        // Re-register in clustered order so the in-memory reference scans
        // rows exactly as the page store serves them.
        let clustered = table.read_all(None).unwrap();
        cat.register("Sales", clustered);
        cat.attach_paged("Sales", table.clone()).unwrap();
        let engine = EngineConfig::new().build();
        engine.attach_buffer_pool(BufferPool::new(64 * 1024));
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales").select(ge(col_r("month"), lit(2i64))),
            vec![AggSpec::on_column("sum", "sale")],
            eq(col_b("cust"), col_r("cust")),
        );
        let stats = Arc::new(ScanStats::new());
        let ctx = mdj_core::ExecContext::from_parts(
            engine.clone(),
            QueryCtx::new().with_stats(stats.clone()),
        );
        let paged_out = execute(&plan, &cat, &ctx).unwrap();
        assert!(stats.pages_read() > 0, "detail must stream from disk");
        // The σ on the clustered key pruned at least one page: fewer pages
        // than the table holds were ever read.
        assert!(
            (stats.pages_read() as usize) < table.page_count(),
            "{} pages read of {}",
            stats.pages_read(),
            table.page_count()
        );
        // Identical rows to the pure in-memory path (no buffer pool → the
        // paged fast path never engages).
        let plain =
            mdj_core::ExecContext::from_parts(EngineConfig::new().build(), QueryCtx::default());
        let mem_out = execute(&plan, &cat, &plain).unwrap();
        assert_eq!(mem_out.rows(), paged_out.rows());
        // Materialized pruning is sound for strategies that delegate.
        let scan = PagedScan::new(table, engine.buffer_pool().unwrap());
        assert_eq!(scan.materialize(&ctx).unwrap().len(), rel.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_over_non_md_join_is_rejected() {
        let plan = Plan::table("Sales").parallel(4);
        let err = execute(&plan, &catalog(), &ExecContext::new());
        assert!(matches!(err, Err(AlgebraError::InvalidPlan(_))));
    }
}
