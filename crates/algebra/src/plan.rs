//! Logical plans with an MD-join node.

use crate::error::{AlgebraError, Result};
use mdj_agg::{AggSpec, Registry};
use mdj_core::output_schema;
use mdj_expr::Expr;
use mdj_storage::{Catalog, DataType, Field, Relation, Schema};
use std::sync::Arc;

/// How a base-values table is derived from its input (Section 2's shapes).
#[derive(Debug, Clone, PartialEq)]
pub enum BaseShape {
    /// `select distinct dims` — plain group-by base.
    GroupBy(Vec<String>),
    /// Full data cube with `ALL` (Example 2.1).
    Cube(Vec<String>),
    /// SQL99 ROLLUP prefixes.
    Rollup(Vec<String>),
    /// SQL99 GROUPING SETS; each inner list names the kept dims.
    GroupingSets(Vec<String>, Vec<Vec<String>>),
    /// One-dimensional marginals (\[GFC98\] unpivot).
    Unpivot(Vec<String>),
}

impl BaseShape {
    /// The dimension columns of the resulting base table.
    pub fn dims(&self) -> &[String] {
        match self {
            BaseShape::GroupBy(d)
            | BaseShape::Cube(d)
            | BaseShape::Rollup(d)
            | BaseShape::GroupingSets(d, _)
            | BaseShape::Unpivot(d) => d,
        }
    }
}

/// One (l, θ) block of a generalized MD-join plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanBlock {
    pub aggs: Vec<AggSpec>,
    pub theta: Expr,
}

impl PlanBlock {
    pub fn new(aggs: Vec<AggSpec>, theta: Expr) -> Self {
        PlanBlock { aggs, theta }
    }

    /// Output column names this block appends.
    pub fn output_names(&self) -> Vec<String> {
        self.aggs.iter().map(|a| a.output_name()).collect()
    }
}

/// A logical query plan. `B` and `R` operands of MD-joins are full plans,
/// matching the paper's "B as well as R can be the result of a relational
/// algebra expression".
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// A named relation resolved against the catalog at execution time.
    Table(String),
    /// A literal relation embedded in the plan.
    Inline(Arc<Relation>),
    /// σ — predicate references the input with `Side::Detail`.
    Select { input: Box<Plan>, pred: Expr },
    /// π — plain column projection.
    Project { input: Box<Plan>, cols: Vec<String> },
    /// Base-values derivation (distinct / cube / rollup / …).
    Base { input: Box<Plan>, shape: BaseShape },
    /// Multiset union of identically-shaped plans (Theorem 4.1's ⋃).
    Union(Vec<Plan>),
    /// The MD-join `MD(base, detail, aggs, θ)`.
    MdJoin {
        base: Box<Plan>,
        detail: Box<Plan>,
        aggs: Vec<AggSpec>,
        theta: Expr,
    },
    /// The generalized MD-join `MD(base, detail, (l₁..l_k), (θ₁..θ_k))`.
    GenMdJoin {
        base: Box<Plan>,
        detail: Box<Plan>,
        blocks: Vec<PlanBlock>,
    },
    /// Equi-join (Theorem 4.4's ⋈). Keys name columns on each side.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        left_keys: Vec<String>,
        right_keys: Vec<String>,
        /// Right columns to append (by name); defaults to all non-key columns.
        keep_right: Vec<String>,
    },
    /// Execute the wrapped MD-join with the morsel-driven parallel executor
    /// (Theorem 4.1 intra-operator parallelism). `threads = 0` means "use all
    /// available cores". Only meaningful around `MdJoin`; the optimizer
    /// introduces it when the cost model expects a win.
    Parallel { input: Box<Plan>, threads: usize },
}

impl Plan {
    pub fn table(name: impl Into<String>) -> Plan {
        Plan::Table(name.into())
    }

    pub fn inline(rel: Relation) -> Plan {
        Plan::Inline(Arc::new(rel))
    }

    pub fn select(self, pred: Expr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            pred,
        }
    }

    pub fn project(self, cols: &[&str]) -> Plan {
        Plan::Project {
            input: Box::new(self),
            cols: cols.iter().map(|s| s.to_string()).collect(),
        }
    }

    pub fn base(self, shape: BaseShape) -> Plan {
        Plan::Base {
            input: Box::new(self),
            shape,
        }
    }

    pub fn group_by_base(self, dims: &[&str]) -> Plan {
        self.base(BaseShape::GroupBy(
            dims.iter().map(|s| s.to_string()).collect(),
        ))
    }

    pub fn cube_base(self, dims: &[&str]) -> Plan {
        self.base(BaseShape::Cube(
            dims.iter().map(|s| s.to_string()).collect(),
        ))
    }

    /// Wrap in an MD-join as the base operand.
    pub fn md_join(self, detail: Plan, aggs: Vec<AggSpec>, theta: Expr) -> Plan {
        Plan::MdJoin {
            base: Box::new(self),
            detail: Box::new(detail),
            aggs,
            theta,
        }
    }

    /// Wrap in a [`Plan::Parallel`] node (`threads = 0` → all cores).
    pub fn parallel(self, threads: usize) -> Plan {
        Plan::Parallel {
            input: Box::new(self),
            threads,
        }
    }

    /// The schema this plan produces. Requires the catalog (for `Table`) and
    /// the aggregate registry (for MD-join output columns).
    pub fn schema(&self, catalog: &Catalog, registry: &Registry) -> Result<Schema> {
        match self {
            Plan::Table(name) => Ok(catalog.get(name)?.schema().clone()),
            Plan::Inline(rel) => Ok(rel.schema().clone()),
            Plan::Select { input, .. } => input.schema(catalog, registry),
            Plan::Project { input, cols } => {
                let s = input.schema(catalog, registry)?;
                let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                let idx = s.indices_of(&names)?;
                Ok(s.project(&idx))
            }
            Plan::Base { input, shape } => {
                let s = input.schema(catalog, registry)?;
                let names: Vec<&str> = shape.dims().iter().map(String::as_str).collect();
                let idx = s.indices_of(&names)?;
                Ok(s.project(&idx))
            }
            Plan::Union(parts) => {
                let first = parts
                    .first()
                    .ok_or_else(|| AlgebraError::InvalidPlan("union of zero plans".into()))?;
                first.schema(catalog, registry)
            }
            Plan::MdJoin {
                base, detail, aggs, ..
            } => {
                let b = base.schema(catalog, registry)?;
                let r = detail.schema(catalog, registry)?;
                Ok(output_schema(&b, &r, aggs, registry)?)
            }
            Plan::GenMdJoin {
                base,
                detail,
                blocks,
            } => {
                let mut schema = base.schema(catalog, registry)?;
                let r = detail.schema(catalog, registry)?;
                for blk in blocks {
                    // output_schema checks collisions against the growing schema.
                    schema = output_schema(&schema, &r, &blk.aggs, registry)?;
                }
                Ok(schema)
            }
            Plan::Join {
                left,
                right,
                keep_right,
                ..
            } => {
                let l = left.schema(catalog, registry)?;
                let r = right.schema(catalog, registry)?;
                let mut fields = l.fields().to_vec();
                for name in keep_right {
                    let i = r.index_of(name)?;
                    fields.push(r.field(i).clone());
                }
                Ok(Schema::new(fields))
            }
            Plan::Parallel { input, .. } => input.schema(catalog, registry),
        }
    }

    /// The names of columns appended by this node if it is an MD-join
    /// (used by the Theorem 4.3 independence test).
    pub fn appended_columns(&self) -> Vec<String> {
        match self {
            Plan::MdJoin { aggs, .. } => aggs.iter().map(|a| a.output_name()).collect(),
            Plan::GenMdJoin { blocks, .. } => {
                blocks.iter().flat_map(|b| b.output_names()).collect()
            }
            Plan::Parallel { input, .. } => input.appended_columns(),
            _ => Vec::new(),
        }
    }

    /// Visit the plan tree bottom-up, rebuilding nodes with `f`.
    pub fn transform_up(self, f: &impl Fn(Plan) -> Plan) -> Plan {
        let rebuilt = match self {
            Plan::Select { input, pred } => Plan::Select {
                input: Box::new(input.transform_up(f)),
                pred,
            },
            Plan::Project { input, cols } => Plan::Project {
                input: Box::new(input.transform_up(f)),
                cols,
            },
            Plan::Base { input, shape } => Plan::Base {
                input: Box::new(input.transform_up(f)),
                shape,
            },
            Plan::Union(parts) => {
                Plan::Union(parts.into_iter().map(|p| p.transform_up(f)).collect())
            }
            Plan::MdJoin {
                base,
                detail,
                aggs,
                theta,
            } => Plan::MdJoin {
                base: Box::new(base.transform_up(f)),
                detail: Box::new(detail.transform_up(f)),
                aggs,
                theta,
            },
            Plan::GenMdJoin {
                base,
                detail,
                blocks,
            } => Plan::GenMdJoin {
                base: Box::new(base.transform_up(f)),
                detail: Box::new(detail.transform_up(f)),
                blocks,
            },
            Plan::Join {
                left,
                right,
                left_keys,
                right_keys,
                keep_right,
            } => Plan::Join {
                left: Box::new(left.transform_up(f)),
                right: Box::new(right.transform_up(f)),
                left_keys,
                right_keys,
                keep_right,
            },
            Plan::Parallel { input, threads } => Plan::Parallel {
                input: Box::new(input.transform_up(f)),
                threads,
            },
            leaf => leaf,
        };
        f(rebuilt)
    }

    /// Count the MD-join nodes (single + generalized) in the plan.
    pub fn md_join_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| {
            if matches!(p, Plan::MdJoin { .. } | Plan::GenMdJoin { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Visit every node (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Plan)) {
        f(self);
        match self {
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Base { input, .. }
            | Plan::Parallel { input, .. } => input.visit(f),
            Plan::Union(parts) => parts.iter().for_each(|p| p.visit(f)),
            Plan::MdJoin { base, detail, .. } | Plan::GenMdJoin { base, detail, .. } => {
                base.visit(f);
                detail.visit(f);
            }
            Plan::Join { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Plan::Table(_) | Plan::Inline(_) => {}
        }
    }
}

/// Build an untyped field list for ad-hoc schemas (used by tests).
pub fn any_fields(names: &[&str]) -> Vec<Field> {
    names
        .iter()
        .map(|n| Field::new(*n, DataType::Any))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_expr::builder::*;
    use mdj_storage::{Row, Value};

    fn catalog() -> Catalog {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        let rel = Relation::from_rows(
            schema,
            vec![Row::from_values(vec![
                Value::Int(1),
                Value::str("NY"),
                Value::Float(1.0),
            ])],
        );
        let mut c = Catalog::new();
        c.register("Sales", rel);
        c
    }

    #[test]
    fn schema_inference_through_md_join() {
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("avg", "sale")],
            eq(col_b("cust"), col_r("cust")),
        );
        let s = plan.schema(&catalog(), &Registry::standard()).unwrap();
        assert_eq!(s.names(), vec!["cust", "avg_sale"]);
        assert_eq!(s.field(1).dtype, DataType::Float);
    }

    #[test]
    fn schema_inference_gen_md_join() {
        let blocks = vec![
            PlanBlock::new(
                vec![AggSpec::on_column("avg", "sale").with_alias("a1")],
                eq(col_b("cust"), col_r("cust")),
            ),
            PlanBlock::new(
                vec![AggSpec::on_column("avg", "sale").with_alias("a2")],
                eq(col_b("cust"), col_r("cust")),
            ),
        ];
        let plan = Plan::GenMdJoin {
            base: Box::new(Plan::table("Sales").group_by_base(&["cust"])),
            detail: Box::new(Plan::table("Sales")),
            blocks,
        };
        let s = plan.schema(&catalog(), &Registry::standard()).unwrap();
        assert_eq!(s.names(), vec!["cust", "a1", "a2"]);
    }

    #[test]
    fn appended_columns_for_independence_checks() {
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("avg", "sale").with_alias("avg_ny")],
            eq(col_b("cust"), col_r("cust")),
        );
        assert_eq!(plan.appended_columns(), vec!["avg_ny"]);
    }

    #[test]
    fn transform_up_rewrites_leaves() {
        let plan = Plan::table("Sales").select(gt(col_r("sale"), lit(0i64)));
        let renamed = plan.transform_up(&|p| match p {
            Plan::Table(_) => Plan::Table("Other".into()),
            other => other,
        });
        match renamed {
            Plan::Select { input, .. } => assert_eq!(*input, Plan::Table("Other".into())),
            _ => panic!("shape changed"),
        }
    }

    #[test]
    fn md_join_count() {
        let inner = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale").with_alias("s1")],
            eq(col_b("cust"), col_r("cust")),
        );
        let outer = inner.md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale").with_alias("s2")],
            eq(col_b("cust"), col_r("cust")),
        );
        assert_eq!(outer.md_join_count(), 2);
    }

    #[test]
    fn union_schema_requires_parts() {
        let err = Plan::Union(vec![]).schema(&catalog(), &Registry::standard());
        assert!(matches!(err, Err(AlgebraError::InvalidPlan(_))));
    }

    #[test]
    fn duplicate_agg_names_rejected_in_schema() {
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![
                AggSpec::on_column("sum", "sale"),
                AggSpec::on_column("sum", "sale"),
            ],
            eq(col_b("cust"), col_r("cust")),
        );
        assert!(plan.schema(&catalog(), &Registry::standard()).is_err());
    }
}
