//! Theorem 4.1 as a plan rewrite: `MD(B, R, l, θ) = ⋃ᵢ MD(Bᵢ, R, l, θ)`.
//!
//! Two variants:
//!
//! * [`partition_inline`] — materialize `B`, chunk it arbitrarily, and emit a
//!   union of MD-joins over inline fragments (the in-memory plan of Section
//!   4.1.1; executing fragments on different workers gives Section 4.1.2's
//!   parallelism).
//! * [`partition_by_ranges`] — range-partition `B` on one column and, via
//!   Observation 4.1, push each range to the detail input as well, so every
//!   fragment scans only its slice of `R` ("group-wise processing", the
//!   month 1–3 / 4–8 / 9–12 example of Section 4.2).

use crate::error::{AlgebraError, Result};
use crate::exec::execute;
use crate::plan::Plan;
use mdj_core::ExecContext;
use mdj_expr::analysis::equi_pairs;
use mdj_expr::builder::{and, col_r, ge, le, lit};
use mdj_storage::partition::{self, ValueRange};
use mdj_storage::Catalog;

/// Materialize the base plan and rewrite into a union of `m` fragment
/// MD-joins (arbitrary chunking: valid for any θ).
pub fn partition_inline(
    plan: &Plan,
    m: usize,
    catalog: &Catalog,
    ctx: &ExecContext,
) -> Result<Plan> {
    let Plan::MdJoin {
        base,
        detail,
        aggs,
        theta,
    } = plan
    else {
        return Err(AlgebraError::RuleNotApplicable {
            rule: "partition",
            reason: "root is not an MD-join".into(),
        });
    };
    if m == 0 {
        return Err(AlgebraError::InvalidPlan("partition count 0".into()));
    }
    let b = execute(base, catalog, ctx)?;
    let parts = partition::chunk(&b, m);
    let fragments = parts
        .into_iter()
        .map(|p| Plan::MdJoin {
            base: Box::new(Plan::inline(p)),
            detail: detail.clone(),
            aggs: aggs.clone(),
            theta: theta.clone(),
        })
        .collect();
    Ok(Plan::Union(fragments))
}

/// Range-partition the base on `column` and push each range to the detail
/// side via Observation 4.1. Requires θ to equate `B.column` with some
/// detail column; errors otherwise. Base rows outside every range are
/// dropped, so the ranges must cover `B`'s domain for a lossless rewrite
/// ([`mdj_storage::partition::ranges_are_disjoint`] + coverage are the
/// caller's responsibility; the benches construct covering ranges).
pub fn partition_by_ranges(
    plan: &Plan,
    column: &str,
    ranges: &[ValueRange],
    catalog: &Catalog,
    ctx: &ExecContext,
) -> Result<Plan> {
    let Plan::MdJoin {
        base,
        detail,
        aggs,
        theta,
    } = plan
    else {
        return Err(AlgebraError::RuleNotApplicable {
            rule: "partition",
            reason: "root is not an MD-join".into(),
        });
    };
    let Some(pair) = equi_pairs(theta).into_iter().find(|p| p.base_col == column) else {
        return Err(AlgebraError::RuleNotApplicable {
            rule: "partition",
            reason: format!("θ `{theta}` does not equate B.{column} with a detail column"),
        });
    };
    if !partition::ranges_are_disjoint(ranges) {
        return Err(AlgebraError::InvalidPlan(
            "range partition requires disjoint ranges".into(),
        ));
    }
    let b = execute(base, catalog, ctx)?;
    let parts = partition::by_ranges(&b, column, ranges)?;
    let fragments = parts
        .into_iter()
        .zip(ranges)
        .map(|(part, range)| {
            // Observation 4.1: the fragment's range, restated over R.
            let detail_pred = and(
                ge(col_r(pair.detail_col.clone()), lit(range.lo.clone())),
                le(col_r(pair.detail_col.clone()), lit(range.hi.clone())),
            );
            Plan::MdJoin {
                base: Box::new(Plan::inline(part)),
                detail: Box::new(detail.as_ref().clone().select(detail_pred)),
                aggs: aggs.clone(),
                theta: theta.clone(),
            }
        })
        .collect();
    Ok(Plan::Union(fragments))
}

/// Convenience: build covering integer ranges `[lo, hi]` split into `m`
/// near-equal spans (for month/year-style dimensions).
pub fn int_ranges(lo: i64, hi: i64, m: usize) -> Vec<ValueRange> {
    let m = m.max(1) as i64;
    let span = (hi - lo + 1).max(1);
    let step = (span + m - 1) / m;
    let mut out = Vec::new();
    let mut start = lo;
    while start <= hi {
        let end = (start + step - 1).min(hi);
        out.push(ValueRange::new(start, end));
        start = end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_agg::AggSpec;
    use mdj_expr::builder::{col_b, eq};
    use mdj_storage::{DataType, Relation, Row, Schema, Value};

    fn catalog() -> Catalog {
        let schema = Schema::from_pairs(&[("month", DataType::Int), ("sale", DataType::Int)]);
        let rel = Relation::from_rows(
            schema,
            (0..48).map(|i| Row::from_values([i % 12 + 1, i])).collect(),
        );
        let mut c = Catalog::new();
        c.register("Sales", rel);
        c
    }

    fn month_plan() -> Plan {
        Plan::table("Sales").group_by_base(&["month"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale")],
            eq(col_b("month"), col_r("month")),
        )
    }

    #[test]
    fn inline_partition_equals_direct() {
        let cat = catalog();
        let ctx = ExecContext::new();
        let plan = month_plan();
        let direct = execute(&plan, &cat, &ctx).unwrap();
        for m in [1, 2, 3, 5, 12, 100] {
            let part = partition_inline(&plan, m, &cat, &ctx).unwrap();
            let out = execute(&part, &cat, &ctx).unwrap();
            assert!(direct.same_multiset(&out), "m = {m}");
        }
    }

    #[test]
    fn range_partition_equals_direct_and_prunes_detail() {
        let cat = catalog();
        let ctx = ExecContext::new();
        let plan = month_plan();
        let direct = execute(&plan, &cat, &ctx).unwrap();
        // The paper's example split: months 1–3, 4–8, 9–12.
        let ranges = [
            ValueRange::new(1i64, 3i64),
            ValueRange::new(4i64, 8i64),
            ValueRange::new(9i64, 12i64),
        ];
        let part = partition_by_ranges(&plan, "month", &ranges, &cat, &ctx).unwrap();
        // Every fragment's detail is a Select (Observation 4.1 applied).
        match &part {
            Plan::Union(frags) => {
                assert_eq!(frags.len(), 3);
                for f in frags {
                    match f {
                        Plan::MdJoin { detail, .. } => {
                            assert!(matches!(detail.as_ref(), Plan::Select { .. }))
                        }
                        _ => panic!("fragment shape"),
                    }
                }
            }
            _ => panic!("expected union"),
        }
        let out = execute(&part, &cat, &ctx).unwrap();
        assert!(direct.same_multiset(&out));
    }

    #[test]
    fn range_partition_requires_matching_equality() {
        let cat = catalog();
        let ctx = ExecContext::new();
        let plan = Plan::table("Sales").group_by_base(&["month"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star()],
            mdj_expr::builder::gt(col_b("month"), col_r("month")),
        );
        let err = partition_by_ranges(&plan, "month", &[ValueRange::new(1i64, 12i64)], &cat, &ctx);
        assert!(matches!(err, Err(AlgebraError::RuleNotApplicable { .. })));
    }

    #[test]
    fn overlapping_ranges_rejected() {
        let cat = catalog();
        let ctx = ExecContext::new();
        let err = partition_by_ranges(
            &month_plan(),
            "month",
            &[ValueRange::new(1i64, 6i64), ValueRange::new(6i64, 12i64)],
            &cat,
            &ctx,
        );
        assert!(matches!(err, Err(AlgebraError::InvalidPlan(_))));
    }

    #[test]
    fn int_ranges_cover_domain() {
        let rs = int_ranges(1, 12, 3);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[0], ValueRange::new(1i64, 4i64));
        assert_eq!(rs[2].hi, Value::Int(12));
        assert!(partition::ranges_are_disjoint(&rs));
        let rs = int_ranges(1, 12, 5);
        let total: i64 = rs
            .iter()
            .map(|r| r.hi.as_int().unwrap() - r.lo.as_int().unwrap() + 1)
            .sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn non_md_join_rejected() {
        let cat = catalog();
        let ctx = ExecContext::new();
        assert!(partition_inline(&Plan::table("Sales"), 2, &cat, &ctx).is_err());
    }
}
