//! Theorem 4.3 — commuting consecutive MD-joins.
//!
//! `MD(MD(B, R₁, l₁, θ₁), R₂, l₂, θ₂) = MD(MD(B, R₂, l₂, θ₂), R₁, l₁, θ₁)`
//! when θ₁ involves only attributes of `B` and `R₁`, and θ₂ only attributes
//! of `B` and `R₂` — i.e. neither θ reads the other stage's aggregate
//! outputs. The commuted plan's rows carry the same values; only the
//! aggregate column order changes.

use crate::error::{AlgebraError, Result};
use crate::plan::Plan;
use mdj_expr::analysis::theta_independent_of;

/// Swap the two topmost MD-joins of `plan`.
///
/// Errors with [`AlgebraError::RuleNotApplicable`] if the plan's root is not
/// two stacked MD-joins or if the outer θ depends on the inner stage's
/// outputs (or vice versa, which cannot happen in a well-formed plan but is
/// checked anyway).
pub fn commute_md_joins(plan: &Plan) -> Result<Plan> {
    let Plan::MdJoin {
        base: outer_base,
        detail: detail2,
        aggs: l2,
        theta: theta2,
    } = plan
    else {
        return Err(AlgebraError::RuleNotApplicable {
            rule: "commute",
            reason: "root is not an MD-join".into(),
        });
    };
    let Plan::MdJoin {
        base,
        detail: detail1,
        aggs: l1,
        theta: theta1,
    } = outer_base.as_ref()
    else {
        return Err(AlgebraError::RuleNotApplicable {
            rule: "commute",
            reason: "base is not an MD-join".into(),
        });
    };
    let out1: Vec<String> = l1.iter().map(|a| a.output_name()).collect();
    let out2: Vec<String> = l2.iter().map(|a| a.output_name()).collect();
    if !theta_independent_of(theta2, &out1) {
        return Err(AlgebraError::RuleNotApplicable {
            rule: "commute",
            reason: format!("outer θ `{theta2}` reads inner outputs {out1:?}"),
        });
    }
    if !theta_independent_of(theta1, &out2) {
        return Err(AlgebraError::RuleNotApplicable {
            rule: "commute",
            reason: format!("inner θ `{theta1}` reads outer outputs {out2:?}"),
        });
    }
    Ok(Plan::MdJoin {
        base: Box::new(Plan::MdJoin {
            base: base.clone(),
            detail: detail2.clone(),
            aggs: l2.clone(),
            theta: theta2.clone(),
        }),
        detail: detail1.clone(),
        aggs: l1.clone(),
        theta: theta1.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use mdj_agg::AggSpec;
    use mdj_core::ExecContext;
    use mdj_expr::builder::*;
    use mdj_storage::{Catalog, DataType, Relation, Row, Schema, Value};

    fn catalog() -> Catalog {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        let rel = Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::str("NY"), Value::Float(10.0)]),
                Row::from_values(vec![Value::Int(1), Value::str("NJ"), Value::Float(20.0)]),
                Row::from_values(vec![Value::Int(2), Value::str("NY"), Value::Float(40.0)]),
            ],
        );
        let mut c = Catalog::new();
        c.register("Sales", rel);
        c
    }

    fn two_stage() -> Plan {
        let b = Plan::table("Sales").group_by_base(&["cust"]);
        b.md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("avg", "sale").with_alias("avg_ny")],
            and(
                eq(col_b("cust"), col_r("cust")),
                eq(col_r("state"), lit("NY")),
            ),
        )
        .md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("avg", "sale").with_alias("avg_nj")],
            and(
                eq(col_b("cust"), col_r("cust")),
                eq(col_r("state"), lit("NJ")),
            ),
        )
    }

    #[test]
    fn theorem_4_3_commute_preserves_semantics() {
        let plan = two_stage();
        let commuted = commute_md_joins(&plan).unwrap();
        let cat = catalog();
        let ctx = ExecContext::new();
        let a = execute(&plan, &cat, &ctx).unwrap();
        let b = execute(&commuted, &cat, &ctx).unwrap();
        // Columns permute: compare after projecting to a common order.
        let cols = ["cust", "avg_ny", "avg_nj"];
        assert!(a
            .project(&cols)
            .unwrap()
            .same_multiset(&b.project(&cols).unwrap()));
        // The commuted plan really did swap the stages.
        match &commuted {
            Plan::MdJoin { aggs, .. } => assert_eq!(aggs[0].output_name(), "avg_ny"),
            _ => panic!("shape"),
        }
    }

    #[test]
    fn dependent_stages_refuse_to_commute() {
        let b = Plan::table("Sales").group_by_base(&["cust"]);
        let plan = b
            .md_join(
                Plan::table("Sales"),
                vec![AggSpec::on_column("avg", "sale")],
                eq(col_b("cust"), col_r("cust")),
            )
            .md_join(
                Plan::table("Sales"),
                vec![AggSpec::count_star().with_alias("above")],
                and(
                    eq(col_b("cust"), col_r("cust")),
                    gt(col_r("sale"), col_b("avg_sale")),
                ),
            );
        let err = commute_md_joins(&plan);
        assert!(matches!(
            err,
            Err(AlgebraError::RuleNotApplicable {
                rule: "commute",
                ..
            })
        ));
    }

    #[test]
    fn non_chain_refuses() {
        let plan = Plan::table("Sales");
        assert!(commute_md_joins(&plan).is_err());
        let single = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star()],
            eq(col_b("cust"), col_r("cust")),
        );
        assert!(commute_md_joins(&single).is_err());
    }
}
