//! Theorem 4.4 — splitting a chain into an equijoin of independent MD-joins.
//!
//! `MD(MD(B, R₁, l₁, θ₁), R₂, l₂, θ₂) = MD(B, R₁, l₁, θ₁) ⋈ π'(MD(B, R₂, l₂, θ₂))`
//!
//! Because an MD-join never changes the rows of `B`, both sides carry
//! identical `B` columns and the equijoin on them is 1:1 (provided `B`'s rows
//! are distinct — the theorem's implicit precondition, satisfied by every
//! base-values builder). The practical payoff is Section 4.3's distribution
//! example: ship `B` to each detail table's site, run local MD-joins in
//! parallel, equijoin the small results.

use crate::error::{AlgebraError, Result};
use crate::plan::Plan;
use mdj_agg::Registry;
use mdj_expr::analysis::theta_independent_of;
use mdj_storage::Catalog;

/// Split the two topmost MD-joins of `plan` into an equijoin. Needs the
/// catalog/registry to compute `B`'s column list (the join keys).
pub fn split_into_join(plan: &Plan, catalog: &Catalog, registry: &Registry) -> Result<Plan> {
    let Plan::MdJoin {
        base: outer_base,
        detail: detail2,
        aggs: l2,
        theta: theta2,
    } = plan
    else {
        return Err(AlgebraError::RuleNotApplicable {
            rule: "split",
            reason: "root is not an MD-join".into(),
        });
    };
    let Plan::MdJoin {
        base,
        detail: detail1,
        aggs: l1,
        theta: theta1,
    } = outer_base.as_ref()
    else {
        return Err(AlgebraError::RuleNotApplicable {
            rule: "split",
            reason: "base is not an MD-join".into(),
        });
    };
    let out1: Vec<String> = l1.iter().map(|a| a.output_name()).collect();
    if !theta_independent_of(theta2, &out1) {
        return Err(AlgebraError::RuleNotApplicable {
            rule: "split",
            reason: format!("outer θ `{theta2}` reads inner outputs {out1:?}"),
        });
    }
    let b_schema = base.schema(catalog, registry)?;
    let keys: Vec<String> = b_schema.fields().iter().map(|f| f.name.clone()).collect();
    let left = Plan::MdJoin {
        base: base.clone(),
        detail: detail1.clone(),
        aggs: l1.clone(),
        theta: theta1.clone(),
    };
    let right = Plan::MdJoin {
        base: base.clone(),
        detail: detail2.clone(),
        aggs: l2.clone(),
        theta: theta2.clone(),
    };
    Ok(Plan::Join {
        left: Box::new(left),
        right: Box::new(right),
        left_keys: keys.clone(),
        right_keys: keys,
        keep_right: l2.iter().map(|a| a.output_name()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use mdj_agg::AggSpec;
    use mdj_core::ExecContext;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, Relation, Row, Schema, Value};

    fn catalog() -> Catalog {
        let sales_schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("sale", DataType::Float),
        ]);
        let sales = Relation::from_rows(
            sales_schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::Int(1), Value::Float(10.0)]),
                Row::from_values(vec![Value::Int(1), Value::Int(2), Value::Float(20.0)]),
                Row::from_values(vec![Value::Int(2), Value::Int(1), Value::Float(40.0)]),
            ],
        );
        let pay_schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("amount", DataType::Float),
        ]);
        let payments = Relation::from_rows(
            pay_schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::Int(1), Value::Float(5.0)]),
                Row::from_values(vec![Value::Int(2), Value::Int(1), Value::Float(7.0)]),
            ],
        );
        let mut c = Catalog::new();
        c.register("Sales", sales);
        c.register("Payments", payments);
        c
    }

    /// Example 3.3: total sales and payments per (cust, month).
    fn example_3_3() -> Plan {
        let b = Plan::table("Sales").group_by_base(&["cust", "month"]);
        b.md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale")],
            and(
                eq(col_r("cust"), col_b("cust")),
                eq(col_r("month"), col_b("month")),
            ),
        )
        .md_join(
            Plan::table("Payments"),
            vec![AggSpec::on_column("sum", "amount")],
            and(
                eq(col_r("cust"), col_b("cust")),
                eq(col_r("month"), col_b("month")),
            ),
        )
    }

    #[test]
    fn theorem_4_4_split_preserves_semantics() {
        let chain = example_3_3();
        let cat = catalog();
        let reg = Registry::standard();
        let split = split_into_join(&chain, &cat, &reg).unwrap();
        assert!(matches!(split, Plan::Join { .. }));
        let ctx = ExecContext::new();
        let a = execute(&chain, &cat, &ctx).unwrap();
        let b = execute(&split, &cat, &ctx).unwrap();
        assert!(a.same_multiset(&b));
        // Spot check: cust 1 month 2 has sales 20, payments NULL.
        let row = a
            .rows()
            .iter()
            .find(|r| r[0] == Value::Int(1) && r[1] == Value::Int(2))
            .unwrap();
        assert_eq!(row[2], Value::Float(20.0));
        assert_eq!(row[3], Value::Null);
    }

    #[test]
    fn split_refuses_dependent_stages() {
        let b = Plan::table("Sales").group_by_base(&["cust"]);
        let plan = b
            .md_join(
                Plan::table("Sales"),
                vec![AggSpec::on_column("avg", "sale")],
                eq(col_b("cust"), col_r("cust")),
            )
            .md_join(
                Plan::table("Sales"),
                vec![AggSpec::count_star().with_alias("above")],
                and(
                    eq(col_b("cust"), col_r("cust")),
                    gt(col_r("sale"), col_b("avg_sale")),
                ),
            );
        let err = split_into_join(&plan, &catalog(), &Registry::standard());
        assert!(matches!(
            err,
            Err(AlgebraError::RuleNotApplicable { rule: "split", .. })
        ));
    }

    #[test]
    fn split_refuses_non_chain() {
        let err = split_into_join(&Plan::table("Sales"), &catalog(), &Registry::standard());
        assert!(err.is_err());
    }
}
