//! Theorem 4.2 and Observation 4.1 — selection pushdown.
//!
//! **Theorem 4.2**: if `θ = θ₁ AND θ₂` with `θ₂` over `R` only, then
//! `MD(B, R, l, θ) = MD(B, σ_{θ₂}(R), l, θ₁)`. Detail tuples failing `θ₂` can
//! never join, so filtering them early is free — and enables an indexed scan
//! of `R` when a matching clustered index exists (Example 4.1).
//!
//! **Observation 4.1**: a selection on `B` whose predicate only references
//! columns that θ *equates* with detail columns can additionally be *copied*
//! to `R` (with the column references substituted). Note the base selection
//! must stay — it determines which rows appear in the output — but the copied
//! detail selection prunes the scan.

use crate::plan::{Plan, PlanBlock};
use mdj_expr::analysis::{conjuncts, split_theta};
use mdj_expr::builder::and_all;
use mdj_expr::rewrite::base_predicate_to_detail;
use mdj_expr::{Expr, Side};

/// Apply Theorem 4.2 everywhere: each MD-join's detail-only conjuncts move
/// into a `Select` on the detail plan. Generalized MD-joins push only the
/// conjuncts shared by *every* block (the scan is shared).
pub fn pushdown_detail_selection(plan: Plan) -> Plan {
    plan.transform_up(&|node| match node {
        Plan::MdJoin {
            base,
            detail,
            aggs,
            theta,
        } => {
            let split = split_theta(&theta);
            match split.detail_predicate() {
                Some(pred) => Plan::MdJoin {
                    base,
                    detail: Box::new(detail.select(pred)),
                    aggs,
                    theta: split.residual(),
                },
                None => Plan::MdJoin {
                    base,
                    detail,
                    aggs,
                    theta,
                },
            }
        }
        Plan::GenMdJoin {
            base,
            detail,
            blocks,
        } => {
            // Find detail-only conjuncts present in every block.
            let per_block: Vec<Vec<Expr>> = blocks
                .iter()
                .map(|b| split_theta(&b.theta).detail_only)
                .collect();
            let common: Vec<Expr> = match per_block.first() {
                None => Vec::new(),
                Some(first) => first
                    .iter()
                    .filter(|c| per_block.iter().all(|set| set.contains(c)))
                    .cloned()
                    .collect(),
            };
            if common.is_empty() {
                return Plan::GenMdJoin {
                    base,
                    detail,
                    blocks,
                };
            }
            let new_blocks: Vec<PlanBlock> = blocks
                .into_iter()
                .map(|b| {
                    let kept = and_all(
                        conjuncts(&b.theta)
                            .into_iter()
                            .filter(|c| !common.contains(c)),
                    );
                    PlanBlock::new(b.aggs, kept)
                })
                .collect();
            Plan::GenMdJoin {
                base,
                detail: Box::new(detail.select(and_all(common))),
                blocks: new_blocks,
            }
        }
        other => other,
    })
}

/// Apply Observation 4.1 everywhere: when an MD-join's base is
/// `σ_pred(B)` and every base column in `pred` has an equality partner in θ,
/// copy the substituted predicate onto the detail input.
pub fn push_base_ranges_to_detail(plan: Plan) -> Plan {
    plan.transform_up(&|node| match node {
        Plan::MdJoin {
            base,
            detail,
            aggs,
            theta,
        } => {
            if let Plan::Select { input, pred } = base.as_ref() {
                if let Some(detail_pred) = base_predicate_to_detail(pred, &theta) {
                    // The rewritten predicate references the detail side only.
                    debug_assert!(!detail_pred.uses_side(Side::Base));
                    // Idempotence: skip if the copy is already in place.
                    let already = matches!(
                        detail.as_ref(),
                        Plan::Select { pred: p, .. } if *p == detail_pred
                    );
                    if !already {
                        return Plan::MdJoin {
                            base: Box::new(Plan::Select {
                                input: input.clone(),
                                pred: pred.clone(),
                            }),
                            detail: Box::new(detail.select(detail_pred)),
                            aggs,
                            theta,
                        };
                    }
                }
            }
            Plan::MdJoin {
                base,
                detail,
                aggs,
                theta,
            }
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use mdj_agg::AggSpec;
    use mdj_core::ExecContext;
    use mdj_expr::builder::*;
    use mdj_storage::{Catalog, DataType, Relation, Row, Schema, Value};

    fn catalog() -> Catalog {
        let schema = Schema::from_pairs(&[
            ("prod", DataType::Int),
            ("year", DataType::Int),
            ("sale", DataType::Float),
        ]);
        let mk = |p: i64, y: i64, s: f64| {
            Row::from_values(vec![Value::Int(p), Value::Int(y), Value::Float(s)])
        };
        let rel = Relation::from_rows(
            schema,
            vec![
                mk(1, 1994, 10.0),
                mk(1, 1996, 20.0),
                mk(1, 1999, 40.0),
                mk(2, 1998, 80.0),
                mk(2, 1999, 160.0),
            ],
        );
        let mut c = Catalog::new();
        c.register("Sales", rel);
        c
    }

    fn example_4_1_plan() -> Plan {
        // θ₁: Sales.prod = prod AND 1994 <= year <= 1996
        Plan::table("Sales").group_by_base(&["prod"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::on_column("sum", "sale").with_alias("sum_94_96")],
            and_all([
                eq(col_r("prod"), col_b("prod")),
                ge(col_r("year"), lit(1994i64)),
                le(col_r("year"), lit(1996i64)),
            ]),
        )
    }

    #[test]
    fn theorem_4_2_shape() {
        let plan = pushdown_detail_selection(example_4_1_plan());
        // The detail input must now be a Select, and θ only the equality.
        match &plan {
            Plan::MdJoin { detail, theta, .. } => {
                assert!(matches!(detail.as_ref(), Plan::Select { .. }));
                assert_eq!(theta.to_string(), "(R.prod = B.prod)");
            }
            _ => panic!("unexpected shape"),
        }
    }

    #[test]
    fn theorem_4_2_preserves_semantics() {
        let original = example_4_1_plan();
        let pushed = pushdown_detail_selection(original.clone());
        let cat = catalog();
        let ctx = ExecContext::new();
        let a = execute(&original, &cat, &ctx).unwrap();
        let b = execute(&pushed, &cat, &ctx).unwrap();
        assert!(a.same_multiset(&b));
        // Sanity: prod 1 sums 10+20 in 1994–1996.
        let p1 = a.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(p1[1], Value::Float(30.0));
        // Prod 2 has no 94–96 sales → NULL (outer semantics preserved!).
        let p2 = a.rows().iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(p2[1], Value::Null);
    }

    #[test]
    fn no_detail_only_conjuncts_is_identity() {
        let plan = Plan::table("Sales").group_by_base(&["prod"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star()],
            eq(col_b("prod"), col_r("prod")),
        );
        let out = pushdown_detail_selection(plan.clone());
        assert_eq!(out, plan);
    }

    #[test]
    fn gen_md_join_pushes_only_common_conjuncts() {
        let shared = eq(col_r("prod"), lit(1i64));
        let blocks = vec![
            PlanBlock::new(
                vec![AggSpec::on_column("sum", "sale").with_alias("a")],
                and_all([
                    eq(col_b("prod"), col_r("prod")),
                    shared.clone(),
                    eq(col_r("year"), lit(1994i64)),
                ]),
            ),
            PlanBlock::new(
                vec![AggSpec::on_column("sum", "sale").with_alias("b")],
                and_all([
                    eq(col_b("prod"), col_r("prod")),
                    shared.clone(),
                    eq(col_r("year"), lit(1999i64)),
                ]),
            ),
        ];
        let plan = Plan::GenMdJoin {
            base: Box::new(Plan::table("Sales").group_by_base(&["prod"])),
            detail: Box::new(Plan::table("Sales")),
            blocks,
        };
        let pushed = pushdown_detail_selection(plan.clone());
        match &pushed {
            Plan::GenMdJoin { detail, blocks, .. } => {
                // Only the shared conjunct moved.
                assert!(matches!(detail.as_ref(), Plan::Select { .. }));
                for blk in blocks {
                    let s = blk.theta.to_string();
                    assert!(s.contains("year"), "per-block conjunct kept: {s}");
                    assert!(!s.contains("R.prod = 1"), "shared conjunct moved: {s}");
                }
            }
            _ => panic!("unexpected shape"),
        }
        // Semantics preserved.
        let cat = catalog();
        let ctx = ExecContext::new();
        let a = execute(&plan, &cat, &ctx).unwrap();
        let b = execute(&pushed, &cat, &ctx).unwrap();
        assert!(a.same_multiset(&b));
    }

    #[test]
    fn observation_4_1_copies_base_range() {
        // σ_{B.prod >= 2}(B), θ has a prod equality → the substituted range
        // is copied onto the detail input; the base selection stays.
        let plan = Plan::MdJoin {
            base: Box::new(
                Plan::table("Sales")
                    .group_by_base(&["prod"])
                    .select(ge(col_b("prod"), lit(2i64))),
            ),
            detail: Box::new(Plan::table("Sales")),
            aggs: vec![AggSpec::on_column("sum", "sale")],
            theta: eq(col_b("prod"), col_r("prod")),
        };
        let rewritten = push_base_ranges_to_detail(plan.clone());
        match &rewritten {
            Plan::MdJoin { base, detail, .. } => {
                assert!(matches!(base.as_ref(), Plan::Select { .. }));
                match detail.as_ref() {
                    Plan::Select { pred, .. } => {
                        assert_eq!(pred, &ge(col_r("prod"), lit(2i64)));
                    }
                    _ => panic!("detail selection missing"),
                }
            }
            _ => panic!("unexpected shape"),
        }
        // Semantics preserved (Observation 4.1 equivalence).
        let cat = catalog();
        let ctx = ExecContext::new();
        let a = execute(&plan, &cat, &ctx).unwrap();
        let b = execute(&rewritten, &cat, &ctx).unwrap();
        assert!(a.same_multiset(&b));
        assert_eq!(a.len(), 1); // only prod 2 survives the base selection
    }

    #[test]
    fn observation_4_1_not_applicable_without_equality() {
        // θ equates nothing with B.prod → rule is an identity.
        let plan = Plan::MdJoin {
            base: Box::new(
                Plan::table("Sales")
                    .group_by_base(&["prod"])
                    .select(ge(col_b("prod"), lit(2i64))),
            ),
            detail: Box::new(Plan::table("Sales")),
            aggs: vec![AggSpec::count_star()],
            theta: gt(col_r("sale"), col_b("prod")),
        };
        assert_eq!(push_base_ranges_to_detail(plan.clone()), plan);
    }
}
