//! The paper's algebraic transformations as rewrite rules.

pub mod coalesce;
pub mod commute;
pub mod partition;
pub mod pushdown;
pub mod split;

pub use coalesce::coalesce_chains;
pub use commute::commute_md_joins;
pub use partition::{partition_by_ranges, partition_inline};
pub use pushdown::{push_base_ranges_to_detail, pushdown_detail_selection};
pub use split::split_into_join;
