//! Plan pretty-printing (`EXPLAIN`-style).

use crate::plan::{BaseShape, Plan};
use std::fmt::Write;

/// Render a plan as an indented tree.
pub fn explain(plan: &Plan) -> String {
    let mut out = String::new();
    walk(plan, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn walk(plan: &Plan, depth: usize, out: &mut String) {
    indent(depth, out);
    match plan {
        Plan::Table(name) => {
            let _ = writeln!(out, "Table {name}");
        }
        Plan::Inline(rel) => {
            let _ = writeln!(out, "Inline [{} rows] {}", rel.len(), rel.schema());
        }
        Plan::Select { input, pred } => {
            let _ = writeln!(out, "Select {pred}");
            walk(input, depth + 1, out);
        }
        Plan::Project { input, cols } => {
            let _ = writeln!(out, "Project [{}]", cols.join(", "));
            walk(input, depth + 1, out);
        }
        Plan::Base { input, shape } => {
            let desc = match shape {
                BaseShape::GroupBy(d) => format!("GroupBy({})", d.join(", ")),
                BaseShape::Cube(d) => format!("Cube({})", d.join(", ")),
                BaseShape::Rollup(d) => format!("Rollup({})", d.join(", ")),
                BaseShape::GroupingSets(d, s) => {
                    format!("GroupingSets({}; {} sets)", d.join(", "), s.len())
                }
                BaseShape::Unpivot(d) => format!("Unpivot({})", d.join(", ")),
            };
            let _ = writeln!(out, "BaseValues {desc}");
            walk(input, depth + 1, out);
        }
        Plan::Union(parts) => {
            let _ = writeln!(out, "Union [{} inputs]", parts.len());
            for p in parts {
                walk(p, depth + 1, out);
            }
        }
        Plan::MdJoin {
            base,
            detail,
            aggs,
            theta,
        } => {
            let l: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(out, "MDJoin l=[{}] θ={theta}", l.join(", "));
            walk(base, depth + 1, out);
            walk(detail, depth + 1, out);
        }
        Plan::GenMdJoin {
            base,
            detail,
            blocks,
        } => {
            let _ = writeln!(out, "GenMDJoin [{} blocks]", blocks.len());
            for blk in blocks {
                indent(depth + 1, out);
                let l: Vec<String> = blk.aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(out, "block l=[{}] θ={}", l.join(", "), blk.theta);
            }
            walk(base, depth + 1, out);
            walk(detail, depth + 1, out);
        }
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            keep_right,
        } => {
            let _ = writeln!(
                out,
                "Join on [{}]=[{}] keep_right=[{}]",
                left_keys.join(", "),
                right_keys.join(", "),
                keep_right.join(", ")
            );
            walk(left, depth + 1, out);
            walk(right, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_agg::AggSpec;
    use mdj_expr::builder::*;

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales").select(eq(col_r("state"), lit("NY"))),
            vec![AggSpec::on_column("avg", "sale")],
            eq(col_b("cust"), col_r("cust")),
        );
        let s = explain(&plan);
        assert!(s.contains("MDJoin"));
        assert!(s.contains("BaseValues GroupBy(cust)"));
        assert!(s.contains("Select (R.state = 'NY')"));
        // Indentation present.
        assert!(s.lines().any(|l| l.starts_with("    ")));
    }
}
