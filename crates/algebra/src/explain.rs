//! Plan pretty-printing (`EXPLAIN`-style).

use crate::plan::{BaseShape, Plan};
use mdj_storage::StatsSnapshot;
use std::fmt::Write;

/// Render a plan as an indented tree.
pub fn explain(plan: &Plan) -> String {
    let mut out = String::new();
    walk(plan, 0, &mut out);
    out
}

/// Render a plan together with the operation counters collected while
/// executing it (`EXPLAIN ANALYZE`-style). Parallel runs append one line per
/// worker with its morsel/steal/merge counts.
pub fn explain_with_stats(plan: &Plan, stats: &StatsSnapshot) -> String {
    let mut out = explain(plan);
    let _ = writeln!(
        out,
        "-- stats: scans={} tuples={} probes={} updates={}",
        stats.scans, stats.tuples_scanned, stats.probes, stats.updates
    );
    if stats.batches > 0 {
        let _ = writeln!(
            out,
            "-- vectorized: batches={} fallbacks={}",
            stats.batches, stats.batch_fallbacks
        );
        if stats.fallback_reasons_active() {
            let _ = writeln!(
                out,
                "-- fallback reasons: theta={} prefilter={} key={} agg={}",
                stats.fallback_theta,
                stats.fallback_prefilter,
                stats.fallback_key,
                stats.fallback_agg
            );
        }
    }
    if stats.gen_sets > 0 {
        let _ = writeln!(
            out,
            "-- generalized: sets={} scalar_sets={}",
            stats.gen_sets, stats.gen_set_fallbacks
        );
    }
    if stats.auto_decisions > 0 {
        let _ = writeln!(
            out,
            "-- auto: batch coverage={}‰ plan={}",
            stats.auto_coverage_permille,
            if stats.auto_batched {
                "vectorized"
            } else {
                "scalar"
            }
        );
    }
    if stats.governor_active() {
        let _ = writeln!(
            out,
            "-- governor: cancel_polls={} retries={} bytes_charged={} degradations={}",
            stats.cancel_polls, stats.morsel_retries, stats.bytes_charged, stats.degradations
        );
    }
    if stats.spill_active() {
        let _ = writeln!(
            out,
            "-- spill: partitions={} bytes_spilled={} read_bytes={}",
            stats.spill_partitions, stats.bytes_spilled, stats.spill_read_bytes
        );
    }
    if stats.cache_active() {
        let _ = writeln!(
            out,
            "-- cache: hits={} rollup_hits={} misses={} invalidations={} ingest_batches={}",
            stats.cache_hits,
            stats.cache_rollup_hits,
            stats.cache_misses,
            stats.cache_invalidations,
            stats.ingest_batches
        );
    }
    if stats.paged_active() {
        let _ = writeln!(
            out,
            "-- paged: pages_read={} bytes_read={} pool_evictions={}",
            stats.pages_read, stats.bytes_read, stats.pool_evictions
        );
    }
    for w in &stats.workers {
        let _ = writeln!(out, "--   {w}");
    }
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn walk(plan: &Plan, depth: usize, out: &mut String) {
    indent(depth, out);
    match plan {
        Plan::Table(name) => {
            let _ = writeln!(out, "Table {name}");
        }
        Plan::Inline(rel) => {
            let _ = writeln!(out, "Inline [{} rows] {}", rel.len(), rel.schema());
        }
        Plan::Select { input, pred } => {
            let _ = writeln!(out, "Select {pred}");
            walk(input, depth + 1, out);
        }
        Plan::Project { input, cols } => {
            let _ = writeln!(out, "Project [{}]", cols.join(", "));
            walk(input, depth + 1, out);
        }
        Plan::Base { input, shape } => {
            let desc = match shape {
                BaseShape::GroupBy(d) => format!("GroupBy({})", d.join(", ")),
                BaseShape::Cube(d) => format!("Cube({})", d.join(", ")),
                BaseShape::Rollup(d) => format!("Rollup({})", d.join(", ")),
                BaseShape::GroupingSets(d, s) => {
                    format!("GroupingSets({}; {} sets)", d.join(", "), s.len())
                }
                BaseShape::Unpivot(d) => format!("Unpivot({})", d.join(", ")),
            };
            let _ = writeln!(out, "BaseValues {desc}");
            walk(input, depth + 1, out);
        }
        Plan::Union(parts) => {
            let _ = writeln!(out, "Union [{} inputs]", parts.len());
            for p in parts {
                walk(p, depth + 1, out);
            }
        }
        Plan::MdJoin {
            base,
            detail,
            aggs,
            theta,
        } => {
            let l: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
            let _ = writeln!(out, "MDJoin l=[{}] θ={theta}", l.join(", "));
            walk(base, depth + 1, out);
            walk(detail, depth + 1, out);
        }
        Plan::GenMdJoin {
            base,
            detail,
            blocks,
        } => {
            let _ = writeln!(out, "GenMDJoin [{} blocks]", blocks.len());
            for blk in blocks {
                indent(depth + 1, out);
                let l: Vec<String> = blk.aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(out, "block l=[{}] θ={}", l.join(", "), blk.theta);
            }
            walk(base, depth + 1, out);
            walk(detail, depth + 1, out);
        }
        Plan::Parallel { input, threads } => {
            if *threads == 0 {
                let _ = writeln!(out, "Parallel [morsel-driven, all cores]");
            } else {
                let _ = writeln!(out, "Parallel [morsel-driven, {threads} threads]");
            }
            walk(input, depth + 1, out);
        }
        Plan::Join {
            left,
            right,
            left_keys,
            right_keys,
            keep_right,
        } => {
            let _ = writeln!(
                out,
                "Join on [{}]=[{}] keep_right=[{}]",
                left_keys.join(", "),
                right_keys.join(", "),
                keep_right.join(", ")
            );
            walk(left, depth + 1, out);
            walk(right, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_agg::AggSpec;
    use mdj_expr::builder::*;

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales").select(eq(col_r("state"), lit("NY"))),
            vec![AggSpec::on_column("avg", "sale")],
            eq(col_b("cust"), col_r("cust")),
        );
        let s = explain(&plan);
        assert!(s.contains("MDJoin"));
        assert!(s.contains("BaseValues GroupBy(cust)"));
        assert!(s.contains("Select (R.state = 'NY')"));
        // Indentation present.
        assert!(s.lines().any(|l| l.starts_with("    ")));
    }

    #[test]
    fn explain_renders_parallel_node() {
        let plan = Plan::table("Sales")
            .group_by_base(&["cust"])
            .md_join(
                Plan::table("Sales"),
                vec![AggSpec::on_column("sum", "sale")],
                eq(col_b("cust"), col_r("cust")),
            )
            .parallel(4);
        let s = explain(&plan);
        assert!(s.contains("Parallel [morsel-driven, 4 threads]"));
        let all = explain(&Plan::table("Sales").parallel(0));
        assert!(all.contains("all cores"));
    }

    #[test]
    fn explain_with_stats_shows_worker_counters() {
        use mdj_storage::{StatsSnapshot, WorkerStats};
        let plan = Plan::table("Sales");
        let snap = StatsSnapshot {
            scans: 1,
            tuples_scanned: 500,
            probes: 500,
            updates: 42,
            cancel_polls: 0,
            morsel_retries: 0,
            bytes_charged: 0,
            degradations: 0,
            batches: 0,
            batch_fallbacks: 0,
            fallback_theta: 0,
            fallback_prefilter: 0,
            fallback_key: 0,
            fallback_agg: 0,
            gen_sets: 0,
            gen_set_fallbacks: 0,
            bytes_spilled: 0,
            spill_partitions: 0,
            spill_read_bytes: 0,
            auto_decisions: 0,
            auto_coverage_permille: 0,
            auto_batched: false,
            cache_hits: 0,
            cache_rollup_hits: 0,
            cache_misses: 0,
            cache_invalidations: 0,
            ingest_batches: 0,
            bytes_read: 0,
            pages_read: 0,
            pool_evictions: 0,
            workers: vec![
                WorkerStats {
                    worker: 0,
                    morsels: 3,
                    tuples: 300,
                    updates: 30,
                    steals: 1,
                    merges: 1,
                },
                WorkerStats {
                    worker: 1,
                    morsels: 2,
                    tuples: 200,
                    updates: 12,
                    steals: 0,
                    merges: 0,
                },
            ],
        };
        let s = explain_with_stats(&plan, &snap);
        assert!(s.contains("scans=1 tuples=500"));
        assert!(s.contains("worker 0: morsels=3 tuples=300 updates=30 steals=1 merges=1"));
        assert!(s.contains("worker 1:"));
        // Governor counters are omitted when the governor never engaged...
        assert!(!s.contains("governor:"));
        // ...as is the vectorized line when no batches ran.
        assert!(!s.contains("vectorized:"));
        let batched = StatsSnapshot {
            batches: 7,
            batch_fallbacks: 2,
            ..snap.clone()
        };
        let s2 = explain_with_stats(&plan, &batched);
        assert!(s2.contains("-- vectorized: batches=7 fallbacks=2"));
        // Reasons and generalized sets are silent until attributed...
        assert!(!s2.contains("fallback reasons:"));
        assert!(!s2.contains("generalized:"));
        // ...and rendered once counted.
        let attributed = StatsSnapshot {
            batches: 7,
            batch_fallbacks: 2,
            fallback_prefilter: 2,
            fallback_agg: 5,
            gen_sets: 3,
            gen_set_fallbacks: 1,
            ..snap.clone()
        };
        let sr = explain_with_stats(&plan, &attributed);
        assert!(sr.contains("-- fallback reasons: theta=0 prefilter=2 key=0 agg=5"));
        assert!(sr.contains("-- generalized: sets=3 scalar_sets=1"));
        // The Auto coverage decision is silent until one is recorded...
        assert!(!s2.contains("auto:"));
        let auto = StatsSnapshot {
            auto_decisions: 1,
            auto_coverage_permille: 666,
            auto_batched: true,
            ..snap.clone()
        };
        let s3 = explain_with_stats(&plan, &auto);
        assert!(s3.contains("-- auto: batch coverage=666‰ plan=vectorized"));
        let auto_scalar = StatsSnapshot {
            auto_decisions: 1,
            auto_coverage_permille: 500,
            auto_batched: false,
            ..snap.clone()
        };
        assert!(explain_with_stats(&plan, &auto_scalar).contains("plan=scalar"));
        // ...and rendered when any of them is non-zero.
        let governed = StatsSnapshot {
            cancel_polls: 12,
            bytes_charged: 4096,
            degradations: 2,
            ..snap
        };
        let s = explain_with_stats(&plan, &governed);
        assert!(
            s.contains("-- governor: cancel_polls=12 retries=0 bytes_charged=4096 degradations=2")
        );
        // Spill counters are silent until a run actually spilled...
        assert!(!s.contains("spill:"));
        // ...and rendered once one did.
        let spilled = StatsSnapshot {
            bytes_spilled: 8192,
            spill_partitions: 4,
            spill_read_bytes: 8192,
            ..governed
        };
        let s = explain_with_stats(&plan, &spilled);
        assert!(s.contains("-- spill: partitions=4 bytes_spilled=8192 read_bytes=8192"));
        // Cache counters are silent while the cache never engaged...
        assert!(!s.contains("cache:"));
        // ...and rendered once any cache or ingest activity is counted.
        let cached = StatsSnapshot {
            cache_hits: 3,
            cache_rollup_hits: 1,
            cache_misses: 2,
            cache_invalidations: 4,
            ingest_batches: 5,
            ..spilled
        };
        let s = explain_with_stats(&plan, &cached);
        assert!(
            s.contains("-- cache: hits=3 rollup_hits=1 misses=2 invalidations=4 ingest_batches=5")
        );
        // Paged-store counters are silent for in-memory runs...
        assert!(!s.contains("paged:"));
        // ...and rendered once a disk-resident scan happened.
        let paged = StatsSnapshot {
            pages_read: 9,
            bytes_read: 2304,
            pool_evictions: 3,
            ..cached
        };
        let s = explain_with_stats(&plan, &paged);
        assert!(s.contains("-- paged: pages_read=9 bytes_read=2304 pool_evictions=3"));
    }
}
