//! A coarse cost model for MD-join plans.
//!
//! The paper's claim is that MD-join queries "can be incorporated immediately
//! into present cost- and algebraic-based query optimizers". This model is
//! deliberately simple — cardinality estimates from catalog row counts plus
//! per-operator work formulas — but it is enough to rank the paper's rewrite
//! alternatives correctly (coalesced vs sequential scans, hash probe vs
//! nested loop, pushed-down vs full scans), which is what the optimizer
//! needs.

use crate::error::Result;
use crate::plan::Plan;
use mdj_agg::Registry;
use mdj_expr::analysis::probe_bindings;
use mdj_storage::Catalog;

/// Default selectivity assumed for a selection predicate.
pub const SELECT_SELECTIVITY: f64 = 0.3;
/// Distinctness exponent: |distinct(dims)| ≈ |input|^DISTINCT_EXP.
pub const DISTINCT_EXP: f64 = 0.75;
/// Fixed cost charged per worker thread of a [`Plan::Parallel`] node
/// (spawn + morsel queue setup + final state merge). Keeps the optimizer
/// from parallelizing plans whose total work is smaller than the fan-out
/// overhead.
pub const PARALLEL_STARTUP_COST: f64 = 2000.0;

/// Estimated output rows of a plan.
pub fn estimate_rows(plan: &Plan, catalog: &Catalog) -> f64 {
    match plan {
        Plan::Table(name) => catalog.get(name).map(|r| r.len() as f64).unwrap_or(1000.0),
        Plan::Inline(rel) => rel.len() as f64,
        Plan::Select { input, .. } => SELECT_SELECTIVITY * estimate_rows(input, catalog),
        Plan::Project { input, .. } => estimate_rows(input, catalog),
        Plan::Base { input, shape } => {
            let n = estimate_rows(input, catalog).max(1.0);
            let distinct = n.powf(DISTINCT_EXP);
            let factor = match shape {
                crate::plan::BaseShape::GroupBy(_) => 1.0,
                crate::plan::BaseShape::Cube(d) => (1u64 << d.len().min(20)) as f64,
                crate::plan::BaseShape::Rollup(d) => (d.len() + 1) as f64,
                crate::plan::BaseShape::GroupingSets(_, sets) => sets.len() as f64,
                crate::plan::BaseShape::Unpivot(d) => d.len() as f64,
            };
            // Coarser cuboids are smaller; cap by the factor-weighted distinct.
            (distinct * factor).min(n * factor)
        }
        Plan::Union(parts) => parts.iter().map(|p| estimate_rows(p, catalog)).sum(),
        // MD-join output cardinality is exactly |B| (Definition 3.1).
        Plan::MdJoin { base, .. } | Plan::GenMdJoin { base, .. } => estimate_rows(base, catalog),
        Plan::Join { left, .. } => estimate_rows(left, catalog),
        Plan::Parallel { input, .. } => estimate_rows(input, catalog),
    }
}

/// Estimated work (abstract units ≈ tuples touched) to execute a plan.
pub fn estimate_cost(plan: &Plan, catalog: &Catalog, _registry: &Registry) -> Result<f64> {
    Ok(match plan {
        Plan::Table(_) | Plan::Inline(_) => estimate_rows(plan, catalog),
        Plan::Select { input, .. } | Plan::Project { input, .. } => {
            estimate_cost(input, catalog, _registry)? + estimate_rows(input, catalog)
        }
        Plan::Base { input, shape } => {
            let n = estimate_rows(input, catalog);
            let passes = match shape {
                crate::plan::BaseShape::Cube(d) => (1u64 << d.len().min(20)) as f64,
                crate::plan::BaseShape::Rollup(d) => (d.len() + 1) as f64,
                crate::plan::BaseShape::GroupingSets(_, s) => s.len() as f64,
                crate::plan::BaseShape::Unpivot(d) => d.len() as f64,
                crate::plan::BaseShape::GroupBy(_) => 1.0,
            };
            estimate_cost(input, catalog, _registry)? + n * passes
        }
        Plan::Union(parts) => {
            let mut c = 0.0;
            for p in parts {
                c += estimate_cost(p, catalog, _registry)?;
            }
            c
        }
        Plan::MdJoin {
            base,
            detail,
            theta,
            ..
        } => {
            let b_rows = estimate_rows(base, catalog);
            let r_rows = estimate_rows(detail, catalog);
            let probe = probe_cost(theta, b_rows);
            estimate_cost(base, catalog, _registry)?
                + estimate_cost(detail, catalog, _registry)?
                + r_rows * probe
        }
        Plan::GenMdJoin {
            base,
            detail,
            blocks,
        } => {
            let b_rows = estimate_rows(base, catalog);
            let r_rows = estimate_rows(detail, catalog);
            let probes: f64 = blocks
                .iter()
                .map(|blk| probe_cost(&blk.theta, b_rows))
                .sum();
            estimate_cost(base, catalog, _registry)?
                + estimate_cost(detail, catalog, _registry)?
                + r_rows * probes
        }
        Plan::Join { left, right, .. } => {
            estimate_cost(left, catalog, _registry)?
                + estimate_cost(right, catalog, _registry)?
                + estimate_rows(left, catalog)
                + estimate_rows(right, catalog)
        }
        Plan::Parallel { input, threads } => {
            // Ideal speedup on the wrapped operator's work, paid for with a
            // per-thread startup charge. `threads = 0` ("all cores") is
            // costed as the machine's parallelism.
            let t = if *threads == 0 {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1) as f64
            } else {
                *threads as f64
            };
            estimate_cost(input, catalog, _registry)? / t + PARALLEL_STARTUP_COST * t
        }
    })
}

/// Per-detail-tuple probe cost: ~1 for a hash probe (θ has usable equality
/// bindings), |B| for a nested loop (Section 4.5's observation).
fn probe_cost(theta: &mdj_expr::Expr, b_rows: f64) -> f64 {
    let (bindings, _) = probe_bindings(theta);
    if bindings.is_empty() {
        b_rows.max(1.0)
    } else {
        2.0 // hash probe + residual check
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_agg::AggSpec;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, Relation, Row, Schema};

    fn catalog(n: i64) -> Catalog {
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Int)]);
        let rel = Relation::from_rows(
            schema,
            (0..n).map(|i| Row::from_values([i % 10, i])).collect(),
        );
        let mut c = Catalog::new();
        c.register("Sales", rel);
        c
    }

    #[test]
    fn md_join_cardinality_is_base_cardinality() {
        let cat = catalog(1000);
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star()],
            eq(col_b("cust"), col_r("cust")),
        );
        let rows = estimate_rows(&plan, &cat);
        let base_rows = estimate_rows(&Plan::table("Sales").group_by_base(&["cust"]), &cat);
        assert_eq!(rows, base_rows);
    }

    #[test]
    fn coalesced_plan_is_cheaper_than_chain() {
        let cat = catalog(10_000);
        let reg = Registry::standard();
        let b = Plan::table("Sales").group_by_base(&["cust"]);
        let stage = |p: Plan, i: usize| {
            p.md_join(
                Plan::table("Sales"),
                vec![AggSpec::count_star().with_alias(format!("c{i}"))],
                eq(col_b("cust"), col_r("cust")),
            )
        };
        let chain = stage(stage(stage(b, 0), 1), 2);
        let coalesced = crate::rules::coalesce_chains(chain.clone());
        let c1 = estimate_cost(&chain, &cat, &reg).unwrap();
        let c2 = estimate_cost(&coalesced, &cat, &reg).unwrap();
        assert!(c2 < c1, "coalesced {c2} !< chain {c1}");
    }

    #[test]
    fn hash_probe_theta_is_cheaper_than_nested() {
        let cat = catalog(10_000);
        let reg = Registry::standard();
        let b = Plan::table("Sales").group_by_base(&["cust"]);
        let hash_plan = b.clone().md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star()],
            eq(col_b("cust"), col_r("cust")),
        );
        let nested_plan = b.md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star().with_alias("c2")],
            le(col_b("cust"), col_r("cust")),
        );
        let ch = estimate_cost(&hash_plan, &cat, &reg).unwrap();
        let cn = estimate_cost(&nested_plan, &cat, &reg).unwrap();
        assert!(ch < cn);
    }

    #[test]
    fn pushdown_reduces_cost() {
        let cat = catalog(10_000);
        let reg = Registry::standard();
        let plan = Plan::table("Sales").group_by_base(&["cust"]).md_join(
            Plan::table("Sales"),
            vec![AggSpec::count_star()],
            and(
                eq(col_b("cust"), col_r("cust")),
                gt(col_r("sale"), lit(100i64)),
            ),
        );
        let pushed = crate::rules::pushdown_detail_selection(plan.clone());
        let c1 = estimate_cost(&plan, &cat, &reg).unwrap();
        let c2 = estimate_cost(&pushed, &cat, &reg).unwrap();
        assert!(c2 < c1);
    }

    #[test]
    fn unknown_table_has_fallback_estimate() {
        let cat = Catalog::new();
        assert_eq!(estimate_rows(&Plan::table("Nope"), &cat), 1000.0);
    }
}
