//! Morsel-driven parallel MD-join (work-stealing scheduling).
//!
//! The static Theorem 4.1 plans in [`crate::parallel`] split their input into
//! one contiguous chunk per worker up front. Under skew — a Zipf-distributed
//! join column, a θ whose probe cost varies per tuple — chunks take unequal
//! time and the slowest worker gates the join. The morsel executor instead
//! splits the input into fixed-size *morsels* (default
//! [`crate::context::DEFAULT_MORSEL_SIZE`] rows, tunable via
//! [`ExecContext::with_morsel_size`]), seeds each worker's deque with a
//! contiguous run of morsels for locality, and lets idle workers steal from
//! busy ones, so the load rebalances at morsel granularity.
//!
//! Both Theorem 4.1 orientations are supported:
//!
//! * [`MorselSide::Detail`] — morsels over `R`; each worker keeps aggregate
//!   state for all of `B` and partial states are merged at the end (one
//!   logical scan of `R`). The default: it scans `R` once regardless of
//!   morsel count.
//! * [`MorselSide::Base`] — morsels over `B`; each morsel is a full MD-join
//!   of a `B` fragment against `R` (memory-bounded, `⌈|B|/morsel⌉` scans of
//!   `R`). Auto-selected only when `B` dwarfs `R`, where re-scanning a small
//!   `R` is cheaper than holding per-worker state for a huge `B`.
//!
//! Per-worker morsel/steal/merge counters are reported through
//! [`mdj_storage::WorkerStats`] when the context carries a
//! [`mdj_storage::ScanStats`], and surface in `EXPLAIN ANALYZE` output.

use crate::context::ExecContext;
use crate::error::{CoreError, Result};
use crate::governor::{self, panic_message, GrowthMeter, MemCharge};
use crate::mdjoin::{bind_aggs, check_no_duplicates, md_join_serial, metered_flags};
use crate::probe::ProbePlan;
use crate::vectorized::{md_join_vectorized, BatchProbe};
use crossbeam::deque::{Steal, Stealer, Worker};
use mdj_agg::{AggSpec, AggState};
use mdj_expr::Expr;
use mdj_storage::{ColumnarChunk, Relation, Row, Schema, Value, WorkerStats};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

/// Which relation the morsel executor splits into work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MorselSide {
    /// Decide from the cardinalities (see [`choose_side`]).
    #[default]
    Auto,
    /// Morsels over `B`: memory-bounded, one scan of `R` per morsel.
    Base,
    /// Morsels over `R`: one logical scan, partial-state merge at the end.
    Detail,
}

/// Pick the partitioning side from the input cardinalities: `Detail` unless
/// `B` is much larger than `R` (≥ 4×), where per-worker full-`B` state would
/// dominate memory while re-scanning the small `R` stays cheap.
pub fn choose_side(b_rows: usize, r_rows: usize) -> MorselSide {
    if b_rows >= 4 * r_rows.max(1) {
        MorselSide::Base
    } else {
        MorselSide::Detail
    }
}

/// Cut `0..n` into `Range`s of at most `morsel` rows.
fn morsels(n: usize, morsel: usize) -> Vec<Range<usize>> {
    let morsel = morsel.max(1);
    (0..n)
        .step_by(morsel)
        .map(|start| start..(start + morsel).min(n))
        .collect()
}

/// Build one deque per worker and seed each with a contiguous run of tasks
/// (contiguity keeps a worker's own morsels adjacent in memory; stealing only
/// breaks locality when the load is actually imbalanced).
fn seed_queues<T>(tasks: Vec<T>, threads: usize) -> (Vec<Worker<T>>, Vec<Stealer<T>>) {
    let queues: Vec<Worker<T>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<T>> = queues.iter().map(Worker::stealer).collect();
    let n = tasks.len();
    let base = n / threads;
    let extra = n % threads;
    let mut it = tasks.into_iter();
    for (i, q) in queues.iter().enumerate() {
        let take = base + usize::from(i < extra);
        for task in it.by_ref().take(take) {
            q.push(task);
        }
    }
    (queues, stealers)
}

/// Pop the next task: own queue first, then steal round-robin from the other
/// workers (recording the steal).
fn next_task<T>(
    own: &Worker<T>,
    stealers: &[Stealer<T>],
    me: usize,
    stats: &mut WorkerStats,
) -> Option<T> {
    if let Some(task) = own.pop() {
        return Some(task);
    }
    let n = stealers.len();
    for k in 1..n {
        let victim = &stealers[(me + k) % n];
        loop {
            match victim.steal() {
                Steal::Success(task) => {
                    stats.steals += 1;
                    return Some(task);
                }
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
    }
    None
}

type States = Vec<Vec<Box<dyn AggState>>>;

/// Run one morsel's *pure* computation inside a panic-isolation boundary,
/// retrying up to `ctx.max_morsel_retries` times. The closure must be free of
/// externally visible side effects (no state mutation), so a retried attempt
/// cannot double-count work; callers apply the returned delta afterwards,
/// outside the boundary. After the retry budget is spent the panic surfaces
/// as a structured [`CoreError::MorselPanicked`] — never a poisoned or hung
/// run.
fn run_isolated<T>(ctx: &ExecContext, morsel: usize, f: impl Fn() -> Result<T>) -> Result<T> {
    let mut attempts: u32 = 0;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(&f)) {
            Ok(result) => return result,
            Err(payload) => {
                if attempts > ctx.max_morsel_retries() {
                    return Err(CoreError::MorselPanicked {
                        morsel,
                        attempts,
                        message: panic_message(payload.as_ref()),
                    });
                }
                ctx.record_morsel_retry();
            }
        }
    }
}

/// Merge two partial state sets pairwise, attributing the merge to `stats`.
fn merge_states(mut acc: States, other: States, stats: &mut WorkerStats) -> Result<States> {
    stats.merges += 1;
    for (row_states, other_states) in acc.iter_mut().zip(other) {
        for (s, o) in row_states.iter_mut().zip(other_states) {
            s.merge(o.as_ref())?;
        }
    }
    Ok(acc)
}

/// Morsel-parallel MD-join. Splits the side chosen by `side` into
/// `ctx.morsel_size`-row work units scheduled across `threads` workers with
/// work stealing. Output equals [`md_join_serial`] row-for-row (same order).
pub(crate) fn md_join_morsel(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    threads: usize,
    side: MorselSide,
    ctx: &ExecContext,
) -> Result<Relation> {
    md_join_morsel_opts(b, r, l, theta, threads, side, ctx, false)
}

/// [`md_join_morsel`] with control over batched morsel evaluation. With
/// `batched`, each detail-side morsel is evaluated as one columnar batch
/// through [`BatchProbe`] (the morsel *is* the batch: it already bounds the
/// work unit to `ctx.morsel_size` rows), and each base-side morsel runs the
/// vectorized evaluator over its `B` fragment. Output and work accounting
/// are identical either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn md_join_morsel_opts(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    threads: usize,
    side: MorselSide,
    ctx: &ExecContext,
    batched: bool,
) -> Result<Relation> {
    if threads == 0 {
        return Err(CoreError::BadConfig("thread count must be ≥ 1".into()));
    }
    match side {
        MorselSide::Auto => {
            let side = choose_side(b.len(), r.len());
            md_join_morsel_opts(b, r, l, theta, threads, side, ctx, batched)
        }
        MorselSide::Detail => morsel_detail(b, r, l, theta, threads, ctx, batched),
        MorselSide::Base => morsel_base(b, r, l, theta, threads, ctx, batched),
    }
}

/// Detail-side execution: morsels over `R`, per-worker full-`B` states, and a
/// cooperative merge at the end. One logical scan of `R` is recorded.
///
/// The merge uses a shared pool: each finished worker pushes its states, then
/// — under the same lock — checks whether two state sets are available; if so
/// it takes both, merges them outside the lock, and pushes the result back.
/// Every push is paired with that check, so exactly one state set survives,
/// and merging is spread over the workers that finish first instead of
/// serializing on the main thread.
fn morsel_detail(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    threads: usize,
    ctx: &ExecContext,
    batched: bool,
) -> Result<Relation> {
    ctx.check_interrupt()?;
    let bound = bind_aggs(l, r.schema(), ctx.registry())?;
    check_no_duplicates(b.schema(), &bound)?;
    let (plan, _index_charge) = ProbePlan::build_charged(b, r.schema(), theta, ctx)?;
    // Batched mode shares one read-only BatchProbe across workers; each
    // morsel materializes only the detail columns the probe actually reads
    // (aggregate inputs are deposited from the row form either way).
    let probe = if batched {
        let bp = BatchProbe::new(&plan, b);
        let mut needed = vec![false; r.schema().fields().len()];
        bp.collect_needed(&mut needed);
        Some((bp, needed))
    } else {
        None
    };

    let rows = r.rows();
    let tasks: Vec<(usize, Range<usize>)> = morsels(rows.len(), ctx.morsel_size())
        .into_iter()
        .enumerate()
        .collect();
    let (queues, stealers) = seed_queues(tasks, threads);
    let pool: Mutex<Vec<States>> = Mutex::new(Vec::with_capacity(threads));

    // One morsel's pure delta: each matched tuple deposits its aggregate
    // input values once (`n_aggs` values per slot), and `pairs` records which
    // base rows consume which slot. Computing the delta touches no shared
    // state, so the isolation boundary can retry it after a caught panic
    // without double-counting; the apply step below runs outside the
    // boundary, exactly once.
    // The third field reports whether a batched morsel fell back to scalar
    // probing anywhere (always `false` in scalar mode).
    type Delta = (Vec<(usize, usize)>, Vec<Value>, bool);
    let compute_delta = |id: usize, range: &Range<usize>| -> Result<Delta> {
        ctx.fault_on_morsel(id);
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut tuple_vals: Vec<Value> = Vec::new();
        if let Some((bp, needed)) = &probe {
            // Batched: the morsel is the batch. `matches_batch` yields
            // (local tuple, base row) pairs in tuple order with each tuple's
            // matches contiguous, so a slot opens exactly when the local
            // index changes.
            let chunk = ColumnarChunk::from_rows(rows, range.start, range.len(), needed);
            let mut bpairs: Vec<(u32, usize)> = Vec::new();
            let fell_back = bp.matches_batch(&chunk, rows, ctx, &mut bpairs)?;
            let mut slot = 0usize;
            let mut last: Option<u32> = None;
            for &(i, row_id) in &bpairs {
                if last != Some(i) {
                    if last.is_some() {
                        slot += 1;
                    }
                    last = Some(i);
                    let t = &rows[range.start + i as usize];
                    for ba in &bound {
                        tuple_vals.push(match ba.input_col {
                            Some(c) => t[c].clone(),
                            None => Value::Null,
                        });
                    }
                }
                pairs.push((row_id, slot));
            }
            return Ok((pairs, tuple_vals, fell_back));
        }
        let mut matches: Vec<usize> = Vec::new();
        let mut key_scratch: Vec<Value> = Vec::new();
        let mut slot = 0usize;
        for t in &rows[range.clone()] {
            plan.matches(b, t.values(), ctx, &mut matches, &mut key_scratch)?;
            if matches.is_empty() {
                continue;
            }
            for ba in &bound {
                tuple_vals.push(match ba.input_col {
                    Some(c) => t[c].clone(),
                    None => Value::Null,
                });
            }
            pairs.extend(matches.iter().map(|&row_id| (row_id, slot)));
            slot += 1;
        }
        Ok((pairs, tuple_vals, false))
    };

    let worker = |me: usize, own: Worker<(usize, Range<usize>)>| -> Result<()> {
        // Every detail-side worker keeps state for all of B: charge the full
        // footprint per worker (released when the worker's states merge away).
        let _state_charge = MemCharge::try_new(ctx, governor::state_bytes(b.len(), bound.len()))?;
        let mut ws = WorkerStats::new(me);
        let mut states: States = b
            .iter()
            .map(|_| bound.iter().map(|ba| ba.agg.init()).collect())
            .collect();
        // Holistic aggregate growth is metered per worker against the shared
        // budget (the meter is inert without one).
        let mut meter = GrowthMeter::new(ctx);
        let metered = metered_flags(&bound, &meter);
        while let Some((id, range)) = next_task(&own, &stealers, me, &mut ws) {
            ctx.check_interrupt()?;
            ws.morsels += 1;
            ws.tuples += range.len() as u64;
            let (pairs, tuple_vals, fell_back) =
                run_isolated(ctx, id, || compute_delta(id, &range))?;
            if batched {
                ctx.record_batch();
                if fell_back {
                    ctx.record_batch_fallback();
                }
            }
            let n = (pairs.len() * bound.len()) as u64;
            ctx.record_updates(n);
            ws.updates += n;
            for &(row_id, slot) in &pairs {
                for (j, state) in states[row_id].iter_mut().enumerate() {
                    let v = &tuple_vals[slot * bound.len() + j];
                    if metered[j] {
                        let before = state.heap_bytes();
                        state.update(v)?;
                        meter.charge(state.heap_bytes().saturating_sub(before))?;
                    } else {
                        state.update(v)?;
                    }
                }
            }
        }
        // Cooperative pairwise merge (see function docs for the protocol).
        let mut mine = Some(states);
        loop {
            let mut guard = pool.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(s) = mine.take() {
                guard.push(s);
            }
            if guard.len() >= 2 {
                let a = guard.pop().ok_or_else(|| {
                    CoreError::Internal("merge pool empty after len check".into())
                })?;
                let bstates = guard.pop().ok_or_else(|| {
                    CoreError::Internal("merge pool empty after len check".into())
                })?;
                drop(guard);
                mine = Some(merge_states(a, bstates, &mut ws)?);
            } else {
                break;
            }
        }
        ctx.record_worker(ws);
        Ok(())
    };

    ctx.record_scan(r.len() as u64);
    let results: Vec<Result<()>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .into_iter()
            .enumerate()
            .map(|(me, own)| {
                let worker = &worker;
                scope.spawn(move |_| worker(me, own))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(worker, h)| {
                h.join().unwrap_or_else(|payload| {
                    Err(CoreError::WorkerPanicked {
                        worker,
                        message: panic_message(payload.as_ref()),
                    })
                })
            })
            .collect()
    })
    .map_err(|payload| {
        CoreError::Internal(format!(
            "crossbeam scope failed: {}",
            panic_message(payload.as_ref())
        ))
    })?;
    results.into_iter().collect::<Result<Vec<()>>>()?;

    let mut survivors = pool.into_inner().unwrap_or_else(PoisonError::into_inner);
    debug_assert_eq!(survivors.len(), 1, "merge protocol leaves one state set");
    let total = survivors
        .pop()
        .ok_or_else(|| CoreError::Internal("merge protocol left no surviving state set".into()))?;

    let mut fields = b.schema().fields().to_vec();
    fields.extend(bound.iter().map(|ba| ba.output.clone()));
    let mut out = Relation::empty(Schema::new(fields));
    for (row, row_states) in b.iter().zip(total) {
        let mut vals = row.values().to_vec();
        vals.extend(row_states.iter().map(|s| s.finalize()));
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

/// Base-side execution: morsels over `B`; each morsel runs a full serial
/// MD-join of its `B` fragment against `R` (scanning `R` once per morsel,
/// recorded as such) and deposits its output rows under the morsel's slot so
/// concatenation reproduces `B`'s row order. No state merging.
fn morsel_base(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    threads: usize,
    ctx: &ExecContext,
    batched: bool,
) -> Result<Relation> {
    let schema = crate::mdjoin::output_schema(b.schema(), r.schema(), l, ctx.registry())?;
    let b_rows = b.rows();
    let tasks: Vec<(usize, Range<usize>)> = morsels(b_rows.len(), ctx.morsel_size())
        .into_iter()
        .enumerate()
        .collect();
    let (queues, stealers) = seed_queues(tasks, threads);
    let slots: Mutex<Vec<(usize, Vec<Row>)>> = Mutex::new(Vec::new());

    let worker = |me: usize, own: Worker<(usize, Range<usize>)>| -> Result<()> {
        let mut ws = WorkerStats::new(me);
        let mut done: Vec<(usize, Vec<Row>)> = Vec::new();
        while let Some((slot, range)) = next_task(&own, &stealers, me, &mut ws) {
            ctx.check_interrupt()?;
            ws.morsels += 1;
            ws.tuples += range.len() as u64;
            let frag = Relation::from_rows(b.schema().clone(), b_rows[range].to_vec());
            // A base-side morsel is already pure — an independent MD-join of
            // its fragment, deposited only on success — so the whole join sits
            // inside the isolation boundary and retries are side-effect-free.
            let piece = run_isolated(ctx, slot, || {
                ctx.fault_on_morsel(slot);
                if batched {
                    md_join_vectorized(&frag, r, l, theta, ctx)
                } else {
                    md_join_serial(&frag, r, l, theta, ctx)
                }
            })?;
            done.push((slot, piece.into_rows()));
        }
        slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend(done);
        ctx.record_worker(ws);
        Ok(())
    };

    ctx.check_interrupt()?;
    let results: Vec<Result<()>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = queues
            .into_iter()
            .enumerate()
            .map(|(me, own)| {
                let worker = &worker;
                scope.spawn(move |_| worker(me, own))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(worker, h)| {
                h.join().unwrap_or_else(|payload| {
                    Err(CoreError::WorkerPanicked {
                        worker,
                        message: panic_message(payload.as_ref()),
                    })
                })
            })
            .collect()
    })
    .map_err(|payload| {
        CoreError::Internal(format!(
            "crossbeam scope failed: {}",
            panic_message(payload.as_ref())
        ))
    })?;
    results.into_iter().collect::<Result<Vec<()>>>()?;

    let mut pieces = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
    pieces.sort_by_key(|(slot, _)| *slot);
    let mut out = Relation::empty(schema);
    for (_, rows) in pieces {
        for row in rows {
            out.push_unchecked(row);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, ScanStats};
    use std::sync::Arc;

    fn sales(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Int)]);
        Relation::from_rows(
            schema,
            (0..n).map(|i| Row::from_values([i % 13, i])).collect(),
        )
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::on_column("sum", "sale"),
            AggSpec::on_column("avg", "sale"),
            AggSpec::count_star(),
            AggSpec::on_column("min", "sale"),
            AggSpec::on_column("max", "sale"),
        ]
    }

    #[test]
    fn detail_morsels_equal_serial_in_order() {
        let s = sales(500);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let direct = md_join_serial(&b, &s, &specs(), &theta, &ExecContext::new()).unwrap();
        for threads in [1, 2, 8] {
            for morsel in [1, 7, 4096] {
                let ctx = ExecContext::new().with_morsel_size(morsel);
                let out =
                    md_join_morsel(&b, &s, &specs(), &theta, threads, MorselSide::Detail, &ctx)
                        .unwrap();
                assert_eq!(
                    direct.rows(),
                    out.rows(),
                    "threads={threads} morsel={morsel}"
                );
            }
        }
    }

    #[test]
    fn base_morsels_equal_serial_in_order() {
        let s = sales(300);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let direct = md_join_serial(&b, &s, &specs(), &theta, &ExecContext::new()).unwrap();
        for threads in [1, 3, 8] {
            for morsel in [1, 5, 4096] {
                let ctx = ExecContext::new().with_morsel_size(morsel);
                let out = md_join_morsel(&b, &s, &specs(), &theta, threads, MorselSide::Base, &ctx)
                    .unwrap();
                assert_eq!(
                    direct.rows(),
                    out.rows(),
                    "threads={threads} morsel={morsel}"
                );
            }
        }
    }

    #[test]
    fn batched_morsels_equal_serial_on_both_sides() {
        let s = sales(700);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let direct = md_join_serial(&b, &s, &specs(), &theta, &ExecContext::new()).unwrap();
        for side in [MorselSide::Detail, MorselSide::Base] {
            for threads in [1, 4] {
                let stats = Arc::new(ScanStats::new());
                let ctx = ExecContext::new()
                    .with_morsel_size(64)
                    .with_stats(stats.clone());
                let out = md_join_morsel_opts(&b, &s, &specs(), &theta, threads, side, &ctx, true)
                    .unwrap();
                assert_eq!(direct.rows(), out.rows(), "{side:?} threads={threads}");
                assert!(stats.batches() > 0, "{side:?} threads={threads}");
            }
        }
    }

    #[test]
    fn batched_work_accounting_matches_scalar_morsels() {
        let s = sales(900);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let scalar = Arc::new(ScanStats::new());
        let sctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(scalar.clone());
        md_join_morsel(&b, &s, &specs(), &theta, 4, MorselSide::Detail, &sctx).unwrap();
        let batched = Arc::new(ScanStats::new());
        let bctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(batched.clone());
        md_join_morsel_opts(&b, &s, &specs(), &theta, 4, MorselSide::Detail, &bctx, true).unwrap();
        assert_eq!(scalar.scans(), batched.scans());
        assert_eq!(scalar.tuples_scanned(), batched.tuples_scanned());
        assert_eq!(scalar.probes(), batched.probes());
        assert_eq!(scalar.updates(), batched.updates());
        assert_eq!(batched.batches(), 900u64.div_ceil(64));
        assert_eq!(batched.batch_fallbacks(), 0);
        assert_eq!(scalar.batches(), 0);
    }

    #[test]
    fn holistic_aggregates_survive_the_merge() {
        let s = sales(300);
        let b = s.distinct_on(&["cust"]).unwrap();
        let l = [
            AggSpec::on_column("median", "sale"),
            AggSpec::on_column("mode", "cust"),
            AggSpec::on_column("count_distinct", "sale"),
        ];
        let theta = eq(col_b("cust"), col_r("cust"));
        let direct = md_join_serial(&b, &s, &l, &theta, &ExecContext::new()).unwrap();
        let ctx = ExecContext::new().with_morsel_size(16);
        let out = md_join_morsel(&b, &s, &l, &theta, 4, MorselSide::Detail, &ctx).unwrap();
        assert!(direct.same_multiset(&out));
    }

    #[test]
    fn empty_inputs() {
        let s = sales(20);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let l = [AggSpec::count_star()];
        for side in [MorselSide::Base, MorselSide::Detail] {
            let empty_b = Relation::empty(b.schema().clone());
            let out =
                md_join_morsel(&empty_b, &s, &l, &theta, 4, side, &ExecContext::new()).unwrap();
            assert!(out.is_empty());
            let empty_r = Relation::empty(s.schema().clone());
            let out =
                md_join_morsel(&b, &empty_r, &l, &theta, 4, side, &ExecContext::new()).unwrap();
            assert_eq!(out.len(), b.len());
            assert!(out.rows().iter().all(|r| r[1] == Value::Int(0)));
        }
    }

    #[test]
    fn zero_threads_rejected() {
        let s = sales(10);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let err = md_join_morsel(
            &b,
            &s,
            &[AggSpec::count_star()],
            &theta,
            0,
            MorselSide::Auto,
            &ExecContext::new(),
        );
        assert!(matches!(err, Err(CoreError::BadConfig(_))));
    }

    #[test]
    fn worker_stats_recorded_and_merge_counts_add_up() {
        let s = sales(1000);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        md_join_morsel(
            &b,
            &s,
            &[AggSpec::count_star()],
            &theta,
            4,
            MorselSide::Detail,
            &ctx,
        )
        .unwrap();
        let workers = stats.workers();
        assert_eq!(workers.len(), 4);
        let morsels: u64 = workers.iter().map(|w| w.morsels).sum();
        assert_eq!(morsels, 1000u64.div_ceil(64)); // every morsel ran exactly once
        let tuples: u64 = workers.iter().map(|w| w.tuples).sum();
        assert_eq!(tuples, 1000);
        let merges: u64 = workers.iter().map(|w| w.merges).sum();
        assert_eq!(merges, 3); // t workers → t−1 pairwise merges
        assert_eq!(stats.scans(), 1); // detail side: one logical scan of R
    }

    #[test]
    fn base_side_scan_accounting() {
        let s = sales(100);
        let b = s.distinct_on(&["cust"]).unwrap(); // 13 rows
        let theta = eq(col_b("cust"), col_r("cust"));
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(5)
            .with_stats(stats.clone());
        md_join_morsel(
            &b,
            &s,
            &[AggSpec::count_star()],
            &theta,
            2,
            MorselSide::Base,
            &ctx,
        )
        .unwrap();
        assert_eq!(stats.scans(), 3); // ⌈13/5⌉ morsels, one R scan each
        assert_eq!(stats.tuples_scanned(), 300);
    }

    #[test]
    fn auto_side_selection() {
        assert_eq!(choose_side(100, 1000), MorselSide::Detail);
        assert_eq!(choose_side(1000, 1000), MorselSide::Detail);
        assert_eq!(choose_side(4000, 1000), MorselSide::Base);
        assert_eq!(choose_side(10, 0), MorselSide::Base);
        assert_eq!(choose_side(0, 0), MorselSide::Detail);
    }

    #[test]
    fn stealing_rebalances_a_skewed_load() {
        // Zipf-ish skew: every tuple matches base row 0's heavy probe; make
        // worker 0's seeded morsels vastly more expensive by pairing a
        // nested-loop probe with a skewed key distribution, then check the
        // other workers steal.
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Int)]);
        let n = 4000i64;
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                // First half: key 0 (expensive, matches the hot base row);
                // placed contiguously so the seeded split is imbalanced.
                let key = if i < n / 2 { 0 } else { i % 50 };
                Row::from_values([key, i])
            })
            .collect();
        let s = Relation::from_rows(schema, rows);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(16)
            .with_stats(stats.clone());
        let out = md_join_morsel(
            &b,
            &s,
            &[AggSpec::count_star()],
            &theta,
            8,
            MorselSide::Detail,
            &ctx,
        )
        .unwrap();
        assert_eq!(out.len(), b.len());
        let workers = stats.workers();
        let morsels: u64 = workers.iter().map(|w| w.morsels).sum();
        assert_eq!(morsels, 4000u64.div_ceil(16));
    }
}
