//! Cuboid result cache with Algorithm 3.1 incremental maintenance.
//!
//! Canonical MD-join cuboids — `MD(γ_dims(T), T, l, θ_dims)` over a catalog
//! table `T` with the per-dimension equi-match θ — are memoized under their
//! canonicalized `(B-definition, θ, l)` fingerprint. A repeat of the same
//! query is answered from the cached, finalized result relation; a *coarser*
//! query (its dims a subset of a cached cuboid's, its distributive
//! aggregates matched one-to-one by `(function, input)`) is answered by
//! rolling the cached cuboid up with Theorem 4.5's adapted list `l'`
//! (count → sum of counts, sum → sum of sums, min/max → themselves) instead
//! of rescanning the detail table.
//!
//! Validity is pointer-based: each entry holds a [`Weak`] reference to the
//! exact detail `Arc<Relation>` it was computed from, so replacing a table
//! wholesale can never serve stale results — the pointers simply stop
//! matching and the entry decays into a miss. Appends go through
//! [`CuboidCache::on_ingest`]: entries whose aggregate list is distributive
//! (`count`/`count(*)`/`sum`/`min`/`max`) are *maintained* in place by
//! folding the appended batch per Algorithm 3.1 — bit-identical to a
//! from-scratch recompute because the fold order (each group's retained
//! finalized value, then its batch rows in arrival order) is exactly the
//! serial scan's order — while entries with any other aggregate (e.g. `avg`,
//! whose finalized value is not a sufficient retained state) are dropped.
//!
//! Capacity is a byte budget with LRU eviction. When a shared [`MemoryPool`]
//! is attached (the multi-tenant server does this), every resident entry
//! holds a [`PoolGrant`], so cached bytes compete with query admission
//! instead of hiding from the governor.

use crate::context::ExecContext;
use crate::error::Result;
use crate::governor::{MemoryPool, PoolGrant};
use mdj_agg::{AggInput, AggSpec, AggState, Registry};
use mdj_expr::Expr;
use mdj_storage::{IngestOutcome, Relation, Row, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};

/// θ for a canonical cuboid over `dims`: `⋀ᵢ B.dᵢ = R.dᵢ`. The plan layer
/// compares a candidate MD-join's θ against this shape to decide
/// cacheability. Owned-slice convenience over
/// [`basevalues::cuboid_theta`](crate::basevalues::cuboid_theta).
pub fn cuboid_theta(dims: &[String]) -> Expr {
    let refs: Vec<&str> = dims.iter().map(String::as_str).collect();
    crate::basevalues::cuboid_theta(&refs)
}

/// A canonical cacheable cuboid: `MD(γ_dims(table), table, aggs, θ_dims)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CuboidRequest {
    /// Catalog name of the detail table (also the base-derivation input).
    pub table: String,
    /// Grouping dimensions, in base-table column order (order is part of the
    /// identity — it fixes the result schema).
    pub dims: Vec<String>,
    /// The aggregate list `l`, with output aliases resolved.
    pub aggs: Vec<AggSpec>,
}

impl CuboidRequest {
    pub fn new(table: impl Into<String>, dims: Vec<String>, aggs: Vec<AggSpec>) -> Self {
        CuboidRequest {
            table: table.into(),
            dims,
            aggs,
        }
    }

    /// Canonical `(B, θ, l)` fingerprint. Dims and aggs keep their order;
    /// each agg is normalized to `function(input) as output` so spelling
    /// variants that produce the same column land on the same key.
    pub fn fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "T={}|D=", self.table);
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(d);
        }
        s.push_str("|L=");
        for (i, a) in self.aggs.iter().enumerate() {
            if i > 0 {
                s.push(';');
            }
            let _ = match &a.input {
                AggInput::Star => write!(s, "{}(*) as {}", a.function, a.output_name()),
                AggInput::Column(c) => write!(s, "{}({c}) as {}", a.function, a.output_name()),
            };
        }
        s
    }
}

/// What a [`CuboidCache::lookup`] produced.
#[derive(Debug)]
pub enum CacheAnswer {
    /// The exact cuboid was resident; the stored result is returned as-is.
    Exact(Arc<Relation>),
    /// A finer cuboid was resident; the answer was rolled up from it via
    /// Theorem 4.5 without touching the detail table.
    Rollup(Arc<Relation>),
    /// Nothing usable was resident; the caller must execute and may
    /// [`insert`](CuboidCache::insert) the result.
    Miss,
}

/// Ingest outcome for the cache: how many entries were dropped vs folded
/// forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheIngestReport {
    /// Entries invalidated (non-distributive aggs, type surprises, overflow,
    /// or a stale detail pointer).
    pub invalidated: u64,
    /// Entries incrementally maintained (Algorithm 3.1 fold of the batch).
    pub maintained: u64,
}

/// Point-in-time cache figures for observability surfaces (`server stats`,
/// self-tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheMetricsSnapshot {
    pub hits: u64,
    pub rollup_hits: u64,
    pub misses: u64,
    pub invalidations: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub maintained: u64,
    pub entries: u64,
    pub bytes: u64,
    pub budget_bytes: u64,
}

#[derive(Debug)]
struct CacheEntry {
    fingerprint: String,
    request: CuboidRequest,
    /// The exact detail relation this result was computed from (or folded
    /// forward to). Pointer identity is the validity test.
    detail: Weak<Relation>,
    result: Arc<Relation>,
    bytes: u64,
    last_used: u64,
    /// Reservation against the attached [`MemoryPool`], if any.
    grant: Option<PoolGrant>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<CacheEntry>,
    bytes: u64,
    tick: u64,
}

/// The cuboid cache. One per [`EngineConfig`](crate::EngineConfig); shared
/// (via `Arc`) by every per-query snapshot of the engine, so repeated
/// queries hit across sessions.
#[derive(Debug)]
pub struct CuboidCache {
    budget: u64,
    pool: OnceLock<Arc<MemoryPool>>,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    rollup_hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    maintained: AtomicU64,
}

impl CuboidCache {
    /// A cache holding at most `budget_bytes` of finalized results.
    pub fn new(budget_bytes: usize) -> Self {
        CuboidCache {
            budget: budget_bytes as u64,
            pool: OnceLock::new(),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            rollup_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            maintained: AtomicU64::new(0),
        }
    }

    /// Charge resident entries against a shared pool from now on. Existing
    /// entries are not retroactively charged; first attach wins.
    pub fn attach_pool(&self, pool: Arc<MemoryPool>) {
        let _ = self.pool.set(pool);
    }

    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().entries.is_empty()
    }

    /// Bytes of finalized results currently resident.
    pub fn bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Drop every entry (returning all pool grants).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.entries.clear();
        inner.bytes = 0;
    }

    pub fn metrics(&self) -> CacheMetricsSnapshot {
        let (entries, bytes) = {
            let inner = self.lock();
            (inner.entries.len() as u64, inner.bytes)
        };
        CacheMetricsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            rollup_hits: self.rollup_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            maintained: self.maintained.load(Ordering::Relaxed),
            entries,
            bytes,
            budget_bytes: self.budget,
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Answer `req` from the cache if possible. `detail` must be the
    /// resolved catalog relation the query would scan — entries computed
    /// from any other version of the table cannot match.
    pub fn lookup(
        &self,
        req: &CuboidRequest,
        detail: &Arc<Relation>,
        ctx: &ExecContext,
    ) -> Result<CacheAnswer> {
        let fingerprint = req.fingerprint();
        // Phase 1 (under the lock): find an exact entry, or clone out the
        // best (smallest) rollup candidate. The Theorem 4.5 join itself runs
        // outside the lock — it can be slow and polls the governor.
        let candidate: Option<(Arc<Relation>, Vec<AggSpec>)> = {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner
                .entries
                .iter_mut()
                .find(|e| e.fingerprint == fingerprint && weak_matches(&e.detail, detail))
            {
                e.last_used = tick;
                let result = e.result.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(CacheAnswer::Exact(result));
            }
            let mut best: Option<usize> = None;
            for (i, e) in inner.entries.iter().enumerate() {
                if e.request.table == req.table
                    && weak_matches(&e.detail, detail)
                    && rollup_serves(req, &e.request, ctx.registry())
                {
                    let better = match best {
                        Some(j) => e.result.len() < inner.entries[j].result.len(),
                        None => true,
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
            best.map(|i| {
                inner.entries[i].last_used = tick;
                (
                    inner.entries[i].result.clone(),
                    inner.entries[i].request.aggs.clone(),
                )
            })
        };
        match candidate {
            Some((finer, finer_aggs)) => {
                let rolled = Arc::new(roll_up(req, &finer, &finer_aggs, ctx)?);
                self.rollup_hits.fetch_add(1, Ordering::Relaxed);
                // The rolled-up cuboid becomes resident under its own
                // request: a repeat of this coarser query is then an exact
                // hit instead of re-running the Theorem 4.5 join each time.
                self.insert(req, detail, rolled.clone());
                Ok(CacheAnswer::Rollup(rolled))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok(CacheAnswer::Miss)
            }
        }
    }

    /// Make `result` resident for `req` (replacing any same-fingerprint
    /// entry). Oversized results and pool-reservation failures degrade to a
    /// silent no-op — caching is an optimization, never an error source.
    pub fn insert(&self, req: &CuboidRequest, detail: &Arc<Relation>, result: Arc<Relation>) {
        let bytes = approx_relation_bytes(&result);
        if bytes > self.budget {
            return;
        }
        let fingerprint = req.fingerprint();
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(i) = inner
            .entries
            .iter()
            .position(|e| e.fingerprint == fingerprint)
        {
            let old = inner.entries.swap_remove(i);
            inner.bytes -= old.bytes;
        }
        self.evict_to_fit(&mut inner, bytes);
        let grant = match self.pool.get() {
            Some(pool) => match pool.try_reserve(bytes) {
                Ok(g) => Some(g),
                // The pool is tighter than our own budget right now; skip
                // caching rather than compete with query admission.
                Err(_) => return,
            },
            None => None,
        };
        inner.bytes += bytes;
        inner.entries.push(CacheEntry {
            fingerprint,
            request: req.clone(),
            detail: Arc::downgrade(detail),
            result,
            bytes,
            last_used: tick,
            grant,
        });
        drop(inner);
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    fn evict_to_fit(&self, inner: &mut Inner, incoming: u64) {
        while inner.bytes + incoming > self.budget && !inner.entries.is_empty() {
            let lru = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("non-empty entries have a minimum");
            let evicted = inner.entries.swap_remove(lru);
            inner.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fold an ingest batch into the resident cuboids of the grown table.
    ///
    /// Distributive entries (`count`/`count(*)`/`sum`/`min`/`max`) are
    /// maintained per Algorithm 3.1 and re-pointed at the grown relation;
    /// everything else for this table is dropped. Any surprise mid-fold —
    /// typed overflow, a type mismatch, a vanished column — drops the entry
    /// instead of risking a wrong cached answer.
    pub fn on_ingest(&self, outcome: &IngestOutcome, registry: &Registry) -> CacheIngestReport {
        let mut report = CacheIngestReport::default();
        let mut inner = self.lock();
        let mut i = 0;
        while i < inner.entries.len() {
            if inner.entries[i].request.table != outcome.table {
                i += 1;
                continue;
            }
            let entry = &inner.entries[i];
            let maintained = if weak_matches(&entry.detail, &outcome.old) {
                maintain_entry(entry, outcome, registry)
            } else {
                // Pointed at neither the pre- nor post-ingest relation: a
                // leftover from an older replace. Never servable again.
                None
            };
            match maintained {
                Some(new_result) => {
                    let entry = &mut inner.entries[i];
                    let new_bytes = approx_relation_bytes(&new_result);
                    let regrant = match (self.pool.get(), entry.grant.is_some()) {
                        (Some(pool), true) => match pool.try_reserve(new_bytes) {
                            Ok(g) => Some(Some(g)),
                            Err(_) => None, // pool too tight → drop below
                        },
                        _ => Some(entry.grant.take()),
                    };
                    match regrant {
                        Some(grant) if new_bytes <= self.budget => {
                            let old_bytes = entry.bytes;
                            entry.bytes = new_bytes;
                            entry.result = new_result;
                            entry.detail = Arc::downgrade(&outcome.new);
                            entry.grant = grant;
                            inner.bytes = inner.bytes - old_bytes + new_bytes;
                            report.maintained += 1;
                            self.maintained.fetch_add(1, Ordering::Relaxed);
                            i += 1;
                        }
                        _ => {
                            let dropped = inner.entries.swap_remove(i);
                            inner.bytes -= dropped.bytes;
                            report.invalidated += 1;
                            self.invalidations.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                None => {
                    let dropped = inner.entries.swap_remove(i);
                    inner.bytes -= dropped.bytes;
                    report.invalidated += 1;
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        report
    }
}

fn weak_matches(weak: &Weak<Relation>, arc: &Arc<Relation>) -> bool {
    weak.upgrade().is_some_and(|r| Arc::ptr_eq(&r, arc))
}

/// Estimated resident bytes of a finalized result relation.
fn approx_relation_bytes(rel: &Relation) -> u64 {
    let mut bytes = (rel.len() * std::mem::size_of::<Row>()) as u64;
    for row in rel.iter() {
        bytes += std::mem::size_of_val(row.values()) as u64;
        for v in row.values() {
            if let Value::Str(s) = v {
                bytes += s.len() as u64;
            }
        }
    }
    bytes
}

/// Can `req` be answered by rolling up the cached `entry` cuboid?
/// Requires: `req.dims ⊆ entry.dims` (as sets), every `req` aggregate
/// rollupable (Theorem 4.5) and matched in the entry by `(function, input)`.
fn rollup_serves(req: &CuboidRequest, entry: &CuboidRequest, registry: &Registry) -> bool {
    req.dims.iter().all(|d| entry.dims.contains(d))
        && !req.aggs.is_empty()
        && req.aggs.iter().all(|q| {
            let rollupable = matches!(
                registry.get(&q.function).map(|a| a.rollup_name()),
                Ok(Some(_))
            );
            rollupable
                && entry
                    .aggs
                    .iter()
                    .any(|e| e.function == q.function && e.input == q.input)
        })
}

/// Theorem 4.5: compute the coarser cuboid `req` from the finer cached
/// result, by MD-joining the finer cuboid onto its own distinct `req.dims`
/// with the adapted aggregate list `l'` reading the finer output columns.
fn roll_up(
    req: &CuboidRequest,
    finer: &Arc<Relation>,
    finer_aggs: &[AggSpec],
    ctx: &ExecContext,
) -> Result<Relation> {
    let dims: Vec<&str> = req.dims.iter().map(String::as_str).collect();
    let base = crate::basevalues::group_by(finer, &dims)?;
    let mut adapted = Vec::with_capacity(req.aggs.len());
    for q in &req.aggs {
        let e = finer_aggs
            .iter()
            .find(|e| e.function == q.function && e.input == q.input)
            .ok_or_else(|| {
                crate::error::CoreError::Internal(
                    "rollup candidate lost its matching aggregate".into(),
                )
            })?;
        let rollup = ctx
            .registry()
            .get(&q.function)?
            .rollup_name()
            .ok_or_else(|| mdj_agg::AggError::NotRollupable(q.function.clone()))?;
        adapted.push(AggSpec::on_column(rollup, e.output_name()).with_alias(q.output_name()));
    }
    crate::builder::MdJoin::new(&base, finer)
        .aggs(&adapted)
        .theta(cuboid_theta(&req.dims))
        .strategy(crate::builder::ExecStrategy::Serial)
        .run(ctx)
}

/// Per-aggregate maintenance strategy for the ingest fold.
enum Slot {
    /// `count` / `count(*)`: a batch delta added to the retained `Int`
    /// count with overflow checking. (`input = None` ⇔ `count(*)`, which
    /// counts NULLs too.)
    Count { input: Option<usize>, delta: i64 },
    /// `sum` / `min` / `max`: a state seeded with the retained finalized
    /// value (for these, finalized output *is* sufficient state), then fed
    /// the group's batch values in arrival order — the exact fold order a
    /// serial recompute would use.
    Seeded {
        input: usize,
        state: Box<dyn AggState>,
    },
}

enum SlotKind {
    Count { input: Option<usize> },
    Seeded { input: usize },
}

/// Fold `outcome.appended` into `entry.result` per Algorithm 3.1. Returns
/// the grown result, or `None` if the entry cannot be maintained safely.
fn maintain_entry(
    entry: &CacheEntry,
    outcome: &IngestOutcome,
    registry: &Registry,
) -> Option<Arc<Relation>> {
    let req = &entry.request;
    let schema = outcome.new.schema();
    let dim_names: Vec<&str> = req.dims.iter().map(String::as_str).collect();
    let dim_idx = schema.indices_of(&dim_names).ok()?;
    // Resolve each aggregate's strategy up front; any non-distributive or
    // unresolvable spec makes the whole entry unmaintainable.
    let mut kinds = Vec::with_capacity(req.aggs.len());
    for spec in &req.aggs {
        let distributive = matches!(
            registry.get(&spec.function).map(|a| a.rollup_name()),
            Ok(Some(_))
        );
        if !distributive {
            return None;
        }
        let input = match spec.input.column() {
            Some(c) => Some(schema.index_of(c).ok()?),
            None => None,
        };
        match spec.function.as_str() {
            "count" | "count(*)" => kinds.push(SlotKind::Count { input }),
            "sum" | "min" | "max" => kinds.push(SlotKind::Seeded { input: input? }),
            // A distributive UDAF we don't know to be seedable from its
            // finalized value: refuse rather than guess.
            _ => return None,
        }
    }
    let ndims = req.dims.len();
    // Existing groups by their dim prefix (the result's first `ndims`
    // columns, in request order).
    let mut groups: HashMap<Vec<Value>, usize> = HashMap::with_capacity(entry.result.len());
    for (i, row) in entry.result.iter().enumerate() {
        groups.insert(row.values()[..ndims].to_vec(), i);
    }
    // Fold the batch in arrival order. `touched` maps group key → slot set;
    // `order` keeps first-touch order for groups new to the base (a serial
    // recompute appends them in exactly this order).
    let mut touched: HashMap<Vec<Value>, (Option<usize>, Vec<Slot>)> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in &outcome.appended {
        let key: Vec<Value> = dim_idx.iter().map(|&i| row[i].clone()).collect();
        if !touched.contains_key(&key) {
            let target = groups.get(&key).copied();
            let mut slots = Vec::with_capacity(kinds.len());
            for (j, kind) in kinds.iter().enumerate() {
                let slot = match kind {
                    SlotKind::Count { input } => Slot::Count {
                        input: *input,
                        delta: 0,
                    },
                    SlotKind::Seeded { input } => {
                        let mut state = registry.get(&req.aggs[j].function).ok()?.init();
                        if let Some(i) = target {
                            // Seed with the retained finalized value; NULL
                            // (empty group so far) seeds nothing, matching
                            // a fresh state.
                            state.update(&entry.result.rows()[i][ndims + j]).ok()?;
                        }
                        Slot::Seeded {
                            input: *input,
                            state,
                        }
                    }
                };
                slots.push(slot);
            }
            if target.is_none() {
                order.push(key.clone());
            }
            touched.insert(key.clone(), (target, slots));
        }
        let (_, slots) = touched.get_mut(&key).expect("inserted above");
        for slot in slots.iter_mut() {
            match slot {
                Slot::Count { input, delta } => {
                    let counts = match input {
                        Some(i) => row[*i] != Value::Null,
                        None => true,
                    };
                    if counts {
                        *delta += 1;
                    }
                }
                Slot::Seeded { input, state } => state.update(&row[*input]).ok()?,
            }
        }
    }
    // Materialize: retained rows in place (touched ones get their aggregate
    // columns overwritten), then the new groups in first-touch order.
    let mut rows: Vec<Row> = entry.result.rows().to_vec();
    for (key, (target, slots)) in &touched {
        match target {
            Some(i) => {
                let vals = rows[*i].values_mut();
                for (j, slot) in slots.iter().enumerate() {
                    vals[ndims + j] = finalize_slot(slot, Some(&vals[ndims + j]))?;
                }
            }
            None => {
                let _ = key; // appended below, in order
            }
        }
    }
    for key in &order {
        let (_, slots) = touched.get(key).expect("ordered keys are touched");
        let mut vals = key.clone();
        for slot in slots {
            vals.push(finalize_slot(slot, None)?);
        }
        rows.push(Row::new(vals));
    }
    Some(Arc::new(Relation::from_rows(
        entry.result.schema().clone(),
        rows,
    )))
}

/// Final value of one maintained aggregate column. `retained` is the
/// pre-ingest finalized value for existing groups (`None` for new groups).
fn finalize_slot(slot: &Slot, retained: Option<&Value>) -> Option<Value> {
    match slot {
        Slot::Count { delta, .. } => {
            let old = match retained {
                Some(Value::Int(n)) => *n,
                None => 0,
                // A count column that isn't Int means the entry predates a
                // semantics change; refuse.
                Some(_) => return None,
            };
            old.checked_add(*delta).map(Value::Int)
        }
        Slot::Seeded { state, .. } => Some(state.finalize()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basevalues;
    use crate::builder::{ExecStrategy, MdJoin};
    use mdj_storage::{Catalog, DataType, Schema};

    fn sales_rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::from_values(vec![
                    Value::Int(i % 3),
                    Value::Int(i % 4),
                    Value::str(if i % 2 == 0 { "NY" } else { "NJ" }),
                    Value::Int(i * 7),
                ])
            })
            .collect()
    }

    fn sales_schema() -> Schema {
        Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Int),
        ])
    }

    fn sales(n: i64) -> Relation {
        Relation::from_rows(sales_schema(), sales_rows(n))
    }

    fn cuboid(rel: &Relation, dims: &[&str], aggs: &[AggSpec]) -> Relation {
        let b = basevalues::group_by(rel, dims).unwrap();
        let dims: Vec<String> = dims.iter().map(|s| s.to_string()).collect();
        MdJoin::new(&b, rel)
            .aggs(aggs)
            .theta(cuboid_theta(&dims))
            .strategy(ExecStrategy::Serial)
            .run(&ExecContext::new())
            .unwrap()
    }

    fn req(dims: &[&str], aggs: &[AggSpec]) -> CuboidRequest {
        CuboidRequest::new(
            "Sales",
            dims.iter().map(|s| s.to_string()).collect(),
            aggs.to_vec(),
        )
    }

    #[test]
    fn exact_hit_round_trips_the_stored_relation() {
        let detail = Arc::new(sales(60));
        let aggs = vec![AggSpec::on_column("sum", "sale"), AggSpec::count_star()];
        let result = Arc::new(cuboid(&detail, &["cust"], &aggs));
        let cache = CuboidCache::new(1 << 20);
        let r = req(&["cust"], &aggs);
        let ctx = ExecContext::new();
        assert!(matches!(
            cache.lookup(&r, &detail, &ctx).unwrap(),
            CacheAnswer::Miss
        ));
        cache.insert(&r, &detail, result.clone());
        match cache.lookup(&r, &detail, &ctx).unwrap() {
            CacheAnswer::Exact(got) => assert!(Arc::ptr_eq(&got, &result)),
            other => panic!("expected exact hit, got {other:?}"),
        }
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses, m.insertions), (1, 1, 1));
        assert!(m.bytes > 0 && m.entries == 1);
    }

    #[test]
    fn detail_pointer_mismatch_is_a_miss() {
        let detail = Arc::new(sales(60));
        let aggs = vec![AggSpec::count_star()];
        let result = Arc::new(cuboid(&detail, &["cust"], &aggs));
        let cache = CuboidCache::new(1 << 20);
        let r = req(&["cust"], &aggs);
        cache.insert(&r, &detail, result);
        // Same data, different allocation: must not serve.
        let other = Arc::new(sales(60));
        assert!(matches!(
            cache.lookup(&r, &other, &ExecContext::new()).unwrap(),
            CacheAnswer::Miss
        ));
    }

    #[test]
    fn rollup_hit_matches_direct_computation() {
        let detail = Arc::new(sales(120));
        let aggs = vec![
            AggSpec::on_column("sum", "sale").with_alias("total"),
            AggSpec::count_star().with_alias("n"),
            AggSpec::on_column("min", "sale"),
            AggSpec::on_column("max", "sale"),
        ];
        let fine = Arc::new(cuboid(&detail, &["cust", "month"], &aggs));
        let cache = CuboidCache::new(1 << 20);
        cache.insert(&req(&["cust", "month"], &aggs), &detail, fine);
        // Coarser query: same aggs (different aliases allowed), fewer dims.
        let coarse_aggs = vec![
            AggSpec::on_column("sum", "sale"),
            AggSpec::count_star(),
            AggSpec::on_column("min", "sale"),
            AggSpec::on_column("max", "sale"),
        ];
        let r = req(&["cust"], &coarse_aggs);
        let ctx = ExecContext::new();
        let rolled = match cache.lookup(&r, &detail, &ctx).unwrap() {
            CacheAnswer::Rollup(rel) => rel,
            other => panic!("expected rollup hit, got {other:?}"),
        };
        let direct = cuboid(&detail, &["cust"], &coarse_aggs);
        assert_eq!(direct.rows(), rolled.rows());
        assert_eq!(direct.schema().names(), rolled.schema().names());
        assert_eq!(cache.metrics().rollup_hits, 1);
    }

    #[test]
    fn avg_never_serves_rollups() {
        let detail = Arc::new(sales(60));
        let aggs = vec![AggSpec::on_column("avg", "sale")];
        let fine = Arc::new(cuboid(&detail, &["cust", "month"], &aggs));
        let cache = CuboidCache::new(1 << 20);
        cache.insert(&req(&["cust", "month"], &aggs), &detail, fine);
        let ctx = ExecContext::new();
        assert!(matches!(
            cache.lookup(&req(&["cust"], &aggs), &detail, &ctx).unwrap(),
            CacheAnswer::Miss
        ));
        // But the exact shape still hits.
        assert!(matches!(
            cache
                .lookup(&req(&["cust", "month"], &aggs), &detail, &ctx)
                .unwrap(),
            CacheAnswer::Exact(_)
        ));
    }

    #[test]
    fn ingest_maintains_distributive_entries_bit_identically() {
        let mut catalog = Catalog::new();
        catalog.register("Sales", sales(60));
        let aggs = vec![
            AggSpec::on_column("sum", "sale").with_alias("total"),
            AggSpec::count_star().with_alias("n"),
            AggSpec::on_column("min", "sale"),
            AggSpec::on_column("max", "sale"),
            AggSpec::on_column("count", "sale").with_alias("nn"),
        ];
        let detail = catalog.get("Sales").unwrap();
        let result = Arc::new(cuboid(&detail, &["cust", "month"], &aggs));
        let cache = CuboidCache::new(1 << 20);
        let r = req(&["cust", "month"], &aggs);
        cache.insert(&r, &detail, result);
        // Ingest a batch that extends existing groups AND creates new ones
        // (cust=7 never appeared).
        let mut batch = sales_rows(10);
        batch.push(Row::from_values(vec![
            Value::Int(7),
            Value::Int(0),
            Value::str("CT"),
            Value::Int(-5),
        ]));
        let outcome = catalog.ingest("Sales", batch).unwrap();
        let report = cache.on_ingest(&outcome, &Registry::standard());
        assert_eq!((report.maintained, report.invalidated), (1, 0));
        // The maintained entry now answers for the grown relation, exactly.
        let ctx = ExecContext::new();
        let got = match cache.lookup(&r, &outcome.new, &ctx).unwrap() {
            CacheAnswer::Exact(rel) => rel,
            other => panic!("expected exact hit after maintenance, got {other:?}"),
        };
        let recomputed = cuboid(&outcome.new, &["cust", "month"], &aggs);
        assert_eq!(recomputed.rows(), got.rows());
        // And the pre-ingest pointer no longer matches.
        assert!(matches!(
            cache.lookup(&r, &outcome.old, &ctx).unwrap(),
            CacheAnswer::Miss
        ));
    }

    #[test]
    fn ingest_drops_non_distributive_entries() {
        let mut catalog = Catalog::new();
        catalog.register("Sales", sales(40));
        let aggs = vec![AggSpec::on_column("avg", "sale")];
        let detail = catalog.get("Sales").unwrap();
        let result = Arc::new(cuboid(&detail, &["cust"], &aggs));
        let cache = CuboidCache::new(1 << 20);
        cache.insert(&req(&["cust"], &aggs), &detail, result);
        let outcome = catalog.ingest("Sales", sales_rows(5)).unwrap();
        let report = cache.on_ingest(&outcome, &Registry::standard());
        assert_eq!((report.maintained, report.invalidated), (0, 1));
        assert!(cache.is_empty());
        assert_eq!(cache.metrics().invalidations, 1);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let detail = Arc::new(sales(200));
        let aggs = vec![AggSpec::count_star()];
        let big = Arc::new(cuboid(&detail, &["cust", "month"], &aggs));
        let budget = approx_relation_bytes(&big) + 64; // fits ~one entry
        let cache = CuboidCache::new(budget as usize);
        cache.insert(&req(&["cust", "month"], &aggs), &detail, big);
        assert_eq!(cache.len(), 1);
        let second = Arc::new(cuboid(&detail, &["cust"], &aggs));
        cache.insert(&req(&["cust"], &aggs), &detail, second);
        // First entry was evicted to make room.
        assert_eq!(cache.len(), 1);
        assert!(cache.metrics().evictions >= 1);
        assert!(cache.bytes() <= budget);
        assert!(matches!(
            cache
                .lookup(
                    &req(&["cust", "month"], &aggs),
                    &detail,
                    &ExecContext::new()
                )
                .unwrap(),
            CacheAnswer::Miss
        ));
    }

    #[test]
    fn pool_grants_charge_and_release() {
        let detail = Arc::new(sales(100));
        let aggs = vec![AggSpec::count_star()];
        let result = Arc::new(cuboid(&detail, &["cust"], &aggs));
        let cache = CuboidCache::new(1 << 20);
        let pool = Arc::new(MemoryPool::new(1 << 20));
        cache.attach_pool(pool.clone());
        cache.insert(&req(&["cust"], &aggs), &detail, result);
        assert_eq!(pool.reserved(), cache.bytes());
        cache.clear();
        assert_eq!(pool.reserved(), 0);
    }

    #[test]
    fn fingerprints_distinguish_dims_aggs_and_aliases() {
        let a = req(&["cust"], &[AggSpec::on_column("sum", "sale")]);
        let b = req(&["month"], &[AggSpec::on_column("sum", "sale")]);
        let c = req(
            &["cust"],
            &[AggSpec::on_column("sum", "sale").with_alias("t")],
        );
        let d = req(&["cust"], &[AggSpec::count_star()]);
        let prints = [
            a.fingerprint(),
            b.fingerprint(),
            c.fingerprint(),
            d.fingerprint(),
        ];
        for (i, x) in prints.iter().enumerate() {
            for y in &prints[i + 1..] {
                assert_ne!(x, y);
            }
        }
        assert_eq!(
            a.fingerprint(),
            req(&["cust"], &[AggSpec::on_column("sum", "sale")]).fingerprint()
        );
    }
}
