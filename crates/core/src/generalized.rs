//! The generalized MD-join of Section 4.3:
//! `MD(B, R, (l₁, …, l_k), (θ₁, …, θ_k))`.
//!
//! A series of MD-joins whose θs are mutually independent (no θ references a
//! column produced by an earlier MD-join in the series) and whose detail
//! relation is the same can be coalesced into one operator that defines, for
//! each base tuple, `k` subsets of `R` — and therefore evaluates in a single
//! scan instead of `k` scans. The scheduling that decides *which* MD-joins
//! coalesce lives in `mdj-algebra`; this module holds the single-scan
//! evaluators: [`multi`], the per-tuple interpreter, and [`multi_vectorized`],
//! the fused batch executor that shares each columnar chunk across all `k`
//! condition sets (one transposition per batch, not per set) and applies each
//! set's aggregates through the typed kernels. A set whose shapes don't batch
//! delegates only itself to the scalar interpreter — per-set, per-batch —
//! with per-set counters in `ScanStats` (`gen_sets` / `gen_set_fallbacks`).

use crate::context::{ExecContext, CANCEL_CHECK_INTERVAL};
use crate::error::{CoreError, Result};
use crate::governor::{self, GrowthMeter, MemCharge};
use crate::mdjoin::{bind_aggs, metered_flags, BoundAgg};
use crate::probe::ProbePlan;
use crate::vectorized::{apply_batch, BatchProbe, ColStates, Scoreboard, MAX_BATCH};
use mdj_agg::{AggSpec, AggState};
use mdj_expr::Expr;
use mdj_storage::{ColumnarChunk, Relation, Row, Schema, Value};

/// One (θ, l) block of a generalized MD-join.
#[derive(Debug, Clone)]
pub struct Block {
    pub theta: Expr,
    pub aggs: Vec<AggSpec>,
}

impl Block {
    pub fn new(theta: Expr, aggs: Vec<AggSpec>) -> Self {
        Block { theta, aggs }
    }
}

/// The output schema of the generalized MD-join: `B`'s columns, then block
/// 1's aggregate columns, then block 2's, etc. Fails on colliding names.
pub(crate) fn multi_output_schema(
    b_schema: &Schema,
    r_schema: &Schema,
    blocks: &[Block],
    registry: &mdj_agg::Registry,
) -> Result<Schema> {
    let mut fields = b_schema.fields().to_vec();
    for blk in blocks {
        let bound = bind_aggs(&blk.aggs, r_schema, registry)?;
        for ba in bound {
            if fields.iter().any(|f| f.name == ba.output.name) {
                return Err(CoreError::DuplicateColumn(ba.output.name));
            }
            fields.push(ba.output);
        }
    }
    Ok(Schema::new(fields))
}

/// Bind every block, build its probe plan, and reject colliding output
/// names — the shared prelude of both single-scan evaluators.
fn bind_blocks(
    b: &Relation,
    r: &Relation,
    blocks: &[Block],
    ctx: &ExecContext,
) -> Result<Vec<(ProbePlan, Vec<BoundAgg>)>> {
    if blocks.is_empty() {
        return Err(CoreError::BadConfig(
            "generalized MD-join needs at least one block".into(),
        ));
    }
    let mut bound_blocks: Vec<(ProbePlan, Vec<BoundAgg>)> = Vec::with_capacity(blocks.len());
    for blk in blocks {
        let bound = bind_aggs(&blk.aggs, r.schema(), ctx.registry())?;
        let plan =
            ProbePlan::build_opts(b, r.schema(), &blk.theta, ctx.strategy(), ctx.prefilter())?;
        bound_blocks.push((plan, bound));
    }
    let mut names: Vec<String> = b.schema().fields().iter().map(|f| f.name.clone()).collect();
    for (_, bound) in &bound_blocks {
        for ba in bound {
            if names.iter().any(|n| n == &ba.output.name) {
                return Err(CoreError::DuplicateColumn(ba.output.name.clone()));
            }
            names.push(ba.output.name.clone());
        }
    }
    Ok(bound_blocks)
}

/// Governor accounting shared by both evaluators: the state cube holds one
/// state per (block agg × base row), plus one probe index per hash-planned
/// block.
fn charge_blocks(
    b: &Relation,
    bound_blocks: &[(ProbePlan, Vec<BoundAgg>)],
    ctx: &ExecContext,
) -> Result<(MemCharge, MemCharge)> {
    let total_aggs: usize = bound_blocks.iter().map(|(_, bound)| bound.len()).sum();
    let state_charge = MemCharge::try_new(ctx, governor::state_bytes(b.len(), total_aggs))?;
    let hash_blocks = bound_blocks.iter().filter(|(p, _)| p.is_hash()).count();
    let index_charge = MemCharge::try_new(
        ctx,
        governor::index_bytes(b.len()).saturating_mul(hash_blocks),
    )?;
    Ok((state_charge, index_charge))
}

/// Assemble the output relation: `B`'s columns, then each block's finalized
/// aggregate columns in block order.
fn assemble_output(
    b: &Relation,
    bound_blocks: &[(ProbePlan, Vec<BoundAgg>)],
    finalize: impl Fn(usize, &mut Vec<Value>),
) -> Relation {
    let mut fields = b.schema().fields().to_vec();
    for (_, bound) in bound_blocks {
        fields.extend(bound.iter().map(|ba| ba.output.clone()));
    }
    let mut out = Relation::empty(Schema::new(fields));
    for (i, row) in b.iter().enumerate() {
        let mut vals = row.values().to_vec();
        finalize(i, &mut vals);
        out.push_unchecked(Row::new(vals));
    }
    out
}

/// Evaluate a generalized MD-join in one scan of `R`.
///
/// Output schema: `B`'s columns, then block 1's aggregate columns, then
/// block 2's, etc. Blocks may not produce colliding column names.
pub(crate) fn multi(
    b: &Relation,
    r: &Relation,
    blocks: &[Block],
    ctx: &ExecContext,
) -> Result<Relation> {
    ctx.check_interrupt()?;
    let bound_blocks = bind_blocks(b, r, blocks, ctx)?;
    let (_state_charge, _index_charge) = charge_blocks(b, &bound_blocks, ctx)?;

    // states[block][base_row][agg]
    let mut states: Vec<Vec<Vec<Box<dyn AggState>>>> = bound_blocks
        .iter()
        .map(|(_, bound)| {
            b.iter()
                .map(|_| bound.iter().map(|ba| ba.agg.init()).collect())
                .collect()
        })
        .collect();

    ctx.record_scan(r.len() as u64);
    let mut matches: Vec<usize> = Vec::new();
    let mut key_scratch: Vec<mdj_storage::Value> = Vec::new();
    for (ti, t) in r.iter().enumerate() {
        if ti % CANCEL_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        for (bi, (plan, bound)) in bound_blocks.iter().enumerate() {
            plan.matches(b, t.values(), ctx, &mut matches, &mut key_scratch)?;
            if matches.is_empty() {
                continue;
            }
            ctx.record_updates((matches.len() * bound.len()) as u64);
            let block_states = &mut states[bi];
            for &row_id in &matches {
                for (j, ba) in bound.iter().enumerate() {
                    let v = match ba.input_col {
                        Some(c) => &t[c],
                        None => &Value::Null,
                    };
                    block_states[row_id][j].update(v)?;
                }
            }
        }
    }

    Ok(assemble_output(b, &bound_blocks, |i, vals| {
        for block_states in &states {
            vals.extend(block_states[i].iter().map(|s| s.finalize()));
        }
    }))
}

/// Evaluate a generalized MD-join in one *batched* scan of `R`: the fused
/// k-θ executor.
///
/// Each batch of `ctx.morsel_size` tuples is transposed into one
/// [`ColumnarChunk`] covering the union of every block's needed columns plus
/// all kernel-aggregate inputs, then every block's [`BatchProbe`] runs over
/// that shared chunk — the transposition cost is paid once per batch instead
/// of once per (batch, set), which is where the fused executor beats a
/// sequence of `k` single vectorized MD-joins. Blocks that cannot batch a
/// step fall back per set, per batch, exactly like the single-join executor
/// (same `ScanStats` fallback reasons); a block that never fell back across
/// the whole query keeps `gen_set_fallbacks` at zero.
///
/// Output, f64 accumulation order, and scan/probe/update accounting are
/// identical to [`multi`] by construction.
pub(crate) fn multi_vectorized(
    b: &Relation,
    r: &Relation,
    blocks: &[Block],
    ctx: &ExecContext,
) -> Result<Relation> {
    ctx.check_interrupt()?;
    let bound_blocks = bind_blocks(b, r, blocks, ctx)?;
    let (_state_charge, _index_charge) = charge_blocks(b, &bound_blocks, ctx)?;

    let probes: Vec<BatchProbe> = bound_blocks
        .iter()
        .map(|(plan, _)| BatchProbe::new(plan, b))
        .collect();
    // cols[block][agg] — typed kernel columns where available.
    let mut cols: Vec<Vec<ColStates>> = bound_blocks
        .iter()
        .map(|(_, bound)| {
            bound
                .iter()
                .map(|ba| ColStates::init(ba, b.len()))
                .collect()
        })
        .collect();
    let mut meter = GrowthMeter::new(ctx);
    let metered: Vec<Vec<bool>> = bound_blocks
        .iter()
        .map(|(_, bound)| metered_flags(bound, &meter))
        .collect();

    // One needed-column union across every block's probe and all
    // kernel-aggregate inputs: the chunk is transposed once per batch and
    // shared by all k sets.
    let mut needed = vec![false; r.schema().fields().len()];
    for (bi, probe) in probes.iter().enumerate() {
        probe.collect_needed(&mut needed);
        for (j, ba) in bound_blocks[bi].1.iter().enumerate() {
            if let (ColStates::Kernel(_), Some(c)) = (&cols[bi][j], ba.input_col) {
                needed[c] = true;
            }
        }
    }

    ctx.record_scan(r.len() as u64);
    let rows = r.rows();
    let batch_rows = ctx.morsel_size().clamp(1, MAX_BATCH);
    let mut pairs: Vec<(u32, usize)> = Vec::new();
    let mut board = Scoreboard::new(b.len());
    let mut set_fell_back = vec![false; bound_blocks.len()];
    let mut start = 0usize;
    while start < rows.len() {
        ctx.check_interrupt()?;
        let len = batch_rows.min(rows.len() - start);
        let chunk = ColumnarChunk::from_rows(rows, start, len, &needed);
        for (bi, (_, bound)) in bound_blocks.iter().enumerate() {
            pairs.clear();
            let fell_back = probes[bi].matches_batch(&chunk, rows, ctx, &mut pairs)?;
            ctx.record_batch();
            if fell_back {
                ctx.record_batch_fallback();
                set_fell_back[bi] = true;
            }
            if pairs.is_empty() {
                continue;
            }
            ctx.record_updates((pairs.len() * bound.len()) as u64);
            let groups = board.group(&pairs);
            for (j, ba) in bound.iter().enumerate() {
                apply_batch(
                    &mut cols[bi][j],
                    ba,
                    groups,
                    &chunk,
                    rows,
                    start,
                    metered[bi][j],
                    &mut meter,
                    ctx,
                )?;
            }
        }
        start += len;
    }
    for &fell in &set_fell_back {
        ctx.record_gen_set(fell);
    }

    Ok(assemble_output(b, &bound_blocks, |i, vals| {
        for block_cols in &cols {
            vals.extend(block_cols.iter().map(|col| col.finalize(i)));
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdjoin::md_join_serial;
    use mdj_expr::builder::*;
    use mdj_storage::DataType;

    fn sales() -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::str("NY"), Value::Float(10.0)]),
                Row::from_values(vec![Value::Int(1), Value::str("NJ"), Value::Float(20.0)]),
                Row::from_values(vec![Value::Int(1), Value::str("CT"), Value::Float(30.0)]),
                Row::from_values(vec![Value::Int(2), Value::str("NY"), Value::Float(40.0)]),
                Row::from_values(vec![Value::Int(2), Value::str("PA"), Value::Float(50.0)]),
            ],
        )
    }

    fn state_block(state: &str) -> Block {
        Block::new(
            and(
                eq(col_r("cust"), col_b("cust")),
                eq(col_r("state"), lit(state)),
            ),
            vec![AggSpec::on_column("avg", "sale")
                .with_alias(format!("avg_{}", state.to_lowercase()))],
        )
    }

    #[test]
    fn example_2_2_tristate_in_one_scan() {
        // The paper's pivot query: per customer, avg sale in NY, NJ, CT.
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let out = multi(
            &b,
            &s,
            &[state_block("NY"), state_block("NJ"), state_block("CT")],
            &ExecContext::new(),
        )
        .unwrap();
        assert_eq!(
            out.schema().names(),
            vec!["cust", "avg_ny", "avg_nj", "avg_ct"]
        );
        let c1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(c1[1], Value::Float(10.0));
        assert_eq!(c1[2], Value::Float(20.0));
        assert_eq!(c1[3], Value::Float(30.0));
        let c2 = out.rows().iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(c2[1], Value::Float(40.0));
        assert_eq!(c2[2], Value::Null); // no NJ purchases: outer semantics
        assert_eq!(c2[3], Value::Null);
    }

    #[test]
    fn multi_equals_sequence_of_single_md_joins() {
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let multi = multi(
            &b,
            &s,
            &[state_block("NY"), state_block("NJ")],
            &ExecContext::new(),
        )
        .unwrap();
        // Sequential: B → MD(NY) → MD(NJ).
        let step1 = md_join_serial(
            &b,
            &s,
            &state_block("NY").aggs,
            &state_block("NY").theta,
            &ExecContext::new(),
        )
        .unwrap();
        let step2 = md_join_serial(
            &step1,
            &s,
            &state_block("NJ").aggs,
            &state_block("NJ").theta,
            &ExecContext::new(),
        )
        .unwrap();
        assert!(multi.same_multiset(&step2));
    }

    #[test]
    fn single_scan_recorded() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new().with_stats(stats.clone());
        multi(
            &b,
            &s,
            &[state_block("NY"), state_block("NJ"), state_block("CT")],
            &ctx,
        )
        .unwrap();
        assert_eq!(stats.scans(), 1);
        assert_eq!(stats.tuples_scanned(), s.len() as u64);
    }

    fn sales_n(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        Relation::from_rows(
            schema,
            (0..n)
                .map(|i| {
                    Row::from_values(vec![
                        Value::Int(i % 7),
                        Value::str(match i % 4 {
                            0 => "NY",
                            1 => "NJ",
                            2 => "CT",
                            _ => "PA",
                        }),
                        if i % 11 == 0 {
                            Value::Null
                        } else {
                            Value::Float((i as f64) * 0.25)
                        },
                    ])
                })
                .collect(),
        )
    }

    #[test]
    fn fused_matches_scalar_multi_rows_and_counters() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let s = sales_n(300);
        let b = s.distinct_on(&["cust"]).unwrap();
        let blocks = [state_block("NY"), state_block("NJ"), state_block("CT")];
        let scalar_stats = Arc::new(ScanStats::new());
        let sctx = ExecContext::new().with_stats(scalar_stats.clone());
        let scalar = multi(&b, &s, &blocks, &sctx).unwrap();
        let fused_stats = Arc::new(ScanStats::new());
        let fctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(fused_stats.clone());
        let fused = multi_vectorized(&b, &s, &blocks, &fctx).unwrap();
        assert_eq!(scalar.schema(), fused.schema());
        assert_eq!(scalar.rows(), fused.rows());
        // One scan of R, and probe/update work identical to the interpreter.
        assert_eq!(fused_stats.scans(), 1);
        assert_eq!(scalar_stats.tuples_scanned(), fused_stats.tuples_scanned());
        assert_eq!(scalar_stats.probes(), fused_stats.probes());
        assert_eq!(scalar_stats.updates(), fused_stats.updates());
        // Each of the k sets evaluates per batch; all stayed vectorized.
        assert_eq!(fused_stats.batches(), 3 * 300u64.div_ceil(64));
        assert_eq!(fused_stats.batch_fallbacks(), 0);
        assert_eq!(fused_stats.gen_sets(), 3);
        assert_eq!(fused_stats.gen_set_fallbacks(), 0);
    }

    #[test]
    fn fused_uncovered_set_delegates_only_itself() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let s = sales_n(300);
        let b = s.distinct_on(&["cust"]).unwrap();
        // One fully covered set next to one whose Div prefilter can never
        // batch: only the second set goes scalar, and the fused output still
        // matches the interpreter exactly.
        let covered = state_block("NY");
        let uncovered = Block::new(
            and(
                eq(col_r("cust"), col_b("cust")),
                gt(div(col_r("sale"), lit(2i64)), lit(0i64)),
            ),
            vec![AggSpec::on_column("sum", "sale").with_alias("sum_big")],
        );
        let blocks = [covered, uncovered];
        let scalar = multi(&b, &s, &blocks, &ExecContext::new()).unwrap();
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        let fused = multi_vectorized(&b, &s, &blocks, &ctx).unwrap();
        assert_eq!(scalar.rows(), fused.rows());
        assert_eq!(stats.gen_sets(), 2);
        assert_eq!(stats.gen_set_fallbacks(), 1);
        let batches = 300u64.div_ceil(64);
        assert_eq!(stats.batch_fallbacks(), batches);
        assert_eq!(stats.fallback_prefilter(), batches);
    }

    #[test]
    fn colliding_block_outputs_rejected() {
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let blk = Block::new(
            eq(col_b("cust"), col_r("cust")),
            vec![AggSpec::on_column("sum", "sale")],
        );
        let err = multi(&b, &s, &[blk.clone(), blk], &ExecContext::new());
        assert!(matches!(err, Err(CoreError::DuplicateColumn(_))));
    }

    #[test]
    fn empty_block_list_rejected() {
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        assert!(matches!(
            multi(&b, &s, &[], &ExecContext::new()),
            Err(CoreError::BadConfig(_))
        ));
    }
}
