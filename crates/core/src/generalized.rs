//! The generalized MD-join of Section 4.3:
//! `MD(B, R, (l₁, …, l_k), (θ₁, …, θ_k))`.
//!
//! A series of MD-joins whose θs are mutually independent (no θ references a
//! column produced by an earlier MD-join in the series) and whose detail
//! relation is the same can be coalesced into one operator that defines, for
//! each base tuple, `k` subsets of `R` — and therefore evaluates in a single
//! scan instead of `k` scans. The scheduling that decides *which* MD-joins
//! coalesce lives in `mdj-algebra`; this module is the single-scan evaluator.

use crate::context::{ExecContext, CANCEL_CHECK_INTERVAL};
use crate::error::{CoreError, Result};
use crate::governor::{self, MemCharge};
use crate::mdjoin::{bind_aggs, BoundAgg};
use crate::probe::ProbePlan;
use mdj_agg::{AggSpec, AggState};
use mdj_expr::Expr;
use mdj_storage::{Relation, Row, Schema, Value};

/// One (θ, l) block of a generalized MD-join.
#[derive(Debug, Clone)]
pub struct Block {
    pub theta: Expr,
    pub aggs: Vec<AggSpec>,
}

impl Block {
    pub fn new(theta: Expr, aggs: Vec<AggSpec>) -> Self {
        Block { theta, aggs }
    }
}

/// The output schema of the generalized MD-join: `B`'s columns, then block
/// 1's aggregate columns, then block 2's, etc. Fails on colliding names.
pub(crate) fn multi_output_schema(
    b_schema: &Schema,
    r_schema: &Schema,
    blocks: &[Block],
    registry: &mdj_agg::Registry,
) -> Result<Schema> {
    let mut fields = b_schema.fields().to_vec();
    for blk in blocks {
        let bound = bind_aggs(&blk.aggs, r_schema, registry)?;
        for ba in bound {
            if fields.iter().any(|f| f.name == ba.output.name) {
                return Err(CoreError::DuplicateColumn(ba.output.name));
            }
            fields.push(ba.output);
        }
    }
    Ok(Schema::new(fields))
}

/// Evaluate a generalized MD-join in one scan of `R`.
///
/// Output schema: `B`'s columns, then block 1's aggregate columns, then
/// block 2's, etc. Blocks may not produce colliding column names.
pub(crate) fn multi(
    b: &Relation,
    r: &Relation,
    blocks: &[Block],
    ctx: &ExecContext,
) -> Result<Relation> {
    if blocks.is_empty() {
        return Err(CoreError::BadConfig(
            "generalized MD-join needs at least one block".into(),
        ));
    }
    ctx.check_interrupt()?;
    // Bind every block and build its probe plan.
    let mut bound_blocks: Vec<(ProbePlan, Vec<BoundAgg>)> = Vec::with_capacity(blocks.len());
    for blk in blocks {
        let bound = bind_aggs(&blk.aggs, r.schema(), ctx.registry())?;
        let plan =
            ProbePlan::build_opts(b, r.schema(), &blk.theta, ctx.strategy(), ctx.prefilter())?;
        bound_blocks.push((plan, bound));
    }
    // Collision check across B and all blocks.
    {
        let mut names: Vec<String> = b.schema().fields().iter().map(|f| f.name.clone()).collect();
        for (_, bound) in &bound_blocks {
            for ba in bound {
                if names.iter().any(|n| n == &ba.output.name) {
                    return Err(CoreError::DuplicateColumn(ba.output.name.clone()));
                }
                names.push(ba.output.name.clone());
            }
        }
    }

    // Governor accounting: the state cube holds one state per (block agg ×
    // base row), plus one probe index per hash-planned block.
    let total_aggs: usize = bound_blocks.iter().map(|(_, bound)| bound.len()).sum();
    let _state_charge = MemCharge::try_new(ctx, governor::state_bytes(b.len(), total_aggs))?;
    let hash_blocks = bound_blocks.iter().filter(|(p, _)| p.is_hash()).count();
    let _index_charge = MemCharge::try_new(
        ctx,
        governor::index_bytes(b.len()).saturating_mul(hash_blocks),
    )?;

    // states[block][base_row][agg]
    let mut states: Vec<Vec<Vec<Box<dyn AggState>>>> = bound_blocks
        .iter()
        .map(|(_, bound)| {
            b.iter()
                .map(|_| bound.iter().map(|ba| ba.agg.init()).collect())
                .collect()
        })
        .collect();

    ctx.record_scan(r.len() as u64);
    let mut matches: Vec<usize> = Vec::new();
    let mut key_scratch: Vec<mdj_storage::Value> = Vec::new();
    for (ti, t) in r.iter().enumerate() {
        if ti % CANCEL_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        for (bi, (plan, bound)) in bound_blocks.iter().enumerate() {
            plan.matches(b, t.values(), ctx, &mut matches, &mut key_scratch)?;
            if matches.is_empty() {
                continue;
            }
            ctx.record_updates((matches.len() * bound.len()) as u64);
            let block_states = &mut states[bi];
            for &row_id in &matches {
                for (j, ba) in bound.iter().enumerate() {
                    let v = match ba.input_col {
                        Some(c) => &t[c],
                        None => &Value::Null,
                    };
                    block_states[row_id][j].update(v)?;
                }
            }
        }
    }

    let mut fields = b.schema().fields().to_vec();
    for (_, bound) in &bound_blocks {
        fields.extend(bound.iter().map(|ba| ba.output.clone()));
    }
    let schema = Schema::new(fields);
    let mut out = Relation::empty(schema);
    for (i, row) in b.iter().enumerate() {
        let mut vals = row.values().to_vec();
        for block_states in &states {
            vals.extend(block_states[i].iter().map(|s| s.finalize()));
        }
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdjoin::md_join_serial;
    use mdj_expr::builder::*;
    use mdj_storage::DataType;

    fn sales() -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::str("NY"), Value::Float(10.0)]),
                Row::from_values(vec![Value::Int(1), Value::str("NJ"), Value::Float(20.0)]),
                Row::from_values(vec![Value::Int(1), Value::str("CT"), Value::Float(30.0)]),
                Row::from_values(vec![Value::Int(2), Value::str("NY"), Value::Float(40.0)]),
                Row::from_values(vec![Value::Int(2), Value::str("PA"), Value::Float(50.0)]),
            ],
        )
    }

    fn state_block(state: &str) -> Block {
        Block::new(
            and(
                eq(col_r("cust"), col_b("cust")),
                eq(col_r("state"), lit(state)),
            ),
            vec![AggSpec::on_column("avg", "sale")
                .with_alias(format!("avg_{}", state.to_lowercase()))],
        )
    }

    #[test]
    fn example_2_2_tristate_in_one_scan() {
        // The paper's pivot query: per customer, avg sale in NY, NJ, CT.
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let out = multi(
            &b,
            &s,
            &[state_block("NY"), state_block("NJ"), state_block("CT")],
            &ExecContext::new(),
        )
        .unwrap();
        assert_eq!(
            out.schema().names(),
            vec!["cust", "avg_ny", "avg_nj", "avg_ct"]
        );
        let c1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(c1[1], Value::Float(10.0));
        assert_eq!(c1[2], Value::Float(20.0));
        assert_eq!(c1[3], Value::Float(30.0));
        let c2 = out.rows().iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(c2[1], Value::Float(40.0));
        assert_eq!(c2[2], Value::Null); // no NJ purchases: outer semantics
        assert_eq!(c2[3], Value::Null);
    }

    #[test]
    fn multi_equals_sequence_of_single_md_joins() {
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let multi = multi(
            &b,
            &s,
            &[state_block("NY"), state_block("NJ")],
            &ExecContext::new(),
        )
        .unwrap();
        // Sequential: B → MD(NY) → MD(NJ).
        let step1 = md_join_serial(
            &b,
            &s,
            &state_block("NY").aggs,
            &state_block("NY").theta,
            &ExecContext::new(),
        )
        .unwrap();
        let step2 = md_join_serial(
            &step1,
            &s,
            &state_block("NJ").aggs,
            &state_block("NJ").theta,
            &ExecContext::new(),
        )
        .unwrap();
        assert!(multi.same_multiset(&step2));
    }

    #[test]
    fn single_scan_recorded() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new().with_stats(stats.clone());
        multi(
            &b,
            &s,
            &[state_block("NY"), state_block("NJ"), state_block("CT")],
            &ctx,
        )
        .unwrap();
        assert_eq!(stats.scans(), 1);
        assert_eq!(stats.tuples_scanned(), s.len() as u64);
    }

    #[test]
    fn colliding_block_outputs_rejected() {
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let blk = Block::new(
            eq(col_b("cust"), col_r("cust")),
            vec![AggSpec::on_column("sum", "sale")],
        );
        let err = multi(&b, &s, &[blk.clone(), blk], &ExecContext::new());
        assert!(matches!(err, Err(CoreError::DuplicateColumn(_))));
    }

    #[test]
    fn empty_block_list_rejected() {
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        assert!(matches!(
            multi(&b, &s, &[], &ExecContext::new()),
            Err(CoreError::BadConfig(_))
        ));
    }
}
