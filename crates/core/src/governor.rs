//! The query governor: cooperative cancellation, wall-clock deadlines, and
//! runtime memory accounting with Theorem 4.1 degradation.
//!
//! Section 4.1.1 presents partitioned evaluation as *the* mechanism for
//! bounded-memory MD-joins: split `B` into `m` pieces that fit, trading one
//! scan of `R` for `m` — "a well-defined increase in the number of scans of
//! R". The governor turns that planning argument into a runtime contract:
//!
//! * a [`CancelToken`] and/or deadline on [`ExecContext`](crate::ExecContext)
//!   is polled at morsel/partition/chunk granularity by every strategy, so a
//!   runaway θ or an impatient caller stops the query with a typed
//!   [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] instead of
//!   running to completion;
//! * a [`MemoryTracker`] charges base-table aggregate state and probe-index
//!   allocations against a configurable budget. A breach surfaces as
//!   [`CoreError::BudgetExceeded`] — which the `MdJoin` builder answers, for
//!   the in-memory strategies, by re-planning into Theorem 4.1 partitioned
//!   evaluation with `m` raised until the per-partition footprint fits.
//!
//! All charges are estimates (we do not hook the allocator): the per-row
//! constants below are deliberately round numbers sized for the in-memory
//! `Vec<Box<dyn AggState>>` representation. What matters for the Theorem 4.1
//! contract is that the estimate is *monotone in `|B|`*, so halving a
//! partition halves its charge and the degradation loop terminates.

use crate::error::{CoreError, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Estimated bytes of one aggregate state (`Box<dyn AggState>` plus a small
/// scratchpad struct). Holistic states grow with the data; the estimate is a
/// floor, not a ceiling — budgets are best-effort governance, not cgroups.
pub const BYTES_PER_AGG_STATE: usize = 64;

/// Estimated fixed overhead per base row of state bookkeeping (the per-row
/// `Vec` of state boxes).
pub const BYTES_PER_BASE_ROW: usize = 32;

/// Estimated bytes per base row of a hash probe index (bucket entry + key).
pub const BYTES_PER_INDEX_ROW: usize = 48;

/// Estimated aggregate-state footprint of evaluating `n_aggs` aggregates
/// over a base table of `b_rows` rows.
pub fn state_bytes(b_rows: usize, n_aggs: usize) -> usize {
    b_rows.saturating_mul(
        BYTES_PER_BASE_ROW.saturating_add(n_aggs.saturating_mul(BYTES_PER_AGG_STATE)),
    )
}

/// Estimated footprint of a hash probe index over `b_rows` base rows.
pub fn index_bytes(b_rows: usize) -> usize {
    b_rows.saturating_mul(BYTES_PER_INDEX_ROW)
}

/// Estimated bytes per canonicalized key value copied into a hash probe
/// index (`Value` + `Vec` bookkeeping amortized per slot).
pub const BYTES_PER_INDEX_KEY: usize = 24;

/// Estimated footprint of the canonicalized key copies a hash probe index
/// holds: one `Vec<Value>` of `key_cols` values per base row. This is the
/// part of the index cost that scales with the key width, charged separately
/// from the bucket structure ([`index_bytes`]).
pub fn index_key_bytes(b_rows: usize, key_cols: usize) -> usize {
    b_rows.saturating_mul(key_cols.saturating_mul(BYTES_PER_INDEX_KEY))
}

/// Render a caught panic payload (`Box<dyn Any>`) as a message for the typed
/// `MorselPanicked` / `WorkerPanicked` errors.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A shared, cloneable cancellation flag. Clones observe the same flag, so a
/// token handed to a query can be triggered from another thread (or a signal
/// handler — flipping the flag is async-signal-safe).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Re-arm the token for a new query (e.g. an interactive shell reusing
    /// one token across statements).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// A process-wide memory pool that per-query budgets are *reserved* from.
///
/// This is the admission-control half of multi-tenant memory governance: a
/// query's [`MemoryTracker`] bounds what one query may use, the pool bounds
/// what all concurrent queries may hold *together*. Admission reserves a
/// query's whole budget up front (so an admitted query can never be starved
/// mid-flight by a later arrival) and the RAII [`PoolGrant`] returns the
/// bytes when the query's tracker dies — on success, error, cancellation,
/// or panic alike, the pool balance always returns to zero.
///
/// Waiting is bounded two ways: by wall-clock (`reserve_timeout`) and by a
/// caller-supplied cap on concurrent waiters, so an overloaded server sheds
/// load with typed [`CoreError::PoolExhausted`] / [`CoreError::QueueFull`]
/// errors instead of building an unbounded queue.
#[derive(Debug)]
pub struct MemoryPool {
    capacity: u64,
    state: Mutex<PoolState>,
    freed: Condvar,
}

#[derive(Debug)]
struct PoolState {
    reserved: u64,
    waiters: usize,
}

impl MemoryPool {
    pub fn new(capacity_bytes: usize) -> Self {
        MemoryPool {
            capacity: capacity_bytes as u64,
            state: Mutex::new(PoolState {
                reserved: 0,
                waiters: 0,
            }),
            freed: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved by live grants.
    pub fn reserved(&self) -> u64 {
        self.lock().reserved
    }

    /// Bytes still available for new reservations.
    pub fn available(&self) -> u64 {
        self.capacity - self.lock().reserved
    }

    /// Queries currently blocked waiting for a reservation.
    pub fn waiters(&self) -> usize {
        self.lock().waiters
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Reserve `bytes` now or fail with [`CoreError::PoolExhausted`] — the
    /// non-blocking admission path.
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Result<PoolGrant> {
        let mut state = self.lock();
        self.grant_or_exhausted(&mut state, bytes)
    }

    /// Reserve `bytes`, waiting up to `wait` for other queries to finish.
    /// At most `max_waiters` callers may be queued at once; one more gets
    /// the typed [`CoreError::QueueFull`] shedding error immediately. A wait
    /// that times out surfaces [`CoreError::PoolExhausted`].
    pub fn reserve_timeout(
        self: &Arc<Self>,
        bytes: u64,
        wait: Duration,
        max_waiters: usize,
    ) -> Result<PoolGrant> {
        let deadline = Instant::now() + wait;
        let mut state = self.lock();
        if state.reserved + bytes <= self.capacity || bytes > self.capacity {
            return self.grant_or_exhausted(&mut state, bytes);
        }
        if state.waiters >= max_waiters {
            return Err(CoreError::QueueFull {
                waiting: state.waiters,
                limit: max_waiters,
            });
        }
        state.waiters += 1;
        let result = loop {
            let now = Instant::now();
            if state.reserved + bytes <= self.capacity {
                break self.grant_or_exhausted(&mut state, bytes);
            }
            if now >= deadline {
                break Err(CoreError::PoolExhausted {
                    needed: bytes,
                    available: self.capacity - state.reserved,
                    capacity: self.capacity,
                });
            }
            let (next, timeout) = self
                .freed
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = next;
            if timeout.timed_out() && state.reserved + bytes > self.capacity {
                break Err(CoreError::PoolExhausted {
                    needed: bytes,
                    available: self.capacity - state.reserved,
                    capacity: self.capacity,
                });
            }
        };
        state.waiters -= 1;
        result
    }

    fn grant_or_exhausted(
        self: &Arc<Self>,
        state: &mut PoolState,
        bytes: u64,
    ) -> Result<PoolGrant> {
        if state.reserved + bytes > self.capacity {
            return Err(CoreError::PoolExhausted {
                needed: bytes,
                available: self.capacity - state.reserved,
                capacity: self.capacity,
            });
        }
        state.reserved += bytes;
        Ok(PoolGrant {
            pool: self.clone(),
            bytes,
        })
    }

    fn release(&self, bytes: u64) {
        let mut state = self.lock();
        state.reserved = state.reserved.saturating_sub(bytes);
        drop(state);
        self.freed.notify_all();
    }
}

/// RAII reservation against a [`MemoryPool`]: the bytes return to the pool
/// (waking any queued queries) when the grant drops.
#[derive(Debug)]
pub struct PoolGrant {
    pool: Arc<MemoryPool>,
    bytes: u64,
}

impl PoolGrant {
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for PoolGrant {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

/// Runtime memory accounting against a fixed byte budget.
///
/// Evaluators charge their big allocations (base-state vectors, probe
/// indexes) before making them and release the charge when the allocation
/// dies (via [`MemCharge`]'s `Drop`). `peak` records the high-water mark
/// *including* the charge that breached, which is exactly the number the
/// Theorem 4.1 degradation loop needs to size its next partition count.
///
/// In a multi-tenant server the tracker is built with
/// [`MemoryTracker::draw_from`], which reserves its whole budget from a
/// shared [`MemoryPool`] and carries the [`PoolGrant`] for its lifetime, so
/// dropping the tracker (query done) gives the bytes back to the pool.
#[derive(Debug)]
pub struct MemoryTracker {
    budget: u64,
    charged: AtomicU64,
    peak: AtomicU64,
    /// Held so a pooled budget returns to the pool exactly when the tracker
    /// dies; `None` for standalone (single-user) trackers.
    _grant: Option<PoolGrant>,
}

impl MemoryTracker {
    pub fn new(budget_bytes: usize) -> Self {
        MemoryTracker {
            budget: budget_bytes as u64,
            charged: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            _grant: None,
        }
    }

    /// A tracker whose budget is reserved from `pool` right now; fails with
    /// [`CoreError::PoolExhausted`] when the pool cannot cover it.
    pub fn draw_from(pool: &Arc<MemoryPool>, budget_bytes: usize) -> Result<Self> {
        let grant = pool.try_reserve(budget_bytes as u64)?;
        Ok(Self::with_grant(budget_bytes, grant))
    }

    /// A tracker over an already-obtained reservation (admission control
    /// that queued via [`MemoryPool::reserve_timeout`]).
    pub fn with_grant(budget_bytes: usize, grant: PoolGrant) -> Self {
        MemoryTracker {
            budget: budget_bytes as u64,
            charged: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            _grant: Some(grant),
        }
    }

    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently charged.
    pub fn charged(&self) -> u64 {
        self.charged.load(Ordering::Relaxed)
    }

    /// High-water mark of attempted charges (counting rejected ones).
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Forget the high-water mark (between degradation attempts).
    pub fn reset_peak(&self) {
        self.peak.store(self.charged(), Ordering::Relaxed);
    }

    fn bump_peak(&self, candidate: u64) {
        self.peak.fetch_max(candidate, Ordering::Relaxed);
    }

    /// Charge `bytes`, failing with [`CoreError::BudgetExceeded`] if the
    /// total would exceed the budget. The attempted total still raises the
    /// peak, so a failed charge tells the degradation loop how much was
    /// actually needed.
    pub fn try_charge(&self, bytes: u64) -> Result<()> {
        let after = self.charged.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.bump_peak(after);
        if after > self.budget {
            self.charged.fetch_sub(bytes, Ordering::Relaxed);
            return Err(CoreError::BudgetExceeded {
                needed: after,
                budget: self.budget,
            });
        }
        Ok(())
    }

    pub fn release(&self, bytes: u64) {
        self.charged.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// RAII guard for a [`MemoryTracker`] charge: releases on drop, so partition
/// attempts and per-worker states give their bytes back automatically (and
/// on *any* exit path, including errors and caught panics).
#[derive(Debug, Default)]
pub struct MemCharge {
    tracker: Option<Arc<MemoryTracker>>,
    bytes: u64,
}

impl MemCharge {
    /// Charge `bytes` against the context's tracker, if it has one. With no
    /// tracker this is free and the guard is inert.
    pub fn try_new(ctx: &crate::ExecContext, bytes: usize) -> Result<MemCharge> {
        match ctx.memory() {
            None => Ok(MemCharge::default()),
            Some(tracker) => {
                #[cfg(feature = "fault-injection")]
                if let Some(f) = ctx.fault() {
                    if f.should_fail_charge() {
                        return Err(CoreError::BudgetExceeded {
                            needed: tracker.charged() + bytes as u64,
                            budget: tracker.budget(),
                        });
                    }
                }
                tracker.try_charge(bytes as u64)?;
                if let Some(s) = ctx.stats() {
                    s.record_bytes_charged(bytes as u64);
                }
                Ok(MemCharge {
                    tracker: Some(tracker.clone()),
                    bytes: bytes as u64,
                })
            }
        }
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        if let Some(t) = &self.tracker {
            t.release(self.bytes);
        }
    }
}

/// Incremental charge accumulator for state that grows while a query runs —
/// holistic aggregates (median, mode, count-distinct) whose footprint is
/// data-dependent (footnote 2 of the paper) and therefore invisible to the
/// up-front [`state_bytes`] estimate. Executors meter actual growth by
/// diffing `AggState::heap_bytes` around each update and charging the delta;
/// everything charged is released when the meter drops (states die with the
/// evaluation attempt, so their bytes come back on success *and* on a
/// [`CoreError::BudgetExceeded`] degradation retry).
#[derive(Debug)]
pub struct GrowthMeter {
    tracker: Option<Arc<MemoryTracker>>,
    stats: Option<Arc<mdj_storage::ScanStats>>,
    charged: u64,
}

impl GrowthMeter {
    /// A meter against the context's tracker; inert when no budget is set.
    pub fn new(ctx: &crate::ExecContext) -> GrowthMeter {
        GrowthMeter {
            tracker: ctx.memory().cloned(),
            stats: ctx.stats().cloned(),
            charged: 0,
        }
    }

    /// True when metering would actually charge something (callers skip the
    /// per-update `heap_bytes` bookkeeping entirely otherwise).
    pub fn active(&self) -> bool {
        self.tracker.is_some()
    }

    /// Charge `delta` additional bytes of state growth.
    pub fn charge(&mut self, delta: usize) -> Result<()> {
        if delta == 0 {
            return Ok(());
        }
        if let Some(tracker) = &self.tracker {
            tracker.try_charge(delta as u64)?;
            self.charged += delta as u64;
            if let Some(s) = &self.stats {
                s.record_bytes_charged(delta as u64);
            }
        }
        Ok(())
    }
}

impl Drop for GrowthMeter {
    fn drop(&mut self) {
        if let Some(t) = &self.tracker {
            t.release(self.charged);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_and_resettable() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t.is_cancelled());
        t2.cancel();
        assert!(t.is_cancelled());
        t.reset();
        assert!(!t2.is_cancelled());
    }

    #[test]
    fn tracker_charges_releases_and_tracks_peak() {
        let t = MemoryTracker::new(100);
        t.try_charge(60).unwrap();
        assert_eq!(t.charged(), 60);
        let err = t.try_charge(50).unwrap_err();
        assert!(matches!(
            err,
            CoreError::BudgetExceeded {
                needed: 110,
                budget: 100
            }
        ));
        // The failed charge was rolled back but raised the peak.
        assert_eq!(t.charged(), 60);
        assert_eq!(t.peak(), 110);
        t.release(60);
        assert_eq!(t.charged(), 0);
        t.reset_peak();
        assert_eq!(t.peak(), 0);
        t.try_charge(100).unwrap(); // exactly at budget is fine
    }

    #[test]
    fn charge_guard_releases_on_drop() {
        let ctx = crate::ExecContext::new().with_budget_bytes(1000);
        let tracker = ctx.memory().cloned().unwrap();
        {
            let _g = MemCharge::try_new(&ctx, 400).unwrap();
            assert_eq!(tracker.charged(), 400);
            assert!(MemCharge::try_new(&ctx, 700).is_err());
        }
        assert_eq!(tracker.charged(), 0);
        // No tracker: inert guard.
        let free = crate::ExecContext::new();
        let _g = MemCharge::try_new(&free, usize::MAX).unwrap();
    }

    #[test]
    fn pool_reserves_releases_and_sheds() {
        let pool = Arc::new(MemoryPool::new(1000));
        assert_eq!(pool.capacity(), 1000);
        let g1 = pool.try_reserve(600).unwrap();
        assert_eq!(pool.available(), 400);
        let err = pool.try_reserve(500).unwrap_err();
        assert!(matches!(
            err,
            CoreError::PoolExhausted {
                needed: 500,
                available: 400,
                capacity: 1000
            }
        ));
        let g2 = pool.try_reserve(400).unwrap();
        assert_eq!(pool.available(), 0);
        drop(g1);
        assert_eq!(pool.available(), 600);
        drop(g2);
        assert_eq!(pool.reserved(), 0);
        // A request larger than the whole pool is exhausted, never queued.
        let err = pool
            .reserve_timeout(2000, Duration::from_secs(60), 8)
            .unwrap_err();
        assert!(matches!(err, CoreError::PoolExhausted { .. }));
        assert_eq!(pool.waiters(), 0);
    }

    #[test]
    fn pool_wait_times_out_and_queue_bounds() {
        let pool = Arc::new(MemoryPool::new(100));
        let _g = pool.try_reserve(100).unwrap();
        // Zero queue slots: immediate QueueFull.
        let err = pool
            .reserve_timeout(50, Duration::from_secs(60), 0)
            .unwrap_err();
        assert!(matches!(err, CoreError::QueueFull { limit: 0, .. }));
        // One slot, but nothing frees within the wait: PoolExhausted.
        let err = pool
            .reserve_timeout(50, Duration::from_millis(10), 1)
            .unwrap_err();
        assert!(matches!(err, CoreError::PoolExhausted { .. }));
        assert_eq!(pool.waiters(), 0);
    }

    #[test]
    fn pool_wait_succeeds_when_bytes_free() {
        let pool = Arc::new(MemoryPool::new(100));
        let g = pool.try_reserve(100).unwrap();
        let p2 = pool.clone();
        let waiter = std::thread::spawn(move || {
            p2.reserve_timeout(60, Duration::from_secs(30), 4)
                .map(|g| g.bytes())
        });
        // Give the waiter time to queue, then free the pool.
        std::thread::sleep(Duration::from_millis(30));
        drop(g);
        assert_eq!(waiter.join().unwrap().unwrap(), 60);
        // The waiter's grant was dropped when its thread returned the size.
        assert_eq!(pool.reserved(), 0);
        assert_eq!(pool.waiters(), 0);
    }

    #[test]
    fn tracker_draws_budget_from_pool_for_its_lifetime() {
        let pool = Arc::new(MemoryPool::new(1 << 20));
        {
            let tracker = MemoryTracker::draw_from(&pool, 4096).unwrap();
            assert_eq!(pool.reserved(), 4096);
            tracker.try_charge(1000).unwrap();
            assert!(matches!(
                tracker.try_charge(4096),
                Err(CoreError::BudgetExceeded { .. })
            ));
            // Charges move within the reservation; the pool sees only it.
            assert_eq!(pool.reserved(), 4096);
        }
        assert_eq!(pool.reserved(), 0);
        let err = MemoryTracker::draw_from(&pool, (1 << 20) + 1).unwrap_err();
        assert!(matches!(err, CoreError::PoolExhausted { .. }));
    }

    #[test]
    fn footprint_estimates_are_monotone() {
        assert_eq!(state_bytes(0, 3), 0);
        assert!(state_bytes(100, 2) > state_bytes(50, 2));
        assert!(state_bytes(100, 4) > state_bytes(100, 2));
        assert!(index_bytes(10) < index_bytes(1000));
        assert!(index_key_bytes(10, 2) > index_key_bytes(10, 1));
        assert_eq!(index_key_bytes(0, 3), 0);
        // Saturates instead of overflowing.
        assert_eq!(state_bytes(usize::MAX, usize::MAX), usize::MAX);
        assert_eq!(index_key_bytes(usize::MAX, usize::MAX), usize::MAX);
    }

    #[test]
    fn growth_meter_charges_and_releases() {
        let ctx = crate::ExecContext::new().with_budget_bytes(1000);
        let tracker = ctx.memory().cloned().unwrap();
        {
            let mut meter = GrowthMeter::new(&ctx);
            assert!(meter.active());
            meter.charge(300).unwrap();
            meter.charge(0).unwrap(); // free
            meter.charge(400).unwrap();
            assert_eq!(tracker.charged(), 700);
            let err = meter.charge(500).unwrap_err();
            assert!(matches!(err, CoreError::BudgetExceeded { .. }));
            // The failed delta was rolled back; prior charges stand.
            assert_eq!(tracker.charged(), 700);
        }
        // Drop released everything that was successfully charged.
        assert_eq!(tracker.charged(), 0);
        // No budget: inert.
        let mut free = GrowthMeter::new(&crate::ExecContext::new());
        assert!(!free.active());
        free.charge(usize::MAX).unwrap();
    }
}
