//! Deterministic fault injection for the execution layer.
//!
//! Compiled only with the `fault-injection` feature. A [`FaultInjector`] on
//! [`ExecContext`](crate::ExecContext) arms three fault kinds, each with a
//! bounded count:
//!
//! * **panics** — a morsel execution site panics (caught by the morsel
//!   executor's isolation boundary and retried);
//! * **charge failures** — a [`MemCharge`](crate::governor::MemCharge)
//!   attempt fails as if the budget were breached (exercising Theorem 4.1
//!   degradation without needing a real footprint);
//! * **slow morsels** — a morsel sleeps before running (exercising deadline
//!   enforcement under stragglers);
//! * **spill write failures** — a spill run-file write fails ENOSPC-style
//!   after truncating the file to a short write (exercising the spill
//!   layer's typed-error and RAII-cleanup contract);
//! * **spill read corruptions** — a run file is corrupted (byte flip or
//!   truncation, alternating) just before it is read back, so the reader's
//!   checksum validation must catch it;
//! * **planner failures** — a parse/compile/optimize site fails with a
//!   typed SQL error before any execution starts (exercising the server's
//!   error path for queries that never reach the engine);
//! * **server accept/read/write failures** — the TCP front end drops an
//!   accepted connection, treats a read as failed, or skips a response
//!   write, so clients see exactly what a flaky network produces.
//!
//! *Which* site hits inject is a pure function of the seed and a global site
//! counter, so a single-threaded run is exactly reproducible; under threads
//! the interleaving varies but the *number* of injected faults is fixed,
//! which is what the result-or-clean-error property needs. Because the
//! counts are bounded, retries eventually run fault-free: an injector armed
//! with `panics(1)` and one allowed retry must still produce the exact
//! serial answer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Mixer for deciding whether a given site hit injects (SplitMix64 finalizer
/// over seed ⊕ hit index).
fn mix(seed: u64, hit: u64) -> u64 {
    let mut z = seed ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic, bounded fault injector. See the module docs.
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    /// Inject at roughly one in `period` eligible site hits.
    period: u64,
    remaining_panics: AtomicU64,
    remaining_charge_failures: AtomicU64,
    remaining_slow: AtomicU64,
    slow_for: Duration,
    remaining_spill_write_failures: AtomicU64,
    remaining_spill_corruptions: AtomicU64,
    remaining_pager_write_failures: AtomicU64,
    remaining_pager_fsync_failures: AtomicU64,
    remaining_planner_failures: AtomicU64,
    remaining_server_accept_failures: AtomicU64,
    remaining_server_read_failures: AtomicU64,
    remaining_server_write_failures: AtomicU64,
    morsel_hits: AtomicU64,
    charge_hits: AtomicU64,
    spill_write_hits: AtomicU64,
    spill_read_hits: AtomicU64,
    pager_write_hits: AtomicU64,
    pager_fsync_hits: AtomicU64,
    planner_hits: AtomicU64,
    server_accept_hits: AtomicU64,
    server_read_hits: AtomicU64,
    server_write_hits: AtomicU64,
    injected_panics: AtomicU64,
    injected_spill_write_failures: AtomicU64,
    injected_spill_corruptions: AtomicU64,
    injected_planner_failures: AtomicU64,
    injected_server_faults: AtomicU64,
    injected_pager_faults: AtomicU64,
}

impl FaultInjector {
    /// An injector that injects nothing until armed via the builder methods.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            period: 3,
            remaining_panics: AtomicU64::new(0),
            remaining_charge_failures: AtomicU64::new(0),
            remaining_slow: AtomicU64::new(0),
            slow_for: Duration::from_millis(5),
            remaining_spill_write_failures: AtomicU64::new(0),
            remaining_spill_corruptions: AtomicU64::new(0),
            remaining_pager_write_failures: AtomicU64::new(0),
            remaining_pager_fsync_failures: AtomicU64::new(0),
            remaining_planner_failures: AtomicU64::new(0),
            remaining_server_accept_failures: AtomicU64::new(0),
            remaining_server_read_failures: AtomicU64::new(0),
            remaining_server_write_failures: AtomicU64::new(0),
            morsel_hits: AtomicU64::new(0),
            charge_hits: AtomicU64::new(0),
            spill_write_hits: AtomicU64::new(0),
            spill_read_hits: AtomicU64::new(0),
            pager_write_hits: AtomicU64::new(0),
            pager_fsync_hits: AtomicU64::new(0),
            planner_hits: AtomicU64::new(0),
            server_accept_hits: AtomicU64::new(0),
            server_read_hits: AtomicU64::new(0),
            server_write_hits: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_spill_write_failures: AtomicU64::new(0),
            injected_spill_corruptions: AtomicU64::new(0),
            injected_planner_failures: AtomicU64::new(0),
            injected_server_faults: AtomicU64::new(0),
            injected_pager_faults: AtomicU64::new(0),
        }
    }

    /// Inject at roughly one in `period` eligible site hits (default 3).
    pub fn period(self, period: u64) -> Self {
        FaultInjector {
            period: period.max(1),
            ..self
        }
    }

    /// Arm `n` injected panics at morsel execution sites.
    pub fn panics(self, n: u64) -> Self {
        self.remaining_panics.store(n, Ordering::Relaxed);
        self
    }

    /// Arm `n` injected memory-charge failures.
    pub fn charge_failures(self, n: u64) -> Self {
        self.remaining_charge_failures.store(n, Ordering::Relaxed);
        self
    }

    /// Arm `n` artificially slow morsels, each sleeping `for_` first.
    pub fn slow_morsels(mut self, n: u64, for_: Duration) -> Self {
        self.remaining_slow.store(n, Ordering::Relaxed);
        self.slow_for = for_;
        self
    }

    /// Arm `n` injected spill-write failures (ENOSPC-style short writes).
    pub fn spill_write_failures(self, n: u64) -> Self {
        self.remaining_spill_write_failures
            .store(n, Ordering::Relaxed);
        self
    }

    /// Arm `n` injected spill run-file corruptions on read.
    pub fn spill_read_corruptions(self, n: u64) -> Self {
        self.remaining_spill_corruptions.store(n, Ordering::Relaxed);
        self
    }

    /// Arm `n` injected pager page-write failures (torn writes: only half
    /// of the page bytes reach the data file before the write errors).
    pub fn pager_write_failures(self, n: u64) -> Self {
        self.remaining_pager_write_failures
            .store(n, Ordering::Relaxed);
        self
    }

    /// Arm `n` injected pager fsync failures (the durability barrier in a
    /// manifest checkpoint reports an error after data may have reached the
    /// kernel but before it is known stable).
    pub fn pager_fsync_failures(self, n: u64) -> Self {
        self.remaining_pager_fsync_failures
            .store(n, Ordering::Relaxed);
        self
    }

    /// Arm `n` injected planner failures (parse/compile/optimize sites).
    pub fn planner_failures(self, n: u64) -> Self {
        self.remaining_planner_failures.store(n, Ordering::Relaxed);
        self
    }

    /// Arm `n` injected accept failures in the server front end (the
    /// accepted connection is dropped before it is served).
    pub fn server_accept_failures(self, n: u64) -> Self {
        self.remaining_server_accept_failures
            .store(n, Ordering::Relaxed);
        self
    }

    /// Arm `n` injected read failures in the server front end (a request
    /// read is treated as a connection error).
    pub fn server_read_failures(self, n: u64) -> Self {
        self.remaining_server_read_failures
            .store(n, Ordering::Relaxed);
        self
    }

    /// Arm `n` injected write failures in the server front end (a response
    /// write is skipped as if the peer closed mid-write).
    pub fn server_write_failures(self, n: u64) -> Self {
        self.remaining_server_write_failures
            .store(n, Ordering::Relaxed);
        self
    }

    /// Number of panics actually injected so far.
    pub fn panics_injected(&self) -> u64 {
        self.injected_panics.load(Ordering::Relaxed)
    }

    /// Number of spill-write failures actually injected so far.
    pub fn spill_write_failures_injected(&self) -> u64 {
        self.injected_spill_write_failures.load(Ordering::Relaxed)
    }

    /// Number of spill read corruptions actually injected so far.
    pub fn spill_corruptions_injected(&self) -> u64 {
        self.injected_spill_corruptions.load(Ordering::Relaxed)
    }

    /// Number of planner failures actually injected so far.
    pub fn planner_failures_injected(&self) -> u64 {
        self.injected_planner_failures.load(Ordering::Relaxed)
    }

    /// Number of server accept/read/write faults actually injected so far.
    pub fn server_faults_injected(&self) -> u64 {
        self.injected_server_faults.load(Ordering::Relaxed)
    }

    /// Number of pager write/fsync faults actually injected so far.
    pub fn pager_faults_injected(&self) -> u64 {
        self.injected_pager_faults.load(Ordering::Relaxed)
    }

    /// Atomically consume one unit of `budget` if any remain.
    fn take(budget: &AtomicU64) -> bool {
        budget
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Called by the morsel executor inside its isolation boundary, at the
    /// start of each morsel attempt. May sleep, then may panic.
    pub(crate) fn on_morsel(&self, morsel: usize) {
        let hit = self.morsel_hits.fetch_add(1, Ordering::Relaxed);
        if !mix(self.seed, hit).is_multiple_of(self.period) {
            return;
        }
        if Self::take(&self.remaining_slow) {
            std::thread::sleep(self.slow_for);
        }
        if Self::take(&self.remaining_panics) {
            self.injected_panics.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: morsel {morsel} (seed {})", self.seed);
        }
    }

    /// Called by [`MemCharge`](crate::governor::MemCharge); true = fail this
    /// charge as a budget breach.
    pub(crate) fn should_fail_charge(&self) -> bool {
        let hit = self.charge_hits.fetch_add(1, Ordering::Relaxed);
        mix(self.seed.rotate_left(17), hit).is_multiple_of(self.period)
            && Self::take(&self.remaining_charge_failures)
    }

    /// Called at a spill run-file write site; true = fail this write as an
    /// ENOSPC-style short write. Distinct mix stream from the charge site.
    pub(crate) fn should_fail_spill_write(&self) -> bool {
        let hit = self.spill_write_hits.fetch_add(1, Ordering::Relaxed);
        let inject = mix(self.seed.rotate_left(29), hit).is_multiple_of(self.period)
            && Self::take(&self.remaining_spill_write_failures);
        if inject {
            self.injected_spill_write_failures
                .fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    /// Called at a planner site (parse, compile, or optimize); true = fail
    /// the site with a typed SQL error. Public: the SQL layer consults the
    /// injector through [`ExecContext`](crate::ExecContext) without a
    /// feature gate of its own.
    pub fn should_fail_planner(&self) -> bool {
        let hit = self.planner_hits.fetch_add(1, Ordering::Relaxed);
        let inject = mix(self.seed.rotate_left(7), hit).is_multiple_of(self.period)
            && Self::take(&self.remaining_planner_failures);
        if inject {
            self.injected_planner_failures
                .fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    /// Called after the server accepts a connection; true = drop it
    /// unserved, as if the peer vanished between accept and first read.
    pub fn should_fail_server_accept(&self) -> bool {
        let hit = self.server_accept_hits.fetch_add(1, Ordering::Relaxed);
        let inject = mix(self.seed.rotate_left(11), hit).is_multiple_of(self.period)
            && Self::take(&self.remaining_server_accept_failures);
        if inject {
            self.injected_server_faults.fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    /// Called per request read in the server; true = treat the read as a
    /// connection error and close.
    pub fn should_fail_server_read(&self) -> bool {
        let hit = self.server_read_hits.fetch_add(1, Ordering::Relaxed);
        let inject = mix(self.seed.rotate_left(19), hit).is_multiple_of(self.period)
            && Self::take(&self.remaining_server_read_failures);
        if inject {
            self.injected_server_faults.fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    /// Called per response write in the server; true = skip the write, as
    /// if the peer closed mid-response.
    pub fn should_fail_server_write(&self) -> bool {
        let hit = self.server_write_hits.fetch_add(1, Ordering::Relaxed);
        let inject = mix(self.seed.rotate_left(23), hit).is_multiple_of(self.period)
            && Self::take(&self.remaining_server_write_failures);
        if inject {
            self.injected_server_faults.fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    /// Called at a pager page-write site; true = tear the write (only a
    /// prefix of the bytes reaches the data file). Distinct mix stream from
    /// every other site.
    pub fn should_fail_pager_write(&self) -> bool {
        let hit = self.pager_write_hits.fetch_add(1, Ordering::Relaxed);
        let inject = mix(self.seed.rotate_left(37), hit).is_multiple_of(self.period)
            && Self::take(&self.remaining_pager_write_failures);
        if inject {
            self.injected_pager_faults.fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    /// Called at a pager fsync site (data file or manifest durability
    /// barrier); true = report the sync as failed.
    pub fn should_fail_pager_fsync(&self) -> bool {
        let hit = self.pager_fsync_hits.fetch_add(1, Ordering::Relaxed);
        let inject = mix(self.seed.rotate_left(43), hit).is_multiple_of(self.period)
            && Self::take(&self.remaining_pager_fsync_failures);
        if inject {
            self.injected_pager_faults.fetch_add(1, Ordering::Relaxed);
        }
        inject
    }

    /// Called before a spill run-file read site; true = corrupt the file
    /// first so the reader's checksum validation must reject it.
    pub(crate) fn should_corrupt_spill_read(&self) -> bool {
        let hit = self.spill_read_hits.fetch_add(1, Ordering::Relaxed);
        let inject = mix(self.seed.rotate_left(41), hit).is_multiple_of(self.period)
            && Self::take(&self.remaining_spill_corruptions);
        if inject {
            self.injected_spill_corruptions
                .fetch_add(1, Ordering::Relaxed);
        }
        inject
    }
}

/// Let the pager consult the engine's injector directly: an armed
/// [`FaultInjector`] can be handed to
/// [`PagedStore::open_with_faults`](mdj_storage::PagedStore::open_with_faults)
/// as its write/fsync fault source.
impl mdj_storage::PagerFaults for FaultInjector {
    fn fail_page_write(&self) -> bool {
        self.should_fail_pager_write()
    }

    fn fail_fsync(&self) -> bool {
        self.should_fail_pager_fsync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_budget_is_bounded_and_deterministic() {
        let f = FaultInjector::new(42).period(1).panics(2);
        let mut caught = 0;
        for morsel in 0..10 {
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.on_morsel(morsel)))
                .is_err()
            {
                caught += 1;
            }
        }
        assert_eq!(caught, 2);
        assert_eq!(f.panics_injected(), 2);
        // A fresh injector with the same seed injects at the same hits.
        let g = FaultInjector::new(42).period(3).panics(u64::MAX);
        let pattern: Vec<bool> = (0..20)
            .map(|m| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.on_morsel(m))).is_err()
            })
            .collect();
        let h = FaultInjector::new(42).period(3).panics(u64::MAX);
        let pattern2: Vec<bool> = (0..20)
            .map(|m| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.on_morsel(m))).is_err()
            })
            .collect();
        assert_eq!(pattern, pattern2);
        assert!(pattern.iter().any(|&p| p));
        assert!(pattern.iter().any(|&p| !p));
    }

    #[test]
    fn charge_failures_are_bounded() {
        let f = FaultInjector::new(7).period(1).charge_failures(3);
        let failures = (0..10).filter(|_| f.should_fail_charge()).count();
        assert_eq!(failures, 3);
    }

    #[test]
    fn unarmed_injector_is_inert() {
        let f = FaultInjector::new(0).period(1);
        for m in 0..100 {
            f.on_morsel(m); // must not panic
        }
        assert!(!(0..100).any(|_| f.should_fail_charge()));
        assert!(!(0..100).any(|_| f.should_fail_spill_write()));
        assert!(!(0..100).any(|_| f.should_corrupt_spill_read()));
        assert!(!(0..100).any(|_| f.should_fail_planner()));
        assert!(!(0..100).any(|_| f.should_fail_server_accept()));
        assert!(!(0..100).any(|_| f.should_fail_server_read()));
        assert!(!(0..100).any(|_| f.should_fail_server_write()));
        assert!(!(0..100).any(|_| f.should_fail_pager_write()));
        assert!(!(0..100).any(|_| f.should_fail_pager_fsync()));
    }

    #[test]
    fn pager_budgets_are_bounded_counted_and_on_distinct_streams() {
        let f = FaultInjector::new(13)
            .period(1)
            .pager_write_failures(2)
            .pager_fsync_failures(3);
        assert_eq!((0..10).filter(|_| f.should_fail_pager_write()).count(), 2);
        assert_eq!((0..10).filter(|_| f.should_fail_pager_fsync()).count(), 3);
        assert_eq!(f.pager_faults_injected(), 5);
        // Same seed, different rotate constants: the two pager sites and the
        // spill-write site must not be copies of each other.
        let g = FaultInjector::new(555)
            .period(2)
            .spill_write_failures(u64::MAX)
            .pager_write_failures(u64::MAX)
            .pager_fsync_failures(u64::MAX);
        let spills: Vec<bool> = (0..64).map(|_| g.should_fail_spill_write()).collect();
        let writes: Vec<bool> = (0..64).map(|_| g.should_fail_pager_write()).collect();
        let syncs: Vec<bool> = (0..64).map(|_| g.should_fail_pager_fsync()).collect();
        assert_ne!(spills, writes);
        assert_ne!(writes, syncs);
        // Deterministic per seed.
        let h = FaultInjector::new(555)
            .period(2)
            .pager_write_failures(u64::MAX);
        let writes2: Vec<bool> = (0..64).map(|_| h.should_fail_pager_write()).collect();
        assert_eq!(writes, writes2);
    }

    #[test]
    fn planner_and_server_budgets_are_bounded_and_counted() {
        let f = FaultInjector::new(5)
            .period(1)
            .planner_failures(2)
            .server_accept_failures(1)
            .server_read_failures(2)
            .server_write_failures(3);
        assert_eq!((0..10).filter(|_| f.should_fail_planner()).count(), 2);
        assert_eq!((0..10).filter(|_| f.should_fail_server_accept()).count(), 1);
        assert_eq!((0..10).filter(|_| f.should_fail_server_read()).count(), 2);
        assert_eq!((0..10).filter(|_| f.should_fail_server_write()).count(), 3);
        assert_eq!(f.planner_failures_injected(), 2);
        assert_eq!(f.server_faults_injected(), 6);
    }

    #[test]
    fn planner_and_server_sites_use_distinct_streams() {
        let f = FaultInjector::new(777)
            .period(2)
            .planner_failures(u64::MAX)
            .server_accept_failures(u64::MAX)
            .server_read_failures(u64::MAX)
            .server_write_failures(u64::MAX);
        let planner: Vec<bool> = (0..64).map(|_| f.should_fail_planner()).collect();
        let accepts: Vec<bool> = (0..64).map(|_| f.should_fail_server_accept()).collect();
        let reads: Vec<bool> = (0..64).map(|_| f.should_fail_server_read()).collect();
        let writes: Vec<bool> = (0..64).map(|_| f.should_fail_server_write()).collect();
        assert_ne!(planner, accepts);
        assert_ne!(accepts, reads);
        assert_ne!(reads, writes);
        // Deterministic per seed: a fresh injector reproduces the pattern.
        let g = FaultInjector::new(777).period(2).planner_failures(u64::MAX);
        let planner2: Vec<bool> = (0..64).map(|_| g.should_fail_planner()).collect();
        assert_eq!(planner, planner2);
    }

    #[test]
    fn spill_budgets_are_bounded_and_counted() {
        let f = FaultInjector::new(9)
            .period(1)
            .spill_write_failures(2)
            .spill_read_corruptions(3);
        let writes = (0..10).filter(|_| f.should_fail_spill_write()).count();
        let reads = (0..10).filter(|_| f.should_corrupt_spill_read()).count();
        assert_eq!(writes, 2);
        assert_eq!(reads, 3);
        assert_eq!(f.spill_write_failures_injected(), 2);
        assert_eq!(f.spill_corruptions_injected(), 3);
    }

    #[test]
    fn spill_sites_use_distinct_streams() {
        // With period 2, the write and read streams must not be copies of the
        // morsel/charge streams: same seed, different rotate constants.
        let f = FaultInjector::new(1234)
            .period(2)
            .charge_failures(u64::MAX)
            .spill_write_failures(u64::MAX)
            .spill_read_corruptions(u64::MAX);
        let charges: Vec<bool> = (0..64).map(|_| f.should_fail_charge()).collect();
        let g = FaultInjector::new(1234)
            .period(2)
            .spill_write_failures(u64::MAX)
            .spill_read_corruptions(u64::MAX);
        let writes: Vec<bool> = (0..64).map(|_| g.should_fail_spill_write()).collect();
        let reads: Vec<bool> = (0..64).map(|_| g.should_corrupt_spill_read()).collect();
        assert_ne!(charges, writes);
        assert_ne!(writes, reads);
    }
}
