//! Unified error type for MD-join evaluation.

use std::fmt;

pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors surfaced while planning or evaluating an MD-join.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    Storage(mdj_storage::StorageError),
    Expr(mdj_expr::ExprError),
    Agg(mdj_agg::AggError),
    /// An aggregate output column collides with a `B` column or another
    /// aggregate output.
    DuplicateColumn(String),
    /// A configuration value is out of range (e.g. zero partitions).
    BadConfig(String),
    /// The query's [`CancelToken`](crate::governor::CancelToken) was
    /// triggered; evaluation stopped at the next cooperative check.
    Cancelled,
    /// The query ran past its wall-clock deadline.
    DeadlineExceeded,
    /// The memory budget could not be satisfied even after Theorem 4.1
    /// degradation (or the strategy does not support degradation). `needed`
    /// is the estimated bytes of the allocation that breached the budget.
    BudgetExceeded {
        needed: u64,
        budget: u64,
    },
    /// Admission control could not reserve the query's budget from the
    /// shared [`MemoryPool`](crate::governor::MemoryPool): the pool is
    /// exhausted (or the request exceeds its whole capacity) and no bytes
    /// freed within the admission wait. The query was *shed*, not started.
    PoolExhausted {
        needed: u64,
        available: u64,
        capacity: u64,
    },
    /// The admission wait queue is at its bound; the query was shed
    /// immediately instead of queued (overload back-pressure).
    QueueFull {
        waiting: usize,
        limit: usize,
    },
    /// A morsel panicked on every attempt; `attempts` counts the initial run
    /// plus all retries, and `message` is the final panic payload.
    MorselPanicked {
        morsel: usize,
        attempts: u32,
        message: String,
    },
    /// A worker thread died outside the per-morsel isolation boundary.
    WorkerPanicked {
        worker: usize,
        message: String,
    },
    /// An internal invariant broke. Always a bug — reported as a typed error
    /// instead of a panic so callers never see a poisoned run.
    Internal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Expr(e) => write!(f, "expression error: {e}"),
            CoreError::Agg(e) => write!(f, "aggregate error: {e}"),
            CoreError::DuplicateColumn(c) => {
                write!(f, "duplicate output column `{c}` in MD-join result")
            }
            CoreError::BadConfig(m) => write!(f, "bad configuration: {m}"),
            CoreError::Cancelled => write!(f, "query cancelled"),
            CoreError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            CoreError::BudgetExceeded { needed, budget } => write!(
                f,
                "memory budget exceeded: needed ≈{needed} B against a {budget} B budget \
                 (even at maximum Theorem 4.1 partitioning)"
            ),
            CoreError::PoolExhausted {
                needed,
                available,
                capacity,
            } => write!(
                f,
                "memory pool exhausted: needed {needed} B but only {available} B of the \
                 {capacity} B pool are free (query shed by admission control)"
            ),
            CoreError::QueueFull { waiting, limit } => write!(
                f,
                "admission queue full: {waiting} queries already waiting (limit {limit}); \
                 query shed"
            ),
            CoreError::MorselPanicked {
                morsel,
                attempts,
                message,
            } => write!(
                f,
                "morsel {morsel} panicked on all {attempts} attempts: {message}"
            ),
            CoreError::WorkerPanicked { worker, message } => {
                write!(f, "worker {worker} panicked: {message}")
            }
            CoreError::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl CoreError {
    /// True for errors raised by the query governor / fault-tolerance layer
    /// (as opposed to planning or data errors). The fault-injection property
    /// tests assert that any injected fault surfaces as one of these.
    pub fn is_governor(&self) -> bool {
        matches!(
            self,
            CoreError::Cancelled
                | CoreError::DeadlineExceeded
                | CoreError::BudgetExceeded { .. }
                | CoreError::PoolExhausted { .. }
                | CoreError::QueueFull { .. }
                | CoreError::MorselPanicked { .. }
                | CoreError::WorkerPanicked { .. }
        )
    }

    /// True for errors raised by the spill I/O layer: run-file write
    /// failures (ENOSPC, short write) and corruption detected on read. The
    /// spill fault-injection tests assert that every injected spill fault
    /// surfaces as one of these — never as a wrong answer or a panic.
    pub fn is_spill(&self) -> bool {
        matches!(
            self,
            CoreError::Storage(
                mdj_storage::StorageError::SpillIo { .. }
                    | mdj_storage::StorageError::SpillCorrupt { .. }
            )
        )
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Expr(e) => Some(e),
            CoreError::Agg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mdj_storage::StorageError> for CoreError {
    fn from(e: mdj_storage::StorageError) -> Self {
        match e {
            // A buffer-pool starvation is the same governor condition as an
            // admission-control shed: keep it retryable, not a storage fault.
            mdj_storage::StorageError::PoolExhausted {
                needed,
                available,
                capacity,
            } => CoreError::PoolExhausted {
                needed,
                available,
                capacity,
            },
            other => CoreError::Storage(other),
        }
    }
}

impl From<mdj_expr::ExprError> for CoreError {
    fn from(e: mdj_expr::ExprError) -> Self {
        CoreError::Expr(e)
    }
}

impl From<mdj_agg::AggError> for CoreError {
    fn from(e: mdj_agg::AggError) -> Self {
        CoreError::Agg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = mdj_agg::AggError::UnknownFunction("x".into()).into();
        assert!(e.to_string().contains("aggregate"));
        let e: CoreError = mdj_storage::StorageError::UnknownRelation("T".into()).into();
        assert!(e.to_string().contains("storage"));
        let e = CoreError::DuplicateColumn("sum_sale".into());
        assert!(e.to_string().contains("sum_sale"));
    }

    #[test]
    fn governor_errors_display_and_classify() {
        let cases: Vec<CoreError> = vec![
            CoreError::Cancelled,
            CoreError::DeadlineExceeded,
            CoreError::BudgetExceeded {
                needed: 2048,
                budget: 1024,
            },
            CoreError::MorselPanicked {
                morsel: 7,
                attempts: 3,
                message: "boom".into(),
            },
            CoreError::WorkerPanicked {
                worker: 2,
                message: "boom".into(),
            },
            CoreError::PoolExhausted {
                needed: 512,
                available: 128,
                capacity: 4096,
            },
            CoreError::QueueFull {
                waiting: 9,
                limit: 8,
            },
        ];
        for e in &cases {
            assert!(e.is_governor(), "{e}");
            assert!(!e.to_string().is_empty());
        }
        assert!(!CoreError::BadConfig("x".into()).is_governor());
        assert!(!CoreError::Internal("x".into()).is_governor());
        for e in &cases {
            assert!(!e.is_spill(), "{e}");
        }
        let budget = &cases[2];
        assert!(budget.to_string().contains("2048"));
        assert!(budget.to_string().contains("1024"));
    }

    #[test]
    fn spill_errors_classify() {
        let io: CoreError = mdj_storage::StorageError::SpillIo {
            path: "/tmp/run".into(),
            detail: "disk full".into(),
        }
        .into();
        let corrupt: CoreError = mdj_storage::StorageError::SpillCorrupt {
            path: "/tmp/run".into(),
            detail: "checksum mismatch".into(),
        }
        .into();
        assert!(io.is_spill());
        assert!(corrupt.is_spill());
        assert!(!io.is_governor());
        let other: CoreError = mdj_storage::StorageError::UnknownRelation("T".into()).into();
        assert!(!other.is_spill());
    }

    #[test]
    fn buffer_pool_exhaustion_maps_to_the_governor_variant() {
        let e: CoreError = mdj_storage::StorageError::PoolExhausted {
            needed: 512,
            available: 128,
            capacity: 4096,
        }
        .into();
        assert_eq!(
            e,
            CoreError::PoolExhausted {
                needed: 512,
                available: 128,
                capacity: 4096,
            }
        );
        assert!(e.is_governor());
        assert!(!e.is_spill());
    }
}
