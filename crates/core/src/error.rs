//! Unified error type for MD-join evaluation.

use std::fmt;

pub type Result<T, E = CoreError> = std::result::Result<T, E>;

/// Errors surfaced while planning or evaluating an MD-join.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    Storage(mdj_storage::StorageError),
    Expr(mdj_expr::ExprError),
    Agg(mdj_agg::AggError),
    /// An aggregate output column collides with a `B` column or another
    /// aggregate output.
    DuplicateColumn(String),
    /// A configuration value is out of range (e.g. zero partitions).
    BadConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::Expr(e) => write!(f, "expression error: {e}"),
            CoreError::Agg(e) => write!(f, "aggregate error: {e}"),
            CoreError::DuplicateColumn(c) => {
                write!(f, "duplicate output column `{c}` in MD-join result")
            }
            CoreError::BadConfig(m) => write!(f, "bad configuration: {m}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Expr(e) => Some(e),
            CoreError::Agg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mdj_storage::StorageError> for CoreError {
    fn from(e: mdj_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<mdj_expr::ExprError> for CoreError {
    fn from(e: mdj_expr::ExprError) -> Self {
        CoreError::Expr(e)
    }
}

impl From<mdj_agg::AggError> for CoreError {
    fn from(e: mdj_agg::AggError) -> Self {
        CoreError::Agg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = mdj_agg::AggError::UnknownFunction("x".into()).into();
        assert!(e.to_string().contains("aggregate"));
        let e: CoreError = mdj_storage::StorageError::UnknownRelation("T".into()).into();
        assert!(e.to_string().contains("storage"));
        let e = CoreError::DuplicateColumn("sum_sale".into());
        assert!(e.to_string().contains("sum_sale"));
    }
}
