//! The `MdJoin` builder — the single entrypoint for every evaluation mode.
//!
//! All of the crate's evaluators (serial Algorithm 3.1, the Theorem 4.1
//! partitioned and statically-chunked parallel plans, the morsel-driven
//! work-stealing executor, and the generalized multi-θ MD-join of Section
//! 4.3) are reachable from one fluent surface:
//!
//! ```
//! use mdj_core::prelude::*;
//! use mdj_expr::builder::*;
//! use mdj_storage::{Relation, Row, Schema, DataType, Value};
//!
//! let sales = Relation::from_rows(
//!     Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Float)]),
//!     vec![Row::new(vec![Value::Int(1), Value::Float(10.0)]),
//!          Row::new(vec![Value::Int(1), Value::Float(30.0)])],
//! );
//! let b = sales.distinct_on(&["cust"]).unwrap();
//! let out = MdJoin::new(&b, &sales)
//!     .theta(eq(col_b("cust"), col_r("cust")))
//!     .agg("avg(sale)")
//!     .unwrap()
//!     .run(&ExecContext::new())
//!     .unwrap();
//! assert_eq!(out.rows()[0][1], Value::Float(20.0));
//! ```
//!
//! The free functions (`md_join`, `md_join_parallel`, …) remain as deprecated
//! shims over the same internals for one release.

use crate::context::ExecContext;
use crate::cost::{self, DegradeMode};
use crate::error::{CoreError, Result};
use crate::generalized::{multi, multi_vectorized, Block};
use crate::governor::{self, CancelToken, MemoryTracker};
use crate::mdjoin::md_join_serial;
use crate::morsel::{md_join_morsel, md_join_morsel_opts, MorselSide};
use crate::parallel::{chunk_base, chunk_detail};
use crate::partitioned::partitioned;
use crate::spill_exec::{md_join_spilled, partition_key_width};
use crate::vectorized::{batch_coverage, md_join_vectorized};
use mdj_agg::AggSpec;
use mdj_expr::Expr;
use mdj_storage::{Relation, Schema};
use std::sync::Arc;
use std::time::Duration;

/// Which evaluation plan [`MdJoin::run`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecStrategy {
    /// Pick a plan from the input sizes: serial for small inputs or a single
    /// thread, otherwise the morsel executor with an auto-chosen side.
    #[default]
    Auto,
    /// Single-threaded Algorithm 3.1.
    Serial,
    /// Theorem 4.1 memory-bounded plan: `B` in `partitions` sequential
    /// chunks, one scan of `R` per chunk.
    Partitioned { partitions: usize },
    /// Static parallel plan: `B` pre-split into one chunk per thread, each
    /// worker scanning all of `R` (the paper's Section 4.1.2 plan).
    ChunkBase,
    /// Static parallel plan over `R`: one chunk per thread, per-worker
    /// full-`B` states merged at the end.
    ChunkDetail,
    /// Morsel-driven work-stealing executor, side chosen from cardinalities.
    Morsel,
    /// Morsel executor over `B` (memory-bounded; `R` re-scanned per morsel).
    MorselBase,
    /// Morsel executor over `R` (one logical scan; partial-state merge).
    MorselDetail,
    /// Vectorized batch execution: `R` is processed in columnar chunks with
    /// selection-vector prefilters, batched integer-key probing, and typed
    /// aggregate kernels (see [`crate::vectorized`]). Runs serially on small
    /// inputs or one thread, otherwise composes with the morsel executor
    /// (each morsel evaluated as one batch). Shapes without a vectorized
    /// form fall back per batch to the scalar interpreter; output is always
    /// row-identical to [`ExecStrategy::Serial`].
    Vectorized,
}

/// Builder for `MD(B, R, l, θ)` over borrowed inputs. See the module docs
/// for an end-to-end example.
#[derive(Debug, Clone)]
pub struct MdJoin<'a> {
    b: &'a Relation,
    r: &'a Relation,
    theta: Option<Expr>,
    aggs: Vec<AggSpec>,
    blocks: Vec<Block>,
    strategy: ExecStrategy,
    threads: Option<usize>,
    cancel: Option<CancelToken>,
    deadline: Option<Duration>,
    budget: Option<usize>,
}

impl<'a> MdJoin<'a> {
    /// Start a builder joining detail `r` onto base-values `b`.
    pub fn new(b: &'a Relation, r: &'a Relation) -> Self {
        MdJoin {
            b,
            r,
            theta: None,
            aggs: Vec::new(),
            blocks: Vec::new(),
            strategy: ExecStrategy::default(),
            threads: None,
            cancel: None,
            deadline: None,
            budget: None,
        }
    }

    /// Set the θ-condition for the leading aggregate list.
    pub fn theta(mut self, theta: Expr) -> Self {
        self.theta = Some(theta);
        self
    }

    /// Append aggregates to the leading list.
    pub fn aggs(mut self, l: &[AggSpec]) -> Self {
        self.aggs.extend_from_slice(l);
        self
    }

    /// Append one aggregate from a spec string (`"sum(sale)"`,
    /// `"avg(sale) as a"`, `"count(*)"`).
    pub fn agg(mut self, spec: &str) -> Result<Self> {
        self.aggs.push(AggSpec::parse(spec)?);
        Ok(self)
    }

    /// Append an already-built [`AggSpec`].
    pub fn agg_spec(mut self, spec: AggSpec) -> Self {
        self.aggs.push(spec);
        self
    }

    /// Append a further (θ, l) block, turning the join into the generalized
    /// `MD(B, R, (l₁..l_k), (θ₁..θ_k))` of Section 4.3 (single scan of `R`).
    pub fn block(mut self, theta: Expr, aggs: Vec<AggSpec>) -> Self {
        self.blocks.push(Block::new(theta, aggs));
        self
    }

    /// Append several pre-built blocks.
    pub fn blocks(mut self, blocks: impl IntoIterator<Item = Block>) -> Self {
        self.blocks.extend(blocks);
        self
    }

    /// Choose the evaluation plan (default: [`ExecStrategy::Auto`]).
    pub fn strategy(mut self, strategy: ExecStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Worker count for the parallel strategies. Defaults to the machine's
    /// available parallelism; ignored by `Serial` / `Partitioned`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attach a cancellation token for this run. Cancel it from any thread to
    /// stop the query at its next governor poll with
    /// [`CoreError::Cancelled`]. Overrides any token on the [`ExecContext`].
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Give this run `budget` of wall-clock time (measured from the `run`
    /// call); past it the query stops with [`CoreError::DeadlineExceeded`].
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Bound the estimated memory footprint of this run. Serial, partitioned,
    /// and `Auto` plans answer a breach by re-planning into Theorem 4.1
    /// partitioned evaluation (raising `m` until each `Bᵢ` fits); explicitly
    /// requested parallel plans surface [`CoreError::BudgetExceeded`].
    pub fn budget_bytes(mut self, bytes: usize) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// Assemble the effective block list: the leading (θ, l) pair, if set,
    /// followed by any explicitly added blocks.
    fn effective_blocks(&self) -> Result<Vec<Block>> {
        let mut blocks = Vec::with_capacity(self.blocks.len() + 1);
        match (&self.theta, self.aggs.is_empty()) {
            (Some(theta), _) => blocks.push(Block::new(theta.clone(), self.aggs.clone())),
            (None, false) => {
                return Err(CoreError::BadConfig(
                    "aggregates were added but no θ-condition was set".into(),
                ));
            }
            (None, true) => {}
        }
        blocks.extend(self.blocks.iter().cloned());
        if blocks.is_empty() {
            return Err(CoreError::BadConfig(
                "MD-join needs a θ-condition (or at least one block)".into(),
            ));
        }
        // Two aggregates resolving to the same output column would silently
        // shadow each other in the result schema: reject up front, across
        // the whole block list (all blocks share one output row).
        let mut seen = std::collections::HashSet::new();
        for block in &blocks {
            for spec in &block.aggs {
                let name = spec.output_name();
                if !seen.insert(name.clone()) {
                    return Err(CoreError::DuplicateColumn(name));
                }
            }
        }
        Ok(blocks)
    }

    fn resolve_threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// The output schema [`run`](Self::run) will produce.
    pub fn output_schema(&self, ctx: &ExecContext) -> Result<Schema> {
        let blocks = self.effective_blocks()?;
        crate::generalized::multi_output_schema(
            self.b.schema(),
            self.r.schema(),
            &blocks,
            ctx.registry(),
        )
    }

    /// Evaluate the join.
    pub fn run(&self, ctx: &ExecContext) -> Result<Relation> {
        if self.cancel.is_none() && self.deadline.is_none() && self.budget.is_none() {
            return self.run_with(ctx);
        }
        // Per-run governor overrides: applied to a clone so the caller's
        // context (possibly shared across queries) is never mutated.
        let mut ctx = ctx.clone();
        if let Some(token) = &self.cancel {
            ctx.set_cancel_token(Some(token.clone()));
        }
        if let Some(budget) = self.deadline {
            ctx.set_deadline_at(Some(std::time::Instant::now() + budget));
        }
        if let Some(bytes) = self.budget {
            ctx.set_memory(Some(Arc::new(MemoryTracker::new(bytes))));
        }
        self.run_with(&ctx)
    }

    fn run_with(&self, ctx: &ExecContext) -> Result<Relation> {
        let mut blocks = self.effective_blocks()?;
        if blocks.len() > 1 {
            // Generalized multi-θ evaluation is single-scan by construction;
            // the serial interpreter and the fused batch executor implement
            // it (parallel strategies do not).
            return match self.strategy {
                ExecStrategy::Serial => multi(self.b, self.r, &blocks, ctx),
                ExecStrategy::Vectorized => multi_vectorized(self.b, self.r, &blocks, ctx),
                ExecStrategy::Auto => {
                    // Combined coverage across all condition sets: the fused
                    // executor shares one chunk transposition per batch, so
                    // it is chosen on the same covered-majority rule as the
                    // single-join path, summed over the sets.
                    let mut cov = crate::vectorized::BatchCoverage {
                        covered: 0,
                        total: 0,
                        hash: false,
                    };
                    for blk in &blocks {
                        let c = batch_coverage(self.b, &blk.theta, &blk.aggs, ctx);
                        cov.covered += c.covered;
                        cov.total += c.total;
                        cov.hash |= c.hash;
                    }
                    let fused = cov.choose_vectorized();
                    ctx.record_auto_decision(cov.permille(), fused);
                    if fused {
                        multi_vectorized(self.b, self.r, &blocks, ctx)
                    } else {
                        multi(self.b, self.r, &blocks, ctx)
                    }
                }
                _ => Err(CoreError::BadConfig(format!(
                    "strategy {:?} does not support multi-block (generalized) MD-joins",
                    self.strategy
                ))),
            };
        }
        let Block { theta, aggs } = blocks
            .pop()
            .ok_or_else(|| CoreError::Internal("effective_blocks yielded no block".into()))?;
        match self.strategy {
            ExecStrategy::Serial => run_degradable(self.b, self.r, &aggs, &theta, ctx, 1, false),
            ExecStrategy::Partitioned { partitions } => {
                if partitions == 0 {
                    return Err(CoreError::BadConfig("partition count must be ≥ 1".into()));
                }
                run_degradable(self.b, self.r, &aggs, &theta, ctx, partitions, false)
            }
            ExecStrategy::Vectorized => {
                let threads = self.resolve_threads();
                let splittable = self.b.len().max(self.r.len());
                if threads <= 1 || splittable <= ctx.morsel_size() {
                    run_degradable(self.b, self.r, &aggs, &theta, ctx, 1, true)
                } else {
                    md_join_morsel_opts(
                        self.b,
                        self.r,
                        &aggs,
                        &theta,
                        threads,
                        MorselSide::Auto,
                        ctx,
                        true,
                    )
                }
            }
            ExecStrategy::ChunkBase => {
                chunk_base(self.b, self.r, &aggs, &theta, self.resolve_threads(), ctx)
            }
            ExecStrategy::ChunkDetail => {
                chunk_detail(self.b, self.r, &aggs, &theta, self.resolve_threads(), ctx)
            }
            ExecStrategy::Morsel => md_join_morsel(
                self.b,
                self.r,
                &aggs,
                &theta,
                self.resolve_threads(),
                MorselSide::Auto,
                ctx,
            ),
            ExecStrategy::MorselBase => md_join_morsel(
                self.b,
                self.r,
                &aggs,
                &theta,
                self.resolve_threads(),
                MorselSide::Base,
                ctx,
            ),
            ExecStrategy::MorselDetail => md_join_morsel(
                self.b,
                self.r,
                &aggs,
                &theta,
                self.resolve_threads(),
                MorselSide::Detail,
                ctx,
            ),
            ExecStrategy::Auto => {
                let threads = self.resolve_threads();
                // Coverage cost model: estimate what fraction of the per-
                // tuple work (probe, prefilter, residual, aggregates) stays
                // on the batched path, and vectorize when the covered
                // majority outweighs the per-batch fallback overhead. The
                // decision is recorded so explain output can show it.
                let coverage = batch_coverage(self.b, &theta, &aggs, ctx);
                let vectorized = coverage.choose_vectorized();
                ctx.record_auto_decision(coverage.permille(), vectorized);
                // Memory-first planning: the morsel executor's detail side
                // keeps full-`B` state per worker, so when a budget is set
                // and the parallel footprint would breach it, prefer the
                // degradable serial/partitioned path (Theorem 4.1) over a
                // parallel plan that can only fail.
                if let Some(tracker) = ctx.memory() {
                    let per_worker = governor::state_bytes(self.b.len(), aggs.len())
                        .saturating_add(governor::index_bytes(self.b.len()));
                    let parallel_cost = per_worker.saturating_mul(threads.max(1));
                    if parallel_cost as u64 > tracker.budget() {
                        return run_degradable(self.b, self.r, &aggs, &theta, ctx, 1, vectorized);
                    }
                }
                // A parallel run only pays off once the split side spans
                // several morsels; below that, scheduling overhead dominates.
                let splittable = self.b.len().max(self.r.len());
                if threads <= 1 || splittable <= ctx.morsel_size() {
                    run_degradable(self.b, self.r, &aggs, &theta, ctx, 1, vectorized)
                } else {
                    md_join_morsel_opts(
                        self.b,
                        self.r,
                        &aggs,
                        &theta,
                        threads,
                        MorselSide::Auto,
                        ctx,
                        vectorized,
                    )
                }
            }
        }
    }
}

/// Serial/partitioned evaluation with Theorem 4.1 budget degradation.
///
/// Starts at `m` partitions (`1` = plain serial). On
/// [`CoreError::BudgetExceeded`] the partition count is raised to the
/// largest of three estimates — `⌈m · peak / budget⌉` from the tracker's
/// high-water mark, the cost model's [`cost::cost_partitions`] static
/// sizing, and `m + 1` for guaranteed progress — and the query re-runs.
/// Each retry is counted as a degradation event in
/// [`ScanStats`](mdj_storage::ScanStats). The loop is bounded by `m = |B|`
/// (one base row per partition, the finest Theorem 4.1 split); a budget too
/// small even for that surfaces the breach to the caller.
///
/// How each degraded retry feeds `R` to its partitions is a costed choice
/// ([`cost::choose_mode`], steered by [`ExecContext::spill`]): re-scan the
/// in-memory `R` once per partition, or hash-partition `R` to disk run
/// files once and read each partition's file ([`md_join_spilled`]). Spill
/// I/O errors propagate as typed [`CoreError::Storage`] errors — they are
/// never silently retried on the rescan path, so fault-injection tests see
/// exactly the failure they armed.
///
/// With `vectorized`, the single-partition attempt runs the batched
/// evaluator; degraded (`m > 1`) retries always use the scalar partitioned
/// plan — degradation means memory pressure, where batch scratch buffers are
/// the wrong trade.
fn run_degradable(
    b: &Relation,
    r: &Relation,
    aggs: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
    mut m: usize,
    vectorized: bool,
) -> Result<Relation> {
    let mut mode = DegradeMode::Rescan;
    loop {
        let attempt = if m <= 1 {
            if vectorized {
                md_join_vectorized(b, r, aggs, theta, ctx)
            } else {
                md_join_serial(b, r, aggs, theta, ctx)
            }
        } else if mode == DegradeMode::Spill {
            md_join_spilled(b, r, aggs, theta, m, ctx)
        } else {
            partitioned(b, r, aggs, theta, m, ctx)
        };
        match attempt {
            Err(CoreError::BudgetExceeded { .. }) if m < b.len() => {
                let tracker = ctx.memory().ok_or_else(|| {
                    CoreError::Internal("budget breach reported without a tracker".into())
                })?;
                let peak = tracker.peak().max(1);
                let budget = tracker.budget().max(1);
                // Total footprint ≈ m × per-partition peak, so the smallest
                // fitting count is its ratio to the budget; the cost model's
                // static sizing usually lands on a feasible m in one step
                // where the observed peak alone would ratchet breach by
                // breach (never shrinking, always progressing, capped at one
                // row per partition).
                let scaled = (m as u64).saturating_mul(peak).div_ceil(budget) as usize;
                let key_width = partition_key_width(b.schema(), theta);
                let costed = cost::cost_partitions(b.len(), aggs.len(), key_width, budget);
                m = scaled.max(costed).max(m + 1).min(b.len());
                mode = cost::choose_mode(m, r.len(), key_width, ctx.spill_policy());
                ctx.record_degradation();
                tracker.reset_peak();
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, Row, Schema, Value};

    fn sales(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Int),
        ]);
        Relation::from_rows(
            schema,
            (0..n)
                .map(|i| {
                    Row::from_values(vec![
                        Value::Int(i % 11),
                        Value::str(if i % 3 == 0 { "NY" } else { "NJ" }),
                        Value::Int(i),
                    ])
                })
                .collect(),
        )
    }

    #[test]
    fn builder_api_schema() {
        let s = sales(50);
        let b = s.distinct_on(&["cust"]).unwrap();
        let join = MdJoin::new(&b, &s)
            .theta(eq(col_b("cust"), col_r("cust")))
            .agg("sum(sale) as total")
            .unwrap()
            .agg("count(*)")
            .unwrap();
        let out = join.run(&ExecContext::new()).unwrap();
        assert_eq!(out.schema().names(), vec!["cust", "total", "count_star"]);
        assert_eq!(
            join.output_schema(&ExecContext::new()).unwrap(),
            *out.schema()
        );
    }

    #[test]
    fn every_strategy_matches_serial() {
        let s = sales(500);
        let b = s.distinct_on(&["cust"]).unwrap();
        let l = [
            AggSpec::on_column("sum", "sale"),
            AggSpec::on_column("avg", "sale"),
            AggSpec::count_star(),
        ];
        let theta = eq(col_b("cust"), col_r("cust"));
        let mk = || MdJoin::new(&b, &s).theta(theta.clone()).aggs(&l).threads(4);
        let serial = mk()
            .strategy(ExecStrategy::Serial)
            .run(&ExecContext::new())
            .unwrap();
        let strategies = [
            ExecStrategy::Auto,
            ExecStrategy::Partitioned { partitions: 3 },
            ExecStrategy::ChunkBase,
            ExecStrategy::ChunkDetail,
            ExecStrategy::Morsel,
            ExecStrategy::MorselBase,
            ExecStrategy::MorselDetail,
            ExecStrategy::Vectorized,
        ];
        let ctx = ExecContext::new().with_morsel_size(32);
        for strategy in strategies {
            let out = mk().strategy(strategy).run(&ctx).unwrap();
            assert!(serial.same_multiset(&out), "strategy {strategy:?}");
        }
    }

    #[test]
    fn multi_block_pivot() {
        let s = sales(60);
        let b = s.distinct_on(&["cust"]).unwrap();
        let block = |state: &str| {
            (
                and(
                    eq(col_b("cust"), col_r("cust")),
                    eq(col_r("state"), lit(state)),
                ),
                vec![AggSpec::on_column("sum", "sale")
                    .with_alias(format!("sum_{}", state.to_lowercase()))],
            )
        };
        let (t1, l1) = block("NY");
        let (t2, l2) = block("NJ");
        let out = MdJoin::new(&b, &s)
            .theta(t1)
            .aggs(&l1)
            .block(t2, l2)
            .run(&ExecContext::new())
            .unwrap();
        assert_eq!(out.schema().names(), vec!["cust", "sum_ny", "sum_nj"]);
        assert_eq!(out.len(), b.len());
    }

    #[test]
    fn multi_block_vectorized_and_auto_run_fused() {
        use mdj_storage::ScanStats;
        let s = sales(200);
        let b = s.distinct_on(&["cust"]).unwrap();
        let block = |state: &str| {
            (
                and(
                    eq(col_b("cust"), col_r("cust")),
                    eq(col_r("state"), lit(state)),
                ),
                vec![AggSpec::on_column("sum", "sale")
                    .with_alias(format!("sum_{}", state.to_lowercase()))],
            )
        };
        let run = |strategy: ExecStrategy, stats: Arc<ScanStats>| {
            let (t1, l1) = block("NY");
            let (t2, l2) = block("NJ");
            let ctx = ExecContext::new().with_morsel_size(64).with_stats(stats);
            MdJoin::new(&b, &s)
                .theta(t1)
                .aggs(&l1)
                .block(t2, l2)
                .strategy(strategy)
                .run(&ctx)
                .unwrap()
        };
        let serial = run(ExecStrategy::Serial, Arc::new(ScanStats::new()));
        for strategy in [ExecStrategy::Vectorized, ExecStrategy::Auto] {
            let stats = Arc::new(ScanStats::new());
            let out = run(strategy, stats.clone());
            assert_eq!(serial.rows(), out.rows(), "{strategy:?}");
            // Both route to the fused executor: per-set counters move and
            // no set fell back for this fully covered pivot.
            assert_eq!(stats.gen_sets(), 2, "{strategy:?}");
            assert_eq!(stats.gen_set_fallbacks(), 0, "{strategy:?}");
            assert_eq!(stats.scans(), 1, "{strategy:?}");
        }
    }

    #[test]
    fn multi_block_rejects_parallel_strategies() {
        let s = sales(30);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let err = MdJoin::new(&b, &s)
            .theta(theta.clone())
            .agg("sum(sale)")
            .unwrap()
            .block(theta, vec![AggSpec::count_star()])
            .strategy(ExecStrategy::Morsel)
            .run(&ExecContext::new());
        assert!(matches!(err, Err(CoreError::BadConfig(_))));
    }

    #[test]
    fn misconfigurations_rejected() {
        let s = sales(10);
        let b = s.distinct_on(&["cust"]).unwrap();
        // No θ at all.
        let err = MdJoin::new(&b, &s).run(&ExecContext::new());
        assert!(matches!(err, Err(CoreError::BadConfig(_))));
        // Aggregates without a θ.
        let err = MdJoin::new(&b, &s)
            .agg("count(*)")
            .unwrap()
            .run(&ExecContext::new());
        assert!(matches!(err, Err(CoreError::BadConfig(_))));
        // Zero threads / zero partitions.
        let theta = eq(col_b("cust"), col_r("cust"));
        for strategy in [
            ExecStrategy::ChunkBase,
            ExecStrategy::ChunkDetail,
            ExecStrategy::Morsel,
        ] {
            let err = MdJoin::new(&b, &s)
                .theta(theta.clone())
                .agg("count(*)")
                .unwrap()
                .strategy(strategy)
                .threads(0)
                .run(&ExecContext::new());
            assert!(matches!(err, Err(CoreError::BadConfig(_))), "{strategy:?}");
        }
        let err = MdJoin::new(&b, &s)
            .theta(theta)
            .agg("count(*)")
            .unwrap()
            .strategy(ExecStrategy::Partitioned { partitions: 0 })
            .run(&ExecContext::new());
        assert!(matches!(err, Err(CoreError::BadConfig(_))));
    }

    #[test]
    fn budget_degrades_into_partitioned_evaluation() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let s = sales(400);
        let b = s.distinct_on(&["cust"]).unwrap(); // 11 rows
        let theta = eq(col_b("cust"), col_r("cust"));
        let l = [AggSpec::on_column("sum", "sale"), AggSpec::count_star()];
        let serial = MdJoin::new(&b, &s)
            .theta(theta.clone())
            .aggs(&l)
            .strategy(ExecStrategy::Serial)
            .run(&ExecContext::new())
            .unwrap();
        // Budget fits ~3 base rows of state+index: forces Theorem 4.1
        // degradation but is satisfiable well before one-row partitions.
        let per_row = governor::state_bytes(1, l.len()) + governor::index_bytes(1);
        let stats = Arc::new(ScanStats::new());
        let out = MdJoin::new(&b, &s)
            .theta(theta.clone())
            .aggs(&l)
            .strategy(ExecStrategy::Serial)
            .budget_bytes(3 * per_row)
            .run(&ExecContext::new().with_stats(stats.clone()))
            .unwrap();
        assert_eq!(serial.rows(), out.rows()); // row-identical, same order
        assert!(stats.degradations() >= 1);
        assert!(stats.scans() > 1, "degradation must cost extra scans of R");
        // A budget too small even for one-row partitions surfaces the breach.
        let err = MdJoin::new(&b, &s)
            .theta(theta)
            .aggs(&l)
            .strategy(ExecStrategy::Serial)
            .budget_bytes(1)
            .run(&ExecContext::new());
        assert!(matches!(err, Err(CoreError::BudgetExceeded { .. })));
    }

    #[test]
    fn budget_meters_holistic_growth() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        // 4 base rows, 50 detail values each: every median state's reservoir
        // grows to ≥ 400 heap bytes, invisible to the fixed per-row estimate.
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Int)]);
        let s = Relation::from_rows(
            schema,
            (0..200i64).map(|i| Row::from_values([i % 4, i])).collect(),
        );
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let l = [AggSpec::on_column("median", "sale")];
        let serial = MdJoin::new(&b, &s)
            .theta(theta.clone())
            .aggs(&l)
            .strategy(ExecStrategy::Serial)
            .run(&ExecContext::new())
            .unwrap();
        // Fixed m=1 footprint: 4×(32 + 1×64) state + 4×48 index + 4×24 key
        // = 672 bytes — fits a 1500-byte budget. The ~2 KiB of metered
        // reservoir growth breaches it mid-scan, forcing Theorem 4.1
        // degradation; at m=2 each partition's fixed + growth cost fits.
        let stats = Arc::new(ScanStats::new());
        let out = MdJoin::new(&b, &s)
            .theta(theta)
            .aggs(&l)
            .strategy(ExecStrategy::Serial)
            .budget_bytes(1500)
            .run(&ExecContext::new().with_stats(stats.clone()))
            .unwrap();
        assert_eq!(serial.rows(), out.rows());
        assert!(
            stats.degradations() >= 1,
            "holistic growth must trigger degradation"
        );
        assert!(stats.bytes_charged() > 672, "growth must be metered");
    }

    #[test]
    fn auto_vectorizes_on_majority_batch_coverage() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let s = sales(300);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let run = |specs: &[&str]| {
            let stats = Arc::new(ScanStats::new());
            let mut j = MdJoin::new(&b, &s).theta(theta.clone());
            for spec in specs {
                j = j.agg(spec).unwrap();
            }
            j.threads(1)
                .run(
                    &ExecContext::new()
                        .with_morsel_size(64)
                        .with_stats(stats.clone()),
                )
                .unwrap();
            stats
        };
        // Fully kernel-covered: Auto takes the batched path.
        let stats = run(&["sum(sale)"]);
        assert!(stats.batches() > 0);
        assert_eq!(stats.auto_decisions(), 1);
        assert!(stats.auto_batched());
        assert_eq!(stats.auto_coverage_permille(), 1000);
        // Holistic aggregate alone: probe covered, aggregate not — exactly
        // half, below the strict-majority cut, so Auto stays scalar.
        let stats = run(&["median(sale)"]);
        assert_eq!(stats.batches(), 0);
        assert_eq!(stats.auto_decisions(), 1);
        assert!(!stats.auto_batched());
        assert_eq!(stats.auto_coverage_permille(), 500);
        // One holistic among kernel aggregates: 2/3 covered — Auto batches
        // now (the old all-or-nothing gate kept this scalar).
        let stats = run(&["sum(sale)", "median(sale)"]);
        assert!(stats.batches() > 0);
        assert!(stats.auto_batched());
        assert_eq!(stats.auto_coverage_permille(), 666);
    }

    #[test]
    fn run_overrides_do_not_mutate_the_callers_context() {
        let s = sales(50);
        let b = s.distinct_on(&["cust"]).unwrap();
        let ctx = ExecContext::new();
        let token = crate::governor::CancelToken::new();
        token.cancel();
        let err = MdJoin::new(&b, &s)
            .theta(eq(col_b("cust"), col_r("cust")))
            .agg("count(*)")
            .unwrap()
            .cancel_token(token)
            .run(&ctx);
        assert!(matches!(err, Err(CoreError::Cancelled)));
        assert!(ctx.cancel().is_none() && ctx.memory().is_none() && ctx.deadline().is_none());
        // The same builder without the token still runs under the same ctx.
        MdJoin::new(&b, &s)
            .theta(eq(col_b("cust"), col_r("cust")))
            .agg("count(*)")
            .unwrap()
            .run(&ctx)
            .unwrap();
    }

    #[test]
    fn deadline_expiry_and_generous_deadline() {
        let s = sales(200);
        let b = s.distinct_on(&["cust"]).unwrap();
        let mk = || {
            MdJoin::new(&b, &s)
                .theta(eq(col_b("cust"), col_r("cust")))
                .agg("count(*)")
                .unwrap()
        };
        let err = mk().deadline(Duration::ZERO).run(&ExecContext::new());
        assert!(matches!(err, Err(CoreError::DeadlineExceeded)));
        mk().deadline(Duration::from_secs(3600))
            .run(&ExecContext::new())
            .unwrap();
    }

    #[test]
    fn auto_uses_serial_for_tiny_inputs_and_parallel_for_large() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let theta = eq(col_b("cust"), col_r("cust"));
        // Tiny: no worker stats recorded (serial path).
        let s = sales(20);
        let b = s.distinct_on(&["cust"]).unwrap();
        let stats = Arc::new(ScanStats::new());
        MdJoin::new(&b, &s)
            .theta(theta.clone())
            .agg("count(*)")
            .unwrap()
            .threads(4)
            .run(&ExecContext::new().with_stats(stats.clone()))
            .unwrap();
        assert!(stats.workers().is_empty());
        // Large: the morsel executor reports its workers.
        let s = sales(2000);
        let b = s.distinct_on(&["cust"]).unwrap();
        let stats = Arc::new(ScanStats::new());
        MdJoin::new(&b, &s)
            .theta(theta)
            .agg("count(*)")
            .unwrap()
            .threads(4)
            .run(
                &ExecContext::new()
                    .with_morsel_size(128)
                    .with_stats(stats.clone()),
            )
            .unwrap();
        assert_eq!(stats.workers().len(), 4);
    }
}
