//! Degradation cost model: pricing the two answers to a budget breach.
//!
//! When the governor reports [`CoreError::BudgetExceeded`](crate::CoreError)
//! the builder re-plans into Theorem 4.1 partitioned evaluation with `m`
//! partitions of `B`. There are two ways to feed each partition its detail
//! tuples:
//!
//! * **Rescan** — scan the in-memory `R` once per partition: `m·|R|` tuples
//!   touched (the paper's "well-defined increase in the number of scans of
//!   R").
//! * **Spill** — hash-partition `R` to disk run files once on θ's equality
//!   bindings, then evaluate each `(Bᵢ, Rᵢ)` pair from its file: every tuple
//!   is touched once to route it, once more when its partition is read back,
//!   plus priced run-file I/O.
//!
//! Costs are in the crate's machine-independent currency — tuples touched —
//! with disk traffic converted at fixed multipliers, mirroring the E5 model
//! in `mdj-algebra` (which this crate cannot depend on). The multipliers are
//! deliberately pessimistic about I/O: spilling only wins when `R` is large
//! *and* the partition count is high, which is exactly the regime where
//! `m·|R|` re-scanning explodes.
//!
//! This module also closes the deferred roadmap item of choosing the
//! degradation partition count from the cost model instead of only scaling
//! the observed peak: [`cost_partitions`] computes the smallest `m` whose
//! per-partition static footprint (aggregate state + probe index) fits the
//! budget, so one degradation step usually lands on a feasible plan instead
//! of ratcheting `m` up breach by breach.

use crate::context::SpillPolicy;
use crate::governor;

/// Cost of writing one spilled tuple, in touched-tuple units. Sequential
/// appends are cheap but not free.
pub const SPILL_WRITE_COST: u64 = 4;

/// Cost of reading one spilled tuple back, in touched-tuple units.
pub const SPILL_READ_COST: u64 = 2;

/// Fixed per-run-file overhead (create/seal/checksum/unlink), in
/// touched-tuple units. Keeps tiny inputs from spilling into `m` files that
/// cost more to open than to fill.
pub const SPILL_FILE_OVERHEAD: u64 = 512;

/// Cost of one cold page read from the paged table store (seek + checksum
/// verification + row decode), in touched-tuple units. A page is priced like
/// a small batch of spill reads: sequential, but through a syscall.
pub const PAGE_READ_COST: u64 = 16;

/// Cost of serving one page from the buffer pool (a hash lookup and a pin),
/// in touched-tuple units.
pub const POOL_HIT_COST: u64 = 1;

/// Touched-tuple cost of one scan over a disk-resident detail table:
/// `pages` admitted by the Theorem 4.2 prefilter, of which `resident` are
/// expected to be buffer-pool hits, plus one decode unit per row delivered.
/// With `resident == pages` (fully cached) the page term collapses to pool
/// hits and the paged scan prices close to an in-memory one — which is
/// exactly how `Auto` stays coherent across in-memory, paged, and spill
/// plans: all three are priced in the same touched-tuple currency.
pub fn paged_scan_cost(pages: usize, rows: usize, resident: usize) -> u64 {
    let resident = resident.min(pages) as u64;
    let cold = (pages as u64) - resident;
    cold.saturating_mul(PAGE_READ_COST)
        .saturating_add(resident.saturating_mul(POOL_HIT_COST))
        .saturating_add(rows as u64)
}

/// Touched-tuple cost of feeding a degraded `m`-partition plan from the
/// paged store: `m` clustered range scans of the admitted pages (the paged
/// analogue of [`rescan_cost`]). Compare against [`spill_cost`] to decide
/// whether re-reading sealed pages beats writing run files.
pub fn paged_rescan_cost(m: usize, pages: usize, rows: usize, resident: usize) -> u64 {
    (m as u64).saturating_mul(paged_scan_cost(pages, rows, resident))
}

/// How a degraded (partitioned) plan feeds `R` to each partition of `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeMode {
    /// Re-scan the in-memory `R` once per partition.
    Rescan,
    /// Hash-partition `R` to disk once; each partition reads only its file.
    Spill,
}

/// A costed degradation decision: the partition count and the feed mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePlan {
    pub mode: DegradeMode,
    pub partitions: usize,
}

/// Touched-tuple cost of rescan degradation: `m` scans of `R`.
pub fn rescan_cost(m: usize, r_rows: usize) -> u64 {
    (m as u64).saturating_mul(r_rows as u64)
}

/// Touched-tuple cost of spill degradation: one routing pass over `R`, the
/// priced write and read of every tuple, and per-file overhead.
pub fn spill_cost(m: usize, r_rows: usize) -> u64 {
    (r_rows as u64)
        .saturating_mul(1 + SPILL_WRITE_COST + SPILL_READ_COST)
        .saturating_add(SPILL_FILE_OVERHEAD.saturating_mul(m as u64))
}

/// Static footprint of evaluating one partition of `rows` base rows:
/// aggregate state plus, when θ hash-probes on `key_width` columns, the
/// probe index and its key copies. This mirrors what `md_join_serial`
/// actually charges, so "fits" here means "fits there".
fn partition_bytes(rows: usize, n_aggs: usize, key_width: Option<usize>) -> u64 {
    let mut bytes = governor::state_bytes(rows, n_aggs);
    if let Some(k) = key_width {
        bytes = bytes
            .saturating_add(governor::index_bytes(rows))
            .saturating_add(governor::index_key_bytes(rows, k));
    }
    bytes as u64
}

/// Smallest partition count whose per-partition static footprint fits
/// `budget` bytes (the deferred cost-based choice of `m`). Returns `b_rows`
/// — one row per partition, the finest Theorem 4.1 split — when even that
/// does not fit; the caller surfaces the breach. Monotone in the budget, so
/// a binary search suffices.
pub fn cost_partitions(
    b_rows: usize,
    n_aggs: usize,
    key_width: Option<usize>,
    budget: u64,
) -> usize {
    if b_rows == 0 {
        return 1;
    }
    let fits = |m: usize| partition_bytes(b_rows.div_ceil(m), n_aggs, key_width) <= budget;
    if fits(1) {
        return 1;
    }
    if !fits(b_rows) {
        return b_rows;
    }
    // Invariant: !fits(lo), fits(hi); per-partition rows shrink with m, so
    // `fits` is monotone and the search closes on the smallest fitting m.
    let (mut lo, mut hi) = (1usize, b_rows);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Pick the feed mode for a degraded plan with `m` partitions. Spilling
/// requires θ to carry hash-partitionable equality bindings (`key_width`)
/// and more than one partition; within that, the policy decides directly or
/// delegates to the cost comparison.
pub fn choose_mode(
    m: usize,
    r_rows: usize,
    key_width: Option<usize>,
    policy: SpillPolicy,
) -> DegradeMode {
    if key_width.is_none() || m <= 1 {
        return DegradeMode::Rescan;
    }
    match policy {
        SpillPolicy::Never => DegradeMode::Rescan,
        SpillPolicy::Always => DegradeMode::Spill,
        SpillPolicy::Auto => {
            if spill_cost(m, r_rows) < rescan_cost(m, r_rows) {
                DegradeMode::Spill
            } else {
                DegradeMode::Rescan
            }
        }
    }
}

/// The full costed decision: partition count from the budget, mode from the
/// policy and the priced I/O-vs-rescan comparison.
pub fn choose_degradation(
    b_rows: usize,
    r_rows: usize,
    n_aggs: usize,
    key_width: Option<usize>,
    budget: u64,
    policy: SpillPolicy,
) -> DegradePlan {
    let partitions = cost_partitions(b_rows, n_aggs, key_width, budget);
    DegradePlan {
        mode: choose_mode(partitions, r_rows, key_width, policy),
        partitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Per-row footprints used by the pinned grids below (2 aggregates, one
    // probe key column): 32 + 2×64 state, 48 index, 24 key = 232 bytes.
    const PER_ROW: u64 = (governor::BYTES_PER_BASE_ROW
        + 2 * governor::BYTES_PER_AGG_STATE
        + governor::BYTES_PER_INDEX_ROW
        + governor::BYTES_PER_INDEX_KEY) as u64;

    #[test]
    fn cost_partitions_is_pinned_across_a_budget_grid() {
        // 100 base rows, 2 aggs, 1-column key. Budget in rows-that-fit.
        for (rows_fit, expected_m) in [(100, 1), (50, 2), (25, 4), (10, 10), (3, 34), (1, 100)] {
            let m = cost_partitions(100, 2, Some(1), rows_fit * PER_ROW);
            assert_eq!(m, expected_m, "budget fits {rows_fit} rows");
            // The chosen m is feasible and minimal.
            assert!(100usize.div_ceil(m) as u64 * PER_ROW <= rows_fit * PER_ROW);
            if m > 1 {
                assert!(100usize.div_ceil(m - 1) as u64 * PER_ROW > rows_fit * PER_ROW);
            }
        }
    }

    #[test]
    fn cost_partitions_is_pinned_across_a_row_grid() {
        // Fixed budget of 4 rows' worth; vary |B|.
        let budget = 4 * PER_ROW;
        for (b_rows, expected_m) in [(1, 1), (4, 1), (5, 2), (11, 3), (23, 6), (1000, 250)] {
            assert_eq!(
                cost_partitions(b_rows, 2, Some(1), budget),
                expected_m,
                "|B| = {b_rows}"
            );
        }
    }

    #[test]
    fn cost_partitions_edge_cases() {
        assert_eq!(cost_partitions(0, 3, Some(2), 0), 1); // empty B
        assert_eq!(cost_partitions(10, 2, Some(1), 0), 10); // nothing fits
        assert_eq!(cost_partitions(10, 2, Some(1), u64::MAX), 1); // all fits
                                                                  // No probe key: only state is charged, so more rows fit.
        let with_key = cost_partitions(100, 2, Some(1), 10 * PER_ROW);
        let without = cost_partitions(100, 2, None, 10 * PER_ROW);
        assert!(without <= with_key);
    }

    #[test]
    fn mode_choice_is_pinned_across_size_grids() {
        use SpillPolicy::*;
        // (m, r_rows, policy, expected): spill needs big R *and* high m.
        let grid: &[(usize, usize, SpillPolicy, DegradeMode)] = &[
            // Small R never spills under Auto: 7·r + 512·m ≥ m·r for r ≤ 512.
            (6, 400, Auto, DegradeMode::Rescan),
            (6, 4_000, Auto, DegradeMode::Rescan),
            (100, 512, Auto, DegradeMode::Rescan),
            // Crossover: at r = 100 000, spill wins from m = 8 up.
            (7, 100_000, Auto, DegradeMode::Rescan),
            (8, 100_000, Auto, DegradeMode::Spill),
            (16, 100_000, Auto, DegradeMode::Spill),
            (250, 1_000_000, Auto, DegradeMode::Spill),
            // Policy overrides.
            (16, 100_000, Never, DegradeMode::Rescan),
            (2, 10, Always, DegradeMode::Spill),
        ];
        for &(m, r, policy, expected) in grid {
            assert_eq!(
                choose_mode(m, r, Some(1), policy),
                expected,
                "m={m} r={r} policy={policy:?}"
            );
        }
        // No equality bindings: spill is impossible under every policy.
        for policy in [Auto, Never, Always] {
            assert_eq!(choose_mode(16, 100_000, None, policy), DegradeMode::Rescan);
        }
        // A single partition never spills (nothing to co-partition).
        assert_eq!(
            choose_mode(1, 100_000, Some(1), Always),
            DegradeMode::Rescan
        );
    }

    #[test]
    fn choose_degradation_combines_count_and_mode() {
        // The resource-governor scenario: 23 base rows, 3 aggs, r = 4000,
        // budget sized to ~5 rows of state+index. Pinned: m = 6, rescan.
        let per_row = (governor::BYTES_PER_BASE_ROW
            + 3 * governor::BYTES_PER_AGG_STATE
            + governor::BYTES_PER_INDEX_ROW) as u64;
        let plan = choose_degradation(23, 4000, 3, Some(1), 5 * per_row, SpillPolicy::Auto);
        assert_eq!(plan.partitions, 6);
        assert_eq!(plan.mode, DegradeMode::Rescan);
        // Same shape at warehouse scale flips to spill.
        let plan = choose_degradation(
            10_000,
            1_000_000,
            3,
            Some(1),
            5 * per_row,
            SpillPolicy::Auto,
        );
        assert!(plan.partitions >= 8);
        assert_eq!(plan.mode, DegradeMode::Spill);
    }

    #[test]
    fn costs_saturate_instead_of_overflowing() {
        assert_eq!(rescan_cost(usize::MAX, usize::MAX), u64::MAX);
        assert!(spill_cost(usize::MAX, usize::MAX) == u64::MAX);
        let _ = cost_partitions(usize::MAX, usize::MAX, Some(usize::MAX), 1);
        let _ = paged_rescan_cost(usize::MAX, usize::MAX, usize::MAX, 0);
    }

    #[test]
    fn paged_scan_cost_is_pinned_and_coherent() {
        // 8 pages, 1000 rows, all cold: 8×16 + 1000 = 1128.
        assert_eq!(paged_scan_cost(8, 1000, 0), 1128);
        // Fully resident: 8×1 + 1000 — within a whisker of in-memory.
        assert_eq!(paged_scan_cost(8, 1000, 8), 1008);
        // Resident is clamped to the page count.
        assert_eq!(paged_scan_cost(8, 1000, 100), 1008);
        // Theorem 4.2 pruning cuts the cost on both axes.
        assert!(paged_scan_cost(2, 250, 0) < paged_scan_cost(8, 1000, 0));
        // m scans cost m× one scan.
        assert_eq!(paged_rescan_cost(3, 8, 1000, 0), 3 * 1128);
        // Coherence with the spill model: re-reading a small sealed table
        // a few times stays cheaper than writing run files for it...
        assert!(paged_rescan_cost(2, 8, 1000, 0) < spill_cost(2, 1000));
        // ...while a cold many-partition rescan of a big table loses to one
        // spill pass, same as the in-memory rescan crossover.
        assert!(paged_rescan_cost(64, 4096, 1_000_000, 0) > spill_cost(64, 1_000_000));
    }
}
