//! Spill-degradation executor: Theorem 4.1 partitioning with `R` fed from
//! disk run files instead of `m` re-scans.
//!
//! The rescan plan (`core::partitioned`) answers a budget breach by
//! splitting `B` into `m` chunks and scanning the in-memory `R` once per
//! chunk — `m·|R|` tuples touched. When θ carries equality bindings
//! `B.col = f(R-row)` (the same ones the §4.5 hash probe uses), there is a
//! cheaper shape for large `R`: hash-partition *both* sides on the binding
//! key, spill each `Rᵢ` to a run file in one routing pass, and evaluate each
//! `(Bᵢ, Rᵢ)` pair from its file. Correctness is by construction: any
//! `(b-row, t)` pair that satisfies θ satisfies the equality bindings, so
//! both rows hash to the same partition — no cross-partition match can
//! exist. Tuples whose key appears in no `B` partition (or is NULL) can
//! match nothing and are dropped during routing, which also keeps the
//! written-vs-read byte accounting exactly conserved.
//!
//! The output is **row-identical** to the serial plan: each partition's
//! result rows are scattered back to their base rows' original positions.
//!
//! Failure model: every run file is RAII-owned ([`RunWriter`] until sealed,
//! [`RunFile`] after), so any error path — I/O failure, checksum mismatch,
//! budget breach inside a partition, cancellation — unwinds without leaking
//! a single temp file and without producing partial results. Injected spill
//! faults (`fault-injection` feature) surface as typed
//! [`StorageError::SpillIo`] / [`StorageError::SpillCorrupt`] wrapped in
//! [`CoreError::Storage`]; there is deliberately no silent fallback to the
//! rescan plan.

use crate::context::{ExecContext, CANCEL_CHECK_INTERVAL};
use crate::error::{CoreError, Result};
use crate::mdjoin::md_join_serial;
use crate::probe::canon_key;
use mdj_agg::AggSpec;
use mdj_expr::analysis::probe_bindings;
use mdj_expr::{BoundExpr, Expr};
use mdj_storage::{read_run, Relation, Row, RunFile, RunWriter, Schema, StorageError, Value};
use std::hash::{Hash, Hasher};
use std::path::Path;

/// Startup crash-recovery sweep over an engine's spill directory: remove
/// `MDJS` run files orphaned by a crashed process (see
/// [`mdj_storage::sweep_orphans`]). Resolves the directory the same way the
/// spill executor does — the configured `spill_dir`, falling back to the
/// system temp directory — so a restart cleans up exactly where a crashed
/// predecessor spilled.
pub fn recover_spill_dir(
    engine: &crate::context::EngineConfig,
) -> Result<mdj_storage::SweepReport> {
    let dir = engine
        .spill_dir()
        .cloned()
        .unwrap_or_else(std::env::temp_dir);
    mdj_storage::sweep_orphans(&dir).map_err(CoreError::from)
}

/// Number of hash-partition key columns θ yields over `B`'s schema, or
/// `None` when θ has no usable equality bindings (spilling impossible; the
/// cost model then prices rescan only).
pub(crate) fn partition_key_width(b_schema: &Schema, theta: &Expr) -> Option<usize> {
    let (bindings, _) = probe_bindings(theta);
    if !bindings.is_empty() && bindings.iter().all(|bi| b_schema.contains(&bi.base_col)) {
        Some(bindings.len())
    } else {
        None
    }
}

/// Deterministic bucket assignment shared by both sides: canonicalized key
/// values hashed into `m` buckets.
fn bucket_of(key: &[Value], m: usize) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % m as u64) as usize
}

/// Flip one byte in the middle of `path` so the reader's checksum validation
/// must reject the file (fault-injection corruption site).
fn corrupt_run_file(path: &Path) -> Result<()> {
    use std::io::{Read, Seek, SeekFrom, Write};
    let io = |e: std::io::Error| {
        CoreError::Storage(StorageError::SpillIo {
            path: path.display().to_string(),
            detail: format!("corrupting run file for fault injection: {e}"),
        })
    };
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(io)?;
    let len = f.metadata().map_err(io)?.len();
    if len == 0 {
        return Ok(());
    }
    let off = len / 2;
    let mut byte = [0u8; 1];
    f.seek(SeekFrom::Start(off)).map_err(io)?;
    f.read_exact(&mut byte).map_err(io)?;
    f.seek(SeekFrom::Start(off)).map_err(io)?;
    f.write_all(&[byte[0] ^ 0xFF]).map_err(io)?;
    Ok(())
}

/// Evaluate `MD(B, R, l, θ)` with both sides hash-partitioned into `m`
/// buckets on θ's equality bindings and each `Rᵢ` spilled to a run file.
/// Row-identical to [`md_join_serial`]. See the module docs.
pub(crate) fn md_join_spilled(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    m: usize,
    ctx: &ExecContext,
) -> Result<Relation> {
    if m == 0 {
        return Err(CoreError::BadConfig("partition count must be ≥ 1".into()));
    }
    if m <= 1 || b.is_empty() {
        return md_join_serial(b, r, l, theta, ctx);
    }
    let (bindings, _) = probe_bindings(theta);
    if bindings.is_empty() || !bindings.iter().all(|bi| b.schema().contains(&bi.base_col)) {
        return Err(CoreError::BadConfig(format!(
            "spill degradation needs hash-partitionable equality bindings in θ `{theta}`"
        )));
    }
    let key_cols: Vec<usize> = bindings
        .iter()
        .map(|bi| b.schema().index_of(&bi.base_col))
        .collect::<std::result::Result<_, _>>()?;
    let key_exprs: Vec<BoundExpr> = bindings
        .iter()
        .map(|bi| bi.detail_expr.bind(None, Some(r.schema())))
        .collect::<std::result::Result<_, _>>()?;

    // Partition B's row ids by key hash. NULL-keyed base rows match nothing
    // (the probe skips NULL keys) but must still appear in the output with
    // their empty-Rel(t) aggregate values; hashing routes them like any
    // other key, deterministically.
    let mut b_parts: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut key_scratch: Vec<Value> = Vec::with_capacity(key_cols.len());
    for (i, row) in b.iter().enumerate() {
        key_scratch.clear();
        for &c in &key_cols {
            key_scratch.push(canon_key(row[c].clone()));
        }
        b_parts[bucket_of(&key_scratch, m)].push(i);
    }

    // One routing pass over R: stream each tuple into its partition's run
    // file. Tuples routed to a bucket with no base rows (key absent from B,
    // or NULL key hashing there) can match nothing and are dropped, so every
    // byte written is read back exactly once.
    let dir = ctx.spill_dir();
    let mut writers: Vec<Option<RunWriter>> = (0..m).map(|_| None).collect();
    ctx.record_scan(r.len() as u64);
    for (n, t) in r.iter().enumerate() {
        if n % CANCEL_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        key_scratch.clear();
        let mut null_key = false;
        for e in &key_exprs {
            let v = canon_key(e.eval_detail(t.values())?);
            null_key |= v.is_null();
            key_scratch.push(v);
        }
        if null_key {
            continue; // SQL equality with NULL never matches
        }
        let p = bucket_of(&key_scratch, m);
        if b_parts[p].is_empty() {
            continue;
        }
        let w = match &mut writers[p] {
            Some(w) => w,
            None => {
                writers[p] = Some(RunWriter::create(
                    &dir,
                    &format!("part{p}of{m}"),
                    r.schema(),
                )?);
                writers[p].as_mut().expect("just inserted")
            }
        };
        w.push(t)?;
    }

    // Seal the files. The fault hook models ENOSPC at the write site: the
    // error path drops every writer and every sealed RunFile, removing all
    // temp files before the typed error reaches the caller.
    let mut runs: Vec<Option<RunFile>> = Vec::with_capacity(m);
    for w in writers {
        let Some(w) = w else {
            runs.push(None);
            continue;
        };
        if ctx.fault_should_fail_spill_write() {
            return Err(CoreError::Storage(StorageError::SpillIo {
                path: w.path().display().to_string(),
                detail: format!(
                    "injected ENOSPC: short write sealing a {}-row run",
                    w.rows()
                ),
            }));
        }
        let run = w.finish()?;
        ctx.record_spill_partition(run.bytes_written());
        runs.push(Some(run));
    }

    // Evaluate each (Bᵢ, Rᵢ) and scatter its rows back to the base rows'
    // original positions, making the result row-identical to serial.
    let mut out_rows: Vec<Option<Row>> = vec![None; b.len()];
    let mut out_schema: Option<Schema> = None;
    for (p, part) in b_parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        ctx.check_interrupt()?;
        let bi = Relation::from_rows(
            b.schema().clone(),
            part.iter().map(|&i| b.rows()[i].clone()).collect(),
        );
        let ri = match runs[p].take() {
            None => Relation::empty(r.schema().clone()),
            Some(run) => {
                if ctx.fault_should_corrupt_spill_read() {
                    corrupt_run_file(run.path())?;
                }
                let (rel, bytes_read) = read_run(run.path())?;
                ctx.record_spill_read_bytes(bytes_read);
                rel
                // `run` drops here: the file is unlinked as soon as its
                // partition is in memory, not at the end of the query.
            }
        };
        let piece = md_join_serial(&bi, &ri, l, theta, ctx)?;
        if out_schema.is_none() {
            out_schema = Some(piece.schema().clone());
        }
        for (j, &orig) in part.iter().enumerate() {
            out_rows[orig] = Some(piece.rows()[j].clone());
        }
    }
    let schema = out_schema
        .ok_or_else(|| CoreError::Internal("non-empty B produced no partitions".into()))?;
    let rows = out_rows
        .into_iter()
        .map(|o| o.ok_or_else(|| CoreError::Internal("base row missing from scatter".into())))
        .collect::<Result<Vec<Row>>>()?;
    Ok(Relation::from_rows(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, ScanStats};
    use std::sync::Arc;

    fn spill_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("mdj-spill-exec-{}-{tag}", std::process::id()))
    }

    /// Assert `dir` holds no files, then remove it.
    fn assert_clean(dir: &Path) {
        if let Ok(entries) = std::fs::read_dir(dir) {
            let leaked: Vec<_> = entries.flatten().map(|e| e.path()).collect();
            assert!(leaked.is_empty(), "leaked run files: {leaked:?}");
        }
        let _ = std::fs::remove_dir(dir);
    }

    fn sales(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("sale", DataType::Float),
        ]);
        Relation::from_rows(
            schema,
            (0..n)
                .map(|i| {
                    Row::from_values(vec![
                        if i % 13 == 0 {
                            Value::Null // NULL keys must not disturb routing
                        } else {
                            Value::Int(i % 17)
                        },
                        Value::Int(i % 12),
                        Value::Float(i as f64 * 1.5),
                    ])
                })
                .collect(),
        )
    }

    #[test]
    fn spilled_is_row_identical_to_serial() {
        let s = sales(500);
        let b = s.distinct_on(&["cust"]).unwrap();
        let l = [
            AggSpec::on_column("sum", "sale"),
            AggSpec::on_column("avg", "sale"),
            AggSpec::count_star(),
        ];
        let theta = eq(col_b("cust"), col_r("cust"));
        let serial = md_join_serial(&b, &s, &l, &theta, &ExecContext::new()).unwrap();
        let dir = spill_dir("identical");
        for m in [2, 3, 7, 16, 64] {
            let ctx = ExecContext::new().with_spill_dir(&dir);
            let out = md_join_spilled(&b, &s, &l, &theta, m, &ctx).unwrap();
            assert_eq!(serial.rows(), out.rows(), "m = {m}");
        }
        assert_clean(&dir);
    }

    #[test]
    fn computed_key_and_residual_conjuncts_respect_partitioning() {
        // B.month = R.month + 1 with a mixed residual conjunct: matches are
        // still confined to one partition because the equality binding is a
        // conjunct of θ.
        let s = sales(300);
        let b = s.distinct_on(&["month"]).unwrap();
        let l = [AggSpec::on_column("sum", "sale")];
        let theta = and(
            eq(col_b("month"), add(col_r("month"), lit(1i64))),
            gt(col_r("sale"), lit(30.0)),
        );
        let serial = md_join_serial(&b, &s, &l, &theta, &ExecContext::new()).unwrap();
        let dir = spill_dir("computed");
        let ctx = ExecContext::new().with_spill_dir(&dir);
        let out = md_join_spilled(&b, &s, &l, &theta, 5, &ctx).unwrap();
        assert_eq!(serial.rows(), out.rows());
        assert_clean(&dir);
    }

    #[test]
    fn counters_are_conserved_and_tempdir_left_clean() {
        let s = sales(400);
        let b = s.distinct_on(&["cust"]).unwrap();
        let l = [AggSpec::count_star()];
        let theta = eq(col_b("cust"), col_r("cust"));
        let dir = spill_dir("counters");
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_stats(stats.clone())
            .with_spill_dir(&dir);
        md_join_spilled(&b, &s, &l, &theta, 6, &ctx).unwrap();
        let snap = stats.snapshot();
        assert!(snap.spill_partitions >= 1 && snap.spill_partitions <= 6);
        assert!(snap.bytes_spilled > 0);
        // Every spilled byte is read back exactly once.
        assert_eq!(snap.bytes_spilled, snap.spill_read_bytes);
        // One routing scan plus one per evaluated partition.
        assert!(snap.scans >= 2);
        assert_clean(&dir);
    }

    #[test]
    fn empty_detail_and_unmatched_keys_still_produce_all_base_rows() {
        let s = sales(100);
        let b = s.distinct_on(&["cust"]).unwrap();
        let l = [AggSpec::count_star()];
        let theta = eq(col_b("cust"), col_r("cust"));
        let dir = spill_dir("empty");
        let ctx = ExecContext::new().with_spill_dir(&dir);
        // Empty R: every base row still comes back (count 0).
        let empty = Relation::empty(s.schema().clone());
        let out = md_join_spilled(&b, &empty, &l, &theta, 4, &ctx).unwrap();
        assert_eq!(out.len(), b.len());
        assert!(out.rows().iter().all(|row| row[1] == Value::Int(0)));
        assert_clean(&dir);
    }

    #[test]
    fn theta_without_bindings_is_rejected() {
        let s = sales(50);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = gt(col_r("sale"), lit(10.0)); // no B-column equality
        let err = md_join_spilled(
            &b,
            &s,
            &[AggSpec::count_star()],
            &theta,
            4,
            &ExecContext::new(),
        );
        assert!(matches!(err, Err(CoreError::BadConfig(_))));
        assert_eq!(partition_key_width(b.schema(), &theta), None);
        let good = eq(col_b("cust"), col_r("cust"));
        assert_eq!(partition_key_width(b.schema(), &good), Some(1));
    }

    #[test]
    fn cancellation_unwinds_without_leaking_run_files() {
        use crate::governor::CancelToken;
        let s = sales(2000);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let dir = spill_dir("cancel");
        let token = CancelToken::new();
        token.cancel();
        let ctx = ExecContext::new()
            .with_spill_dir(&dir)
            .with_cancel_token(token);
        let err = md_join_spilled(&b, &s, &[AggSpec::count_star()], &theta, 4, &ctx);
        assert!(matches!(err, Err(CoreError::Cancelled)));
        assert_clean(&dir);
    }
}
