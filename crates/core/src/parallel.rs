//! Theorem 4.1 — intra-operator parallelism (Section 4.1.2).
//!
//! Two parallel plans:
//!
//! * [`md_join_parallel`] — the paper's plan: partition `B` across workers;
//!   each worker runs a full MD-join of its `Bᵢ` fragment against `R` and the
//!   fragments are unioned. No shared mutable state, no merging.
//! * [`md_join_parallel_detail`] — the dual plan enabled by mergeable
//!   aggregate states (the UDAF `merge` callback of \[JM98\]): partition `R`
//!   across workers, each maintains states for *all* of `B`, and partial
//!   states merge at the end. Useful when `B` is small and `R` is huge; the
//!   benches ablate the two.

use crate::context::{ExecContext, CANCEL_CHECK_INTERVAL};
use crate::error::{CoreError, Result};
use crate::governor::{self, panic_message, MemCharge};
use crate::mdjoin::{bind_aggs, md_join_serial};
use crate::probe::ProbePlan;
use mdj_agg::{AggSpec, AggState};
use mdj_expr::Expr;
use mdj_storage::{partition, Relation, Row, Schema, Value, WorkerStats};

/// Parallel MD-join, partitioning `B` across `threads` workers
/// (Section 4.1.2). Each worker scans all of `R`.
pub(crate) fn chunk_base(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    threads: usize,
    ctx: &ExecContext,
) -> Result<Relation> {
    if threads == 0 {
        return Err(CoreError::BadConfig("thread count must be ≥ 1".into()));
    }
    ctx.check_interrupt()?;
    let parts = partition::chunk(b, threads);
    let results: Vec<Result<Relation>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(me, part)| {
                scope.spawn(move |_| {
                    ctx.check_interrupt()?;
                    let mut ws = WorkerStats::new(me);
                    ws.morsels = 1; // a static chunk is one indivisible work unit
                    ws.tuples = part.len() as u64;
                    let out = md_join_serial(part, r, l, theta, ctx);
                    ctx.record_worker(ws);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(worker, h)| {
                h.join().unwrap_or_else(|payload| {
                    Err(CoreError::WorkerPanicked {
                        worker,
                        message: panic_message(payload.as_ref()),
                    })
                })
            })
            .collect()
    })
    .map_err(|payload| {
        CoreError::Internal(format!(
            "crossbeam scope failed: {}",
            panic_message(payload.as_ref())
        ))
    })?;

    let mut iter = results.into_iter().collect::<Result<Vec<_>>>()?.into_iter();
    let first = iter
        .next()
        .ok_or_else(|| CoreError::Internal("partition::chunk yielded zero parts".into()))?;
    iter.try_fold(first, |acc, next| acc.union(&next).map_err(CoreError::from))
}

/// Parallel MD-join partitioning the *detail* table: each worker scans an
/// `Rⱼ` slice, keeping aggregate state for every base row; partial states are
/// merged pairwise at the end. Requires only that the aggregates implement
/// `merge` (all builtins do).
pub(crate) fn chunk_detail(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    threads: usize,
    ctx: &ExecContext,
) -> Result<Relation> {
    if threads == 0 {
        return Err(CoreError::BadConfig("thread count must be ≥ 1".into()));
    }
    ctx.check_interrupt()?;
    let bound = bind_aggs(l, r.schema(), ctx.registry())?;
    let plan = ProbePlan::build_opts(b, r.schema(), theta, ctx.strategy(), ctx.prefilter())?;
    let _index_charge = if plan.is_hash() {
        MemCharge::try_new(ctx, governor::index_bytes(b.len()))?
    } else {
        MemCharge::default()
    };
    let r_parts = partition::chunk(r, threads);

    type States = Vec<Vec<Box<dyn AggState>>>;
    let worker = |me: usize, slice: &Relation| -> Result<States> {
        // Each detail-partitioned worker keeps states for *all* of B — charge
        // the full footprint per worker (this is the strategy's memory cost).
        let _state_charge = MemCharge::try_new(ctx, governor::state_bytes(b.len(), bound.len()))?;
        let mut ws = WorkerStats::new(me);
        ws.morsels = 1; // a static chunk is one indivisible work unit
        ws.tuples = slice.len() as u64;
        let mut states: States = b
            .iter()
            .map(|_| bound.iter().map(|ba| ba.agg.init()).collect())
            .collect();
        ctx.record_scan(slice.len() as u64);
        let mut matches = Vec::new();
        let mut key_scratch: Vec<Value> = Vec::new();
        for (ti, t) in slice.iter().enumerate() {
            if ti % CANCEL_CHECK_INTERVAL == 0 {
                ctx.check_interrupt()?;
            }
            plan.matches(b, t.values(), ctx, &mut matches, &mut key_scratch)?;
            ws.updates += (matches.len() * bound.len()) as u64;
            for &row_id in &matches {
                for (j, ba) in bound.iter().enumerate() {
                    let v = match ba.input_col {
                        Some(c) => &t[c],
                        None => &Value::Null,
                    };
                    states[row_id][j].update(v)?;
                }
            }
        }
        ctx.record_worker(ws);
        Ok(states)
    };

    let partials: Vec<Result<States>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = r_parts
            .iter()
            .enumerate()
            .map(|(me, slice)| {
                let worker = &worker;
                scope.spawn(move |_| worker(me, slice))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(worker, h)| {
                h.join().unwrap_or_else(|payload| {
                    Err(CoreError::WorkerPanicked {
                        worker,
                        message: panic_message(payload.as_ref()),
                    })
                })
            })
            .collect()
    })
    .map_err(|payload| {
        CoreError::Internal(format!(
            "crossbeam scope failed: {}",
            panic_message(payload.as_ref())
        ))
    })?;

    let mut partials = partials
        .into_iter()
        .collect::<Result<Vec<States>>>()?
        .into_iter();
    let mut total = partials
        .next()
        .ok_or_else(|| CoreError::Internal("partition::chunk yielded zero parts".into()))?;
    for part in partials {
        for (row_states, part_states) in total.iter_mut().zip(part) {
            for (s, p) in row_states.iter_mut().zip(part_states) {
                s.merge(p.as_ref())?;
            }
        }
    }

    let mut fields = b.schema().fields().to_vec();
    fields.extend(bound.iter().map(|ba| ba.output.clone()));
    let mut out = Relation::empty(Schema::new(fields));
    for (row, row_states) in b.iter().zip(total) {
        let mut vals = row.values().to_vec();
        vals.extend(row_states.iter().map(|s| s.finalize()));
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_expr::builder::*;
    use mdj_storage::DataType;

    fn sales(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Int)]);
        Relation::from_rows(
            schema,
            (0..n).map(|i| Row::from_values([i % 13, i])).collect(),
        )
    }

    fn check_equivalence(
        f: impl Fn(&Relation, &Relation, &[AggSpec], &Expr, usize, &ExecContext) -> Result<Relation>,
    ) {
        let s = sales(500);
        let b = s.distinct_on(&["cust"]).unwrap();
        let l = [
            AggSpec::on_column("sum", "sale"),
            AggSpec::on_column("avg", "sale"),
            AggSpec::count_star(),
            AggSpec::on_column("min", "sale"),
            AggSpec::on_column("max", "sale"),
        ];
        let theta = eq(col_b("cust"), col_r("cust"));
        let direct = md_join_serial(&b, &s, &l, &theta, &ExecContext::new()).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = f(&b, &s, &l, &theta, threads, &ExecContext::new()).unwrap();
            assert!(direct.same_multiset(&par), "threads = {threads}");
        }
    }

    #[test]
    fn base_partitioned_parallel_equals_direct() {
        check_equivalence(chunk_base);
    }

    #[test]
    fn detail_partitioned_parallel_equals_direct() {
        check_equivalence(chunk_detail);
    }

    #[test]
    fn detail_parallel_handles_holistic_merge() {
        let s = sales(300);
        let b = s.distinct_on(&["cust"]).unwrap();
        let l = [
            AggSpec::on_column("median", "sale"),
            AggSpec::on_column("mode", "cust"),
            AggSpec::on_column("count_distinct", "sale"),
        ];
        let theta = eq(col_b("cust"), col_r("cust"));
        let direct = md_join_serial(&b, &s, &l, &theta, &ExecContext::new()).unwrap();
        let par = chunk_detail(&b, &s, &l, &theta, 4, &ExecContext::new()).unwrap();
        assert!(direct.same_multiset(&par));
    }

    #[test]
    fn zero_threads_rejected() {
        let s = sales(10);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        for f in [chunk_base, chunk_detail] {
            assert!(matches!(
                f(
                    &b,
                    &s,
                    &[AggSpec::count_star()],
                    &theta,
                    0,
                    &ExecContext::new()
                ),
                Err(CoreError::BadConfig(_))
            ));
        }
    }

    #[test]
    fn non_equijoin_theta_parallelizes_too() {
        // Theorem 4.1 holds for arbitrary θ.
        let s = sales(100);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = le(col_b("cust"), col_r("sale"));
        let l = [AggSpec::count_star()];
        let direct = md_join_serial(&b, &s, &l, &theta, &ExecContext::new()).unwrap();
        let p1 = chunk_base(&b, &s, &l, &theta, 3, &ExecContext::new()).unwrap();
        let p2 = chunk_detail(&b, &s, &l, &theta, 3, &ExecContext::new()).unwrap();
        assert!(direct.same_multiset(&p1));
        assert!(direct.same_multiset(&p2));
    }
}
