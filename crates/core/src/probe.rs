//! `Rel(t)` computation — Section 4.5.
//!
//! Algorithm 3.1's inner loop examines, for each scanned detail tuple `t`,
//! candidate rows of `B`. Definition 4.1 calls the rows actually updated the
//! *relative set* `Rel(t)`. A [`ProbePlan`] decides how candidates are found:
//!
//! * **Nested loop** — every row of `B` is examined (the literal algorithm).
//! * **Hash probe** — θ is decomposed into *probe bindings*
//!   `B.col = f(R-row)` (see [`mdj_expr::analysis::probe_bindings`]); a hash
//!   index over `B`'s bound columns is built once, each detail tuple computes
//!   its probe key, and only the matching bucket is examined. Residual
//!   conjuncts (e.g. `R.sale > B.avg_sale` in Example 3.2's θ₂) are
//!   re-checked per candidate. The index hashes with
//!   [`mdj_storage::KeyBuildHasher`] — the *same* multiplicative hasher the
//!   vectorized executor uses for its typed fast-int probe map, so both
//!   probing layers agree on bucket assignment by construction (they used to
//!   carry independent copies of the mixing function).
//!
//! Both variants apply Theorem 4.2 *inside* the operator: conjuncts of θ that
//! reference only the detail side become a per-tuple **prefilter**, evaluated
//! once before any base row is examined — the same work saving as pushing
//! `σ_{θ₂}(R)` below the MD-join, but without materializing the selection
//! (important when several blocks of a generalized MD-join share one scan,
//! each with different detail-only conjuncts).

use crate::context::{ExecContext, ProbeStrategy};
use crate::error::{CoreError, Result};
use crate::governor::{self, MemCharge};
use mdj_expr::analysis::probe_bindings;
use mdj_expr::builder::and_all;
use mdj_expr::{BoundExpr, Expr, Side};
use mdj_storage::{HashIndex, Relation, Schema, Value};

/// Normalize a key value for structural hashing: integral floats become
/// ints so `B.month = R.month + 1` matches even when one side computed a
/// float. NULL keys are preserved (and never match — see [`ProbePlan::matches`]).
pub(crate) fn canon_key(v: Value) -> Value {
    match v {
        Value::Float(f) if f.fract() == 0.0 && f.abs() <= (i64::MAX as f64) / 2.0 => {
            Value::Int(f as i64)
        }
        other => other,
    }
}

/// Split an expression list into (detail-only prefilter, remainder).
fn split_prefilter(conjs: Vec<Expr>) -> (Option<Expr>, Vec<Expr>) {
    let (detail_only, rest): (Vec<Expr>, Vec<Expr>) = conjs
        .into_iter()
        .partition(|c| !c.uses_side(Side::Base) && c.uses_side(Side::Detail));
    let prefilter = if detail_only.is_empty() {
        None
    } else {
        Some(and_all(detail_only))
    };
    (prefilter, rest)
}

/// A compiled strategy for finding the candidate `B` rows for each detail
/// tuple.
#[derive(Debug)]
pub enum ProbePlan {
    /// Examine all of `B` for tuples passing the prefilter.
    NestedLoop {
        /// Detail-only conjuncts, checked once per tuple (Theorem 4.2).
        prefilter: Option<BoundExpr>,
        /// The remaining condition, checked per (tuple, base row).
        theta: BoundExpr,
    },
    /// Hash-probe on equality bindings, then check the residual condition.
    Hash {
        index: HashIndex,
        /// Detail-only expressions producing the probe key, aligned with the
        /// index's key columns.
        key_exprs: Vec<BoundExpr>,
        /// Detail-only conjuncts, checked once per tuple before probing.
        prefilter: Option<BoundExpr>,
        /// Mixed conjuncts not covered by the bindings (None = always true).
        residual: Option<BoundExpr>,
    },
}

impl ProbePlan {
    /// Build a plan for `θ` over `B` and the detail schema (prefilter on).
    pub fn build(
        b: &Relation,
        r_schema: &Schema,
        theta: &Expr,
        strategy: ProbeStrategy,
    ) -> Result<ProbePlan> {
        Self::build_opts(b, r_schema, theta, strategy, true)
    }

    /// Build under a context, charging the probe index's footprint (bucket
    /// structure plus the canonicalized key copies) against the context's
    /// memory budget *before* building it. The returned guard holds the
    /// charge for the plan's lifetime; for nested-loop plans it is inert.
    pub fn build_charged(
        b: &Relation,
        r_schema: &Schema,
        theta: &Expr,
        ctx: &ExecContext,
    ) -> Result<(ProbePlan, MemCharge)> {
        Self::build_inner(
            b,
            r_schema,
            theta,
            ctx.strategy(),
            ctx.prefilter(),
            Some(ctx),
        )
    }

    /// Build with explicit control over the Theorem 4.2 prefilter.
    pub fn build_opts(
        b: &Relation,
        r_schema: &Schema,
        theta: &Expr,
        strategy: ProbeStrategy,
        apply_prefilter: bool,
    ) -> Result<ProbePlan> {
        Ok(Self::build_inner(b, r_schema, theta, strategy, apply_prefilter, None)?.0)
    }

    fn build_inner(
        b: &Relation,
        r_schema: &Schema,
        theta: &Expr,
        strategy: ProbeStrategy,
        apply_prefilter: bool,
        charge_ctx: Option<&ExecContext>,
    ) -> Result<(ProbePlan, MemCharge)> {
        let use_hash = match strategy {
            ProbeStrategy::NestedLoop => false,
            ProbeStrategy::HashProbe | ProbeStrategy::Auto => {
                let (bindings, _) = probe_bindings(theta);
                let ok = !bindings.is_empty()
                    && bindings.iter().all(|bi| b.schema().contains(&bi.base_col));
                if !ok && strategy == ProbeStrategy::HashProbe {
                    return Err(CoreError::BadConfig(format!(
                        "HashProbe requested but θ `{theta}` yields no usable B-column bindings"
                    )));
                }
                ok
            }
        };
        if !use_hash {
            if !apply_prefilter {
                let bound = theta.bind(Some(b.schema()), Some(r_schema))?;
                return Ok((
                    ProbePlan::NestedLoop {
                        prefilter: None,
                        theta: bound,
                    },
                    MemCharge::default(),
                ));
            }
            let (prefilter, rest) = split_prefilter(mdj_expr::analysis::conjuncts(theta));
            let prefilter = prefilter
                .map(|p| p.bind(None, Some(r_schema)))
                .transpose()?;
            let bound = and_all(rest).bind(Some(b.schema()), Some(r_schema))?;
            return Ok((
                ProbePlan::NestedLoop {
                    prefilter,
                    theta: bound,
                },
                MemCharge::default(),
            ));
        }
        let (bindings, residual) = probe_bindings(theta);
        let key_cols: Vec<usize> = bindings
            .iter()
            .map(|bi| b.schema().index_of(&bi.base_col))
            .collect::<std::result::Result<_, _>>()?;
        // Charge the index before building it: bucket structure plus the
        // canonicalized key copies (|B| × key width), so a budget breach is
        // reported before the allocation exists.
        let charge = match charge_ctx {
            Some(ctx) => MemCharge::try_new(
                ctx,
                governor::index_bytes(b.len())
                    .saturating_add(governor::index_key_bytes(b.len(), key_cols.len())),
            )?,
            None => MemCharge::default(),
        };
        // Index keys are canonicalized the same way probe keys are — but only
        // the key columns are copied, not a shadow of the whole relation.
        let index = HashIndex::from_keys(
            key_cols.clone(),
            b.iter().map(|row| {
                key_cols
                    .iter()
                    .map(|&c| canon_key(row[c].clone()))
                    .collect()
            }),
        );
        let key_exprs: Vec<BoundExpr> = bindings
            .iter()
            .map(|bi| bi.detail_expr.bind(None, Some(r_schema)))
            .collect::<std::result::Result<_, _>>()?;
        let (prefilter, rest) = if apply_prefilter {
            split_prefilter(residual)
        } else {
            (None, residual)
        };
        let prefilter = prefilter
            .map(|p| p.bind(None, Some(r_schema)))
            .transpose()?;
        let residual = if rest.is_empty() {
            None
        } else {
            Some(and_all(rest).bind(Some(b.schema()), Some(r_schema))?)
        };
        Ok((
            ProbePlan::Hash {
                index,
                key_exprs,
                prefilter,
                residual,
            },
            charge,
        ))
    }

    /// True if the plan uses the hash index.
    pub fn is_hash(&self) -> bool {
        matches!(self, ProbePlan::Hash { .. })
    }

    /// Collect into `out` the ids of `B` rows matched by detail tuple `t`
    /// (this *is* `Rel(t)`), recording probe counts in `ctx`. `key_scratch`
    /// is a caller-provided buffer reused across tuples to avoid per-probe
    /// allocation.
    pub fn matches(
        &self,
        b: &Relation,
        t: &[Value],
        ctx: &ExecContext,
        out: &mut Vec<usize>,
        key_scratch: &mut Vec<Value>,
    ) -> Result<()> {
        out.clear();
        match self {
            ProbePlan::NestedLoop { prefilter, theta } => {
                if let Some(p) = prefilter {
                    if !p.eval_bool(&[], t)? {
                        return Ok(());
                    }
                }
                ctx.record_probes(b.len() as u64);
                for (i, row) in b.iter().enumerate() {
                    if theta.eval_bool(row.values(), t)? {
                        out.push(i);
                    }
                }
            }
            ProbePlan::Hash {
                index,
                key_exprs,
                prefilter,
                residual,
            } => {
                if let Some(p) = prefilter {
                    if !p.eval_bool(&[], t)? {
                        return Ok(());
                    }
                }
                key_scratch.clear();
                for e in key_exprs {
                    let v = canon_key(e.eval_detail(t)?);
                    if v.is_null() {
                        // SQL equality with NULL never matches.
                        return Ok(());
                    }
                    key_scratch.push(v);
                }
                let bucket = index.get(key_scratch);
                ctx.record_probes(bucket.len() as u64);
                match residual {
                    None => out.extend_from_slice(bucket),
                    Some(res) => {
                        for &i in bucket {
                            if res.eval_bool(b.rows()[i].values(), t)? {
                                out.push(i);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, Row, Schema};

    fn b_rel() -> Relation {
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("month", DataType::Int)]);
        Relation::from_rows(
            schema,
            vec![
                Row::from_values([1i64, 1]),
                Row::from_values([1i64, 2]),
                Row::from_values([2i64, 1]),
            ],
        )
    }

    fn r_schema() -> Schema {
        Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("sale", DataType::Float),
        ])
    }

    fn t(c: i64, m: i64, s: f64) -> Vec<Value> {
        vec![Value::Int(c), Value::Int(m), Value::Float(s)]
    }

    fn run(plan: &ProbePlan, b: &Relation, tup: &[Value], ctx: &ExecContext) -> Vec<usize> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        plan.matches(b, tup, ctx, &mut out, &mut scratch).unwrap();
        out.sort_unstable();
        out
    }

    #[test]
    fn auto_picks_hash_for_equality_theta() {
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_b("month"), col_r("month")),
        );
        let plan = ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::Auto).unwrap();
        assert!(plan.is_hash());
        let ctx = ExecContext::new();
        assert_eq!(run(&plan, &b_rel(), &t(1, 2, 5.0), &ctx), vec![1]);
        assert!(run(&plan, &b_rel(), &t(9, 9, 5.0), &ctx).is_empty());
    }

    #[test]
    fn computed_probe_key_previous_month() {
        // B.month = R.month + 1 (Example 2.5's previous-month θ).
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_b("month"), add(col_r("month"), lit(1i64))),
        );
        let plan = ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::Auto).unwrap();
        assert!(plan.is_hash());
        let ctx = ExecContext::new();
        // t.month = 1 probes B.month = 2.
        assert_eq!(run(&plan, &b_rel(), &t(1, 1, 5.0), &ctx), vec![1]);
    }

    #[test]
    fn isolated_binding_from_detail_side_equation() {
        // R.month = B.month - 1 is isolated to B.month = R.month + 1.
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_r("month"), sub(col_b("month"), lit(1i64))),
        );
        let plan = ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::Auto).unwrap();
        assert!(plan.is_hash());
        let ctx = ExecContext::new();
        assert_eq!(run(&plan, &b_rel(), &t(1, 1, 5.0), &ctx), vec![1]);
    }

    #[test]
    fn detail_only_conjuncts_become_prefilter() {
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            gt(col_r("sale"), lit(10.0)),
        );
        let plan = ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::Auto).unwrap();
        match &plan {
            ProbePlan::Hash {
                prefilter,
                residual,
                ..
            } => {
                assert!(prefilter.is_some());
                assert!(residual.is_none()); // fully absorbed
            }
            _ => panic!("expected hash plan"),
        }
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new().with_stats(stats.clone());
        // Prefiltered-out tuple: zero probes recorded.
        assert!(run(&plan, &b_rel(), &t(1, 1, 5.0), &ctx).is_empty());
        assert_eq!(stats.probes(), 0);
        assert_eq!(run(&plan, &b_rel(), &t(1, 1, 50.0), &ctx), vec![0, 1]);
        assert!(stats.probes() > 0);
    }

    #[test]
    fn nested_loop_prefilter() {
        // Non-equi θ with a detail-only conjunct.
        let theta = and(
            le(col_b("month"), col_r("month")),
            gt(col_r("sale"), lit(10.0)),
        );
        let plan =
            ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::NestedLoop).unwrap();
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new().with_stats(stats.clone());
        assert!(run(&plan, &b_rel(), &t(1, 1, 5.0), &ctx).is_empty());
        assert_eq!(stats.probes(), 0); // prefilter rejected before probing B
        let matches = run(&plan, &b_rel(), &t(1, 2, 50.0), &ctx);
        assert_eq!(matches, vec![0, 1, 2]);
    }

    #[test]
    fn mixed_residual_checked_per_candidate() {
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            gt(col_r("sale"), col_b("month")), // mixed: stays residual
        );
        let plan = ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::Auto).unwrap();
        match &plan {
            ProbePlan::Hash { residual, .. } => assert!(residual.is_some()),
            _ => panic!("expected hash plan"),
        }
        let ctx = ExecContext::new();
        assert_eq!(run(&plan, &b_rel(), &t(1, 9, 1.5), &ctx), vec![0]); // sale 1.5 > month 1 only
    }

    #[test]
    fn nested_loop_equals_hash_results() {
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_b("month"), col_r("month")),
        );
        let hash =
            ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::HashProbe).unwrap();
        let nl =
            ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::NestedLoop).unwrap();
        let ctx = ExecContext::new();
        for tup in [t(1, 1, 1.0), t(1, 2, 1.0), t(2, 1, 1.0), t(3, 3, 1.0)] {
            assert_eq!(
                run(&hash, &b_rel(), &tup, &ctx),
                run(&nl, &b_rel(), &tup, &ctx)
            );
        }
    }

    #[test]
    fn hash_probe_demanded_but_unavailable_errors() {
        let theta = gt(col_r("sale"), col_b("month")); // no equality binding
        let err = ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::HashProbe);
        assert!(matches!(err, Err(CoreError::BadConfig(_))));
        // Auto silently falls back.
        let plan = ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::Auto).unwrap();
        assert!(!plan.is_hash());
    }

    #[test]
    fn null_probe_key_matches_nothing() {
        let theta = eq(col_b("cust"), col_r("cust"));
        let plan =
            ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::HashProbe).unwrap();
        let ctx = ExecContext::new();
        let tup = vec![Value::Null, Value::Int(1), Value::Float(1.0)];
        assert!(run(&plan, &b_rel(), &tup, &ctx).is_empty());
    }

    #[test]
    fn int_float_key_canonicalization() {
        // Probe value computed as Float(2.0) must match Int(2) key.
        let theta = eq(col_b("month"), mul(col_r("month"), lit(1.0f64)));
        let plan =
            ProbePlan::build(&b_rel(), &r_schema(), &theta, ProbeStrategy::HashProbe).unwrap();
        let ctx = ExecContext::new();
        assert_eq!(run(&plan, &b_rel(), &t(1, 2, 1.0), &ctx), vec![1]);
    }

    #[test]
    fn build_charged_accounts_for_keys_and_releases() {
        use crate::governor;
        let b = b_rel();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_b("month"), col_r("month")),
        );
        let ctx = ExecContext::new().with_budget_bytes(1 << 20);
        let tracker = ctx.memory().cloned().unwrap();
        {
            let (plan, _charge) = ProbePlan::build_charged(&b, &r_schema(), &theta, &ctx).unwrap();
            assert!(plan.is_hash());
            // Bucket structure + 2 canonicalized key columns × |B| rows.
            let expected =
                (governor::index_bytes(b.len()) + governor::index_key_bytes(b.len(), 2)) as u64;
            assert_eq!(tracker.charged(), expected);
        }
        assert_eq!(tracker.charged(), 0); // guard released on drop
                                          // Nested-loop plans charge nothing.
        let nl_theta = gt(col_r("sale"), col_b("month"));
        let (plan, _charge) = ProbePlan::build_charged(&b, &r_schema(), &nl_theta, &ctx).unwrap();
        assert!(!plan.is_hash());
        assert_eq!(tracker.charged(), 0);
        // A budget too small for the index fails before building it.
        let tiny = ExecContext::new().with_budget_bytes(1);
        assert!(matches!(
            ProbePlan::build_charged(&b, &r_schema(), &theta, &tiny),
            Err(CoreError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn probe_counting_nested_vs_hash() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let theta = eq(col_b("cust"), col_r("cust"));
        let b = b_rel();
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new().with_stats(stats.clone());
        let nl = ProbePlan::build(&b, &r_schema(), &theta, ProbeStrategy::NestedLoop).unwrap();
        run(&nl, &b, &t(1, 1, 1.0), &ctx);
        assert_eq!(stats.probes(), 3); // all of B
        stats.reset();
        let hp = ProbePlan::build(&b, &r_schema(), &theta, ProbeStrategy::HashProbe).unwrap();
        run(&hp, &b, &t(1, 1, 1.0), &ctx);
        assert_eq!(stats.probes(), 2); // only cust=1 bucket
    }
}
