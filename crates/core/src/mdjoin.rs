//! Algorithm 3.1 — the MD-join evaluator.

use crate::context::{ExecContext, CANCEL_CHECK_INTERVAL};
use crate::error::{CoreError, Result};
use crate::governor::{self, GrowthMeter, MemCharge};
use crate::probe::ProbePlan;
use mdj_agg::{AggClass, AggInput, AggSpec, AggState, Registry};
use mdj_expr::Expr;
use mdj_storage::{DataType, Field, Relation, Row, Schema, Value};

/// One aggregate of `l`, bound to its implementation and input column.
pub(crate) struct BoundAgg {
    pub agg: mdj_agg::traits::AggRef,
    /// Detail column position; `None` for `count(*)`-style star input.
    pub input_col: Option<usize>,
    pub output: Field,
}

/// Bind the aggregate list `l` against the detail schema.
pub(crate) fn bind_aggs(
    l: &[AggSpec],
    r_schema: &Schema,
    registry: &Registry,
) -> Result<Vec<BoundAgg>> {
    l.iter()
        .map(|spec| {
            let agg = registry.get(&spec.function)?;
            let (input_col, input_type) = match &spec.input {
                AggInput::Star => (None, DataType::Int),
                AggInput::Column(c) => {
                    let idx = r_schema.index_of(c)?;
                    (Some(idx), r_schema.field(idx).dtype)
                }
            };
            Ok(BoundAgg {
                output: Field::new(spec.output_name(), agg.output_type(input_type)),
                agg,
                input_col,
            })
        })
        .collect()
}

/// Which aggregates of `l` need growth metering: holistic ones, and only
/// when a memory budget is actually in force (the meter is inert otherwise,
/// so the per-update `heap_bytes` bookkeeping is skipped entirely).
pub(crate) fn metered_flags(bound: &[BoundAgg], meter: &GrowthMeter) -> Vec<bool> {
    if meter.active() {
        bound
            .iter()
            .map(|ba| ba.agg.class() == AggClass::Holistic)
            .collect()
    } else {
        vec![false; bound.len()]
    }
}

pub(crate) fn check_no_duplicates(b_schema: &Schema, bound: &[BoundAgg]) -> Result<()> {
    let mut names: Vec<&str> = b_schema.fields().iter().map(|f| f.name.as_str()).collect();
    for ba in bound {
        if names.contains(&ba.output.name.as_str()) {
            return Err(CoreError::DuplicateColumn(ba.output.name.clone()));
        }
        names.push(&ba.output.name);
    }
    Ok(())
}

/// The output schema of `MD(B, R, l, θ)`: `B`'s columns followed by one
/// column per aggregate (Definition 3.1's `B, f₁_R_c₁, …, f_n_R_c_n`).
pub fn output_schema(
    b_schema: &Schema,
    r_schema: &Schema,
    l: &[AggSpec],
    registry: &Registry,
) -> Result<Schema> {
    let bound = bind_aggs(l, r_schema, registry)?;
    check_no_duplicates(b_schema, &bound)?;
    let mut fields = b_schema.fields().to_vec();
    fields.extend(bound.into_iter().map(|ba| ba.output));
    Ok(Schema::new(fields))
}

/// Evaluate `MD(B, R, l, θ)` with Algorithm 3.1 (single-threaded).
///
/// Scans `R` once; for each detail tuple the probe plan yields the candidate
/// base rows (`Rel(t)`), whose aggregate states are updated. Every base row
/// produces exactly one output row — base rows with no matches report each
/// aggregate's empty value (SQL semantics: `count` → 0, others → NULL). This
/// is the outer-join behaviour Definition 3.1 prescribes ("the row count of
/// the result of the MD-join is the same as the row count of B").
pub(crate) fn md_join_serial(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> Result<Relation> {
    ctx.check_interrupt()?;
    let bound = bind_aggs(l, r.schema(), ctx.registry())?;
    check_no_duplicates(b.schema(), &bound)?;
    // Governor accounting for the two big allocations of Algorithm 3.1: the
    // per-base-row state vectors and (if the plan builds one) the hash probe
    // index, the latter charged inside `build_charged` before the index is
    // built. Charged up front; released by the guards on any exit.
    let _state_charge = MemCharge::try_new(ctx, governor::state_bytes(b.len(), bound.len()))?;
    let (plan, _index_charge) = ProbePlan::build_charged(b, r.schema(), theta, ctx)?;

    // states[i][j]: aggregate j of base row i.
    let mut states: Vec<Vec<Box<dyn AggState>>> = b
        .iter()
        .map(|_| bound.iter().map(|ba| ba.agg.init()).collect())
        .collect();

    // Holistic states grow with the data (footnote 2): under a budget their
    // actual growth is metered per update, not estimated up front.
    let mut meter = GrowthMeter::new(ctx);
    let metered = metered_flags(&bound, &meter);

    ctx.record_scan(r.len() as u64);
    let mut matches: Vec<usize> = Vec::new();
    let mut key_scratch: Vec<mdj_storage::Value> = Vec::new();
    for (ti, t) in r.iter().enumerate() {
        if ti % CANCEL_CHECK_INTERVAL == 0 {
            ctx.check_interrupt()?;
        }
        plan.matches(b, t.values(), ctx, &mut matches, &mut key_scratch)?;
        if matches.is_empty() {
            continue;
        }
        ctx.record_updates((matches.len() * bound.len()) as u64);
        for &bi in &matches {
            let row_states = &mut states[bi];
            for (j, ba) in bound.iter().enumerate() {
                let v = match ba.input_col {
                    Some(c) => &t[c],
                    None => &Value::Null, // star input: value unused
                };
                if metered[j] {
                    let before = row_states[j].heap_bytes();
                    row_states[j].update(v)?;
                    meter.charge(row_states[j].heap_bytes().saturating_sub(before))?;
                } else {
                    row_states[j].update(v)?;
                }
            }
        }
    }

    let mut fields = b.schema().fields().to_vec();
    fields.extend(bound.iter().map(|ba| ba.output.clone()));
    let schema = Schema::new(fields);
    let mut out = Relation::empty(schema);
    for (row, row_states) in b.iter().zip(states) {
        let mut vals = row.values().to_vec();
        vals.extend(row_states.iter().map(|s| s.finalize()));
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ProbeStrategy;
    use mdj_expr::builder::*;

    /// Small Sales table used across the tests:
    /// (cust, month, state, sale)
    fn sales() -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        let rows = vec![
            Row::from_values(vec![
                Value::Int(1),
                Value::Int(1),
                Value::str("NY"),
                Value::Float(10.0),
            ]),
            Row::from_values(vec![
                Value::Int(1),
                Value::Int(1),
                Value::str("NY"),
                Value::Float(30.0),
            ]),
            Row::from_values(vec![
                Value::Int(1),
                Value::Int(2),
                Value::str("NJ"),
                Value::Float(100.0),
            ]),
            Row::from_values(vec![
                Value::Int(2),
                Value::Int(1),
                Value::str("CT"),
                Value::Float(7.0),
            ]),
        ];
        Relation::from_rows(schema, rows)
    }

    #[test]
    fn definition_3_1_schema_and_cardinality() {
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let out = md_join_serial(
            &b,
            &s,
            &[AggSpec::on_column("sum", "sale"), AggSpec::count_star()],
            &eq(col_b("cust"), col_r("cust")),
            &ExecContext::new(),
        )
        .unwrap();
        assert_eq!(out.len(), b.len()); // |output| = |B|
        assert_eq!(out.schema().names(), vec!["cust", "sum_sale", "count_star"]);
    }

    #[test]
    fn aggregates_over_rng() {
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let out = md_join_serial(
            &b,
            &s,
            &[
                AggSpec::on_column("sum", "sale"),
                AggSpec::on_column("avg", "sale"),
                AggSpec::on_column("min", "sale"),
                AggSpec::on_column("max", "sale"),
            ],
            &eq(col_b("cust"), col_r("cust")),
            &ExecContext::new(),
        )
        .unwrap();
        let cust1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(cust1[1], Value::Float(140.0));
        assert_eq!(cust1[2], Value::Float(140.0 / 3.0));
        assert_eq!(cust1[3], Value::Float(10.0));
        assert_eq!(cust1[4], Value::Float(100.0));
    }

    #[test]
    fn outer_join_semantics_unmatched_base_rows() {
        // Example 2.2's point: customers with no NY purchases still appear.
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_r("state"), lit("NY")),
        );
        let out = md_join_serial(
            &b,
            &s,
            &[
                AggSpec::on_column("avg", "sale").with_alias("avg_ny"),
                AggSpec::count_star().with_alias("cnt_ny"),
            ],
            &theta,
            &ExecContext::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let cust2 = out.rows().iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(cust2[1], Value::Null); // avg of empty set
        assert_eq!(cust2[2], Value::Int(0)); // count of empty set
        let cust1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(cust1[1], Value::Float(20.0));
        assert_eq!(cust1[2], Value::Int(2));
    }

    #[test]
    fn empty_base_and_empty_detail() {
        let s = sales();
        let empty_b = Relation::empty(s.distinct_on(&["cust"]).unwrap().schema().clone());
        let out = md_join_serial(
            &empty_b,
            &s,
            &[AggSpec::count_star()],
            &eq(col_b("cust"), col_r("cust")),
            &ExecContext::new(),
        )
        .unwrap();
        assert!(out.is_empty());

        let b = s.distinct_on(&["cust"]).unwrap();
        let empty_r = Relation::empty(s.schema().clone());
        let out = md_join_serial(
            &b,
            &empty_r,
            &[AggSpec::count_star()],
            &eq(col_b("cust"), col_r("cust")),
            &ExecContext::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.rows().iter().all(|r| r[1] == Value::Int(0)));
    }

    #[test]
    fn tuple_may_update_many_base_rows() {
        // θ non-equijoin: every base row with month <= t.month matches
        // (a running total — impossible for plain GROUP BY, fine for MD-join).
        let s = sales();
        let b = s.distinct_on(&["month"]).unwrap();
        let theta = le(col_b("month"), col_r("month"));
        let out = md_join_serial(
            &b,
            &s,
            &[AggSpec::on_column("sum", "sale").with_alias("running")],
            &theta,
            &ExecContext::new(),
        )
        .unwrap();
        let m1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        let m2 = out.rows().iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(m1[1], Value::Float(147.0)); // all sales (months >= 1)
        assert_eq!(m2[1], Value::Float(100.0)); // only month-2 sales
    }

    #[test]
    fn strategies_agree() {
        let s = sales();
        let b = s.distinct_on(&["cust", "month"]).unwrap();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_b("month"), col_r("month")),
        );
        let l = [AggSpec::on_column("sum", "sale"), AggSpec::count_star()];
        let nl = md_join_serial(
            &b,
            &s,
            &l,
            &theta,
            &ExecContext::new().with_strategy(ProbeStrategy::NestedLoop),
        )
        .unwrap();
        let hp = md_join_serial(
            &b,
            &s,
            &l,
            &theta,
            &ExecContext::new().with_strategy(ProbeStrategy::HashProbe),
        )
        .unwrap();
        assert!(nl.same_multiset(&hp));
    }

    #[test]
    fn duplicate_output_column_rejected() {
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        // Alias collides with B's column.
        let err = md_join_serial(
            &b,
            &s,
            &[AggSpec::on_column("sum", "sale").with_alias("cust")],
            &eq(col_b("cust"), col_r("cust")),
            &ExecContext::new(),
        );
        assert!(matches!(err, Err(CoreError::DuplicateColumn(_))));
        // Two aggregates with the same default name collide too.
        let err = md_join_serial(
            &b,
            &s,
            &[
                AggSpec::on_column("sum", "sale"),
                AggSpec::on_column("sum", "sale"),
            ],
            &eq(col_b("cust"), col_r("cust")),
            &ExecContext::new(),
        );
        assert!(matches!(err, Err(CoreError::DuplicateColumn(_))));
    }

    #[test]
    fn output_schema_matches_run() {
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let l = [AggSpec::on_column("avg", "sale")];
        let reg = Registry::standard();
        let schema = output_schema(b.schema(), s.schema(), &l, &reg).unwrap();
        let out = md_join_serial(
            &b,
            &s,
            &l,
            &eq(col_b("cust"), col_r("cust")),
            &ExecContext::new(),
        )
        .unwrap();
        assert_eq!(out.schema(), &schema);
        assert_eq!(schema.field(1).dtype, DataType::Float);
    }

    #[test]
    fn base_rows_need_not_be_distinct() {
        // Definition 3.1: each tuple b ∈ B contributes an output tuple —
        // duplicates in B are preserved.
        let s = sales();
        let b = Relation::from_rows(
            Schema::from_pairs(&[("cust", DataType::Int)]),
            vec![Row::from_values([1i64]), Row::from_values([1i64])],
        );
        let out = md_join_serial(
            &b,
            &s,
            &[AggSpec::count_star()],
            &eq(col_b("cust"), col_r("cust")),
            &ExecContext::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0], out.rows()[1]);
    }

    #[test]
    fn builder_entry_point_matches_serial_evaluator() {
        use crate::builder::{ExecStrategy, MdJoin};
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let l = [AggSpec::on_column("sum", "sale").with_alias("total")];
        let via_builder = MdJoin::new(&b, &s)
            .theta(theta.clone())
            .aggs(&l)
            .strategy(ExecStrategy::Serial)
            .run(&ExecContext::new())
            .unwrap();
        let direct = md_join_serial(&b, &s, &l, &theta, &ExecContext::new()).unwrap();
        assert_eq!(via_builder.rows(), direct.rows());
        assert_eq!(via_builder.schema().names(), vec!["cust", "total"]);
    }

    #[test]
    fn stats_recorded() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let s = sales();
        let b = s.distinct_on(&["cust"]).unwrap();
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_strategy(ProbeStrategy::NestedLoop)
            .with_stats(stats.clone());
        md_join_serial(
            &b,
            &s,
            &[AggSpec::count_star()],
            &eq(col_b("cust"), col_r("cust")),
            &ctx,
        )
        .unwrap();
        assert_eq!(stats.scans(), 1);
        assert_eq!(stats.tuples_scanned(), 4);
        assert_eq!(stats.probes(), 8); // 4 tuples × |B|=2
        assert_eq!(stats.updates(), 4); // each tuple matches exactly one base row
    }
}
