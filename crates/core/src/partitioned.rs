//! Theorem 4.1 — partitioned evaluation:
//! `MD(B, R, l, θ) = ⋃ᵢ MD(Bᵢ, R, l, θ)` for any partition of `B`.
//!
//! Section 4.1.1's reading: when `B` (plus its aggregate state) exceeds
//! memory, split it into `m` pieces that do fit and trade one scan of `R` for
//! `m` scans — "a well-defined increase in the number of scans of R" in
//! exchange for in-memory evaluation.

use crate::context::ExecContext;
use crate::error::{CoreError, Result};
use crate::mdjoin::md_join_serial;
use mdj_agg::AggSpec;
use mdj_expr::Expr;
use mdj_storage::{partition, Relation};

/// Evaluate with `B` split into `m` chunks; `R` is scanned once per chunk.
/// Result is the (ordered) union of the per-chunk MD-joins, which by Theorem
/// 4.1 equals the unpartitioned result.
pub(crate) fn partitioned(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    m: usize,
    ctx: &ExecContext,
) -> Result<Relation> {
    if m == 0 {
        return Err(CoreError::BadConfig("partition count must be ≥ 1".into()));
    }
    let parts = partition::chunk(b, m);
    let mut pieces = Vec::with_capacity(parts.len());
    for part in &parts {
        ctx.check_interrupt()?;
        pieces.push(md_join_serial(part, r, l, theta, ctx)?);
    }
    let mut iter = pieces.into_iter();
    let first = iter.next().ok_or_else(|| {
        CoreError::Internal("partition::chunk yielded zero parts for m ≥ 1".into())
    })?;
    iter.try_fold(first, |acc, next| acc.union(&next).map_err(CoreError::from))
}

/// Pick the partition count from a memory budget: each base row's aggregate
/// state is estimated at `bytes_per_row`, and `m` is the smallest count whose
/// per-partition footprint fits `budget_bytes`. This is the planning knob the
/// paper's in-memory argument implies.
///
/// An empty `B` needs no partitioning (`Ok(1)`). A zero `bytes_per_row` or
/// zero `budget_bytes` is rejected as [`CoreError::BadConfig`]: the first
/// makes every footprint look free (silently defeating the budget), and no
/// partition count can fit the second — callers must supply real estimates,
/// not sentinel zeros.
pub fn partitions_for_budget(
    b_rows: usize,
    bytes_per_row: usize,
    budget_bytes: usize,
) -> Result<usize> {
    if b_rows == 0 {
        return Ok(1);
    }
    if bytes_per_row == 0 {
        return Err(CoreError::BadConfig(
            "bytes_per_row must be ≥ 1 (a zero estimate would make any B look free)".into(),
        ));
    }
    if budget_bytes == 0 {
        return Err(CoreError::BadConfig(
            "budget_bytes must be ≥ 1 (no partitioning fits a zero budget)".into(),
        ));
    }
    let total = b_rows.saturating_mul(bytes_per_row);
    Ok(total.div_ceil(budget_bytes).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdjoin::md_join_serial;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, Row, Schema};

    fn sales(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Int)]);
        Relation::from_rows(
            schema,
            (0..n).map(|i| Row::from_values([i % 10, i])).collect(),
        )
    }

    #[test]
    fn theorem_4_1_partitioned_equals_direct() {
        let s = sales(200);
        let b = s.distinct_on(&["cust"]).unwrap();
        let l = [mdj_agg::AggSpec::on_column("sum", "sale")];
        let theta = eq(col_b("cust"), col_r("cust"));
        let direct = md_join_serial(&b, &s, &l, &theta, &ExecContext::new()).unwrap();
        for m in [1, 2, 3, 7, 10, 50] {
            let part = partitioned(&b, &s, &l, &theta, m, &ExecContext::new()).unwrap();
            assert!(direct.same_multiset(&part), "m = {m}");
        }
    }

    #[test]
    fn m_scans_of_r() {
        use mdj_storage::ScanStats;
        use std::sync::Arc;
        let s = sales(100);
        let b = s.distinct_on(&["cust"]).unwrap();
        let l = [mdj_agg::AggSpec::count_star()];
        let theta = eq(col_b("cust"), col_r("cust"));
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new().with_stats(stats.clone());
        partitioned(&b, &s, &l, &theta, 4, &ctx).unwrap();
        assert_eq!(stats.scans(), 4);
        assert_eq!(stats.tuples_scanned(), 400);
    }

    #[test]
    fn zero_partitions_rejected() {
        let s = sales(10);
        let b = s.distinct_on(&["cust"]).unwrap();
        let err = partitioned(
            &b,
            &s,
            &[mdj_agg::AggSpec::count_star()],
            &eq(col_b("cust"), col_r("cust")),
            0,
            &ExecContext::new(),
        );
        assert!(matches!(err, Err(CoreError::BadConfig(_))));
    }

    #[test]
    fn budget_sizing() {
        // Empty B: nothing to partition.
        assert_eq!(partitions_for_budget(0, 100, 1000).unwrap(), 1);
        // Degenerate estimates are configuration errors, not silent 1s.
        assert!(matches!(
            partitions_for_budget(1000, 100, 0),
            Err(CoreError::BadConfig(_))
        ));
        assert!(matches!(
            partitions_for_budget(1000, 0, 25_000),
            Err(CoreError::BadConfig(_))
        ));
        // 1000 rows × 100 B = 100 kB; 25 kB budget → 4 partitions.
        assert_eq!(partitions_for_budget(1000, 100, 25_000).unwrap(), 4);
        // Fits entirely → 1 partition.
        assert_eq!(partitions_for_budget(10, 100, 100_000).unwrap(), 1);
        // Overflow-prone inputs saturate rather than wrap.
        assert!(partitions_for_budget(usize::MAX, usize::MAX, 1).is_ok());
    }

    #[test]
    fn empty_base_table() {
        let s = sales(10);
        let b = Relation::empty(s.distinct_on(&["cust"]).unwrap().schema().clone());
        let out = partitioned(
            &b,
            &s,
            &[mdj_agg::AggSpec::count_star()],
            &eq(col_b("cust"), col_r("cust")),
            3,
            &ExecContext::new(),
        )
        .unwrap();
        assert!(out.is_empty());
    }
}
