//! Disk-resident MD-join execution over the paged table store.
//!
//! [`PagedScan`] turns a [`PagedTable`] + [`BufferPool`] pair into a detail
//! source the evaluators can consume, and [`paged_md_join`] maps every
//! [`ExecStrategy`] onto it:
//!
//! * **Theorem 4.2 as page pruning** — θ's detail-only conjuncts on the
//!   clustered key become [`KeyBounds`] ([`key_bounds_from_theta`]), and
//!   because pages are sealed in clustered-key order with min/max keys in
//!   the manifest, the prefilter is answered *before any I/O*: pages whose
//!   key range cannot satisfy θ are never read. Observation 4.1's clustered
//!   index scan is exactly the surviving contiguous page range.
//! * **Serial** ([`paged_serial`]) — Algorithm 3.1 streaming one pinned page
//!   at a time: memory is one page plus aggregate state, never the table.
//! * **Vectorized** ([`paged_vectorized`]) — each page decodes straight into
//!   a [`ColumnarChunk`] (the page is the batch) and replays the existing
//!   [`BatchProbe`] machinery; output is row-identical to serial.
//! * **Morsel** ([`paged_morsel`]) — a morsel is a *pinned page run*:
//!   workers claim runs of consecutive admitted pages sized to
//!   `ctx.morsel_size` rows from a shared counter, keep full-`B` partial
//!   states per run, and the runs merge back in run order, so the result is
//!   deterministic regardless of which worker processed which run.
//! * Strategies that split `B` rather than the detail stream
//!   (`MorselBase`, `ChunkBase`, `ChunkDetail`, `Partitioned`) materialize
//!   the admitted pages once through the pool and delegate to the in-memory
//!   executor — the page store feeds them, the plan shape is unchanged.
//! * **Auto** prices the choice with the same coverage rule as the
//!   in-memory planner plus the paged I/O terms in [`crate::cost`].
//!
//! All paths record `pages_read` / `bytes_read` / `pool_evictions` through
//! [`ScanStats`](mdj_storage::ScanStats), so `EXPLAIN ANALYZE` shows the
//! Theorem 4.2 pushdown cutting physical I/O.

use crate::builder::{ExecStrategy, MdJoin};
use crate::context::{ExecContext, CANCEL_CHECK_INTERVAL};
use crate::error::{CoreError, Result};
use crate::governor::{self, panic_message, GrowthMeter, MemCharge, MemoryPool};
use crate::mdjoin::{bind_aggs, check_no_duplicates, metered_flags, BoundAgg};
use crate::probe::ProbePlan;
use crate::vectorized::{batch_coverage, BatchProbe};
use mdj_agg::{AggSpec, AggState};
use mdj_expr::analysis::{conjuncts, extract_range};
use mdj_expr::{Expr, Side};
use mdj_storage::{
    BufferPool, ColumnarChunk, KeyBounds, PagedTable, PinnedPage, PoolChargeFailed, PoolChargeHook,
    Relation, Row, Schema, Value, WorkerStats,
};
use std::any::Any;
use std::ops::Bound;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Bridges the storage crate's [`PoolChargeHook`] to the engine's shared
/// [`MemoryPool`]: every byte a [`BufferPool`] holds resident is reserved
/// from the same admission-control pool queries draw their budgets from, so
/// cached pages and query state compete for one limit instead of two.
#[derive(Debug)]
pub struct PoolChargeAdapter {
    pool: Arc<MemoryPool>,
}

impl PoolChargeAdapter {
    pub fn new(pool: Arc<MemoryPool>) -> Arc<Self> {
        Arc::new(PoolChargeAdapter { pool })
    }

    /// A buffer pool of `budget` bytes whose residency is charged to `mem`.
    pub fn hooked_pool(mem: Arc<MemoryPool>, budget: u64) -> Arc<BufferPool> {
        BufferPool::with_charge_hook(budget, Some(Self::new(mem)))
    }
}

impl PoolChargeHook for PoolChargeAdapter {
    fn reserve(&self, bytes: u64) -> std::result::Result<Box<dyn Any + Send>, PoolChargeFailed> {
        match self.pool.try_reserve(bytes) {
            Ok(grant) => Ok(Box::new(grant)),
            Err(CoreError::PoolExhausted {
                needed,
                available,
                capacity,
            }) => Err(PoolChargeFailed {
                needed,
                available,
                capacity,
            }),
            // try_reserve only fails with PoolExhausted today; map anything
            // new conservatively rather than panicking in the storage layer.
            Err(_) => Err(PoolChargeFailed {
                needed: bytes,
                available: self.pool.available(),
                capacity: self.pool.capacity(),
            }),
        }
    }
}

/// The Theorem 4.2 prefilter, restricted to what the clustered index can
/// answer: the tightest bounds on `key` implied by θ's *detail-only*
/// conjuncts (`R.key (op) literal` and mirrored forms). Conjuncts that
/// mention `B` depend on the base row and cannot prune pages; everything
/// else θ checks is still evaluated per tuple, so the bounds are a sound
/// superset filter, never a replacement for θ.
pub fn key_bounds_from_theta(theta: &Expr, key: &str) -> KeyBounds {
    let detail_only: Vec<Expr> = conjuncts(theta)
        .into_iter()
        .filter(|c| !c.uses_side(Side::Base))
        .collect();
    let (range, _rest) = extract_range(&detail_only, key);
    let mut kb = KeyBounds::default();
    if let Some(r) = range {
        match r.lower {
            Bound::Included(v) => kb.and_lo(v, true),
            Bound::Excluded(v) => kb.and_lo(v, false),
            Bound::Unbounded => {}
        }
        match r.upper {
            Bound::Included(v) => kb.and_hi(v, true),
            Bound::Excluded(v) => kb.and_hi(v, false),
            Bound::Unbounded => {}
        }
    }
    kb
}

/// A disk-resident detail source: one paged table read through a buffer
/// pool, optionally restricted to a clustered-key range.
#[derive(Debug, Clone)]
pub struct PagedScan {
    table: Arc<PagedTable>,
    pool: Arc<BufferPool>,
    bounds: KeyBounds,
}

impl PagedScan {
    /// A full-table scan of `table` through `pool`.
    pub fn new(table: Arc<PagedTable>, pool: Arc<BufferPool>) -> Self {
        PagedScan {
            table,
            pool,
            bounds: KeyBounds::default(),
        }
    }

    /// Restrict the scan to an explicit clustered-key range.
    pub fn with_bounds(mut self, bounds: KeyBounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Tighten the scan with the key range θ implies (Theorem 4.2 pushdown).
    pub fn prefiltered(mut self, theta: &Expr) -> Self {
        let extra = key_bounds_from_theta(theta, self.table.key_name());
        if let Some((v, incl)) = extra.lo {
            self.bounds.and_lo(v, incl);
        }
        if let Some((v, incl)) = extra.hi {
            self.bounds.and_hi(v, incl);
        }
        self
    }

    pub fn table(&self) -> &Arc<PagedTable> {
        &self.table
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    pub fn bounds(&self) -> &KeyBounds {
        &self.bounds
    }

    pub fn schema(&self) -> &Schema {
        self.table.schema()
    }

    /// Pages admitted by the bounds, in clustered order. Answered from the
    /// manifest's per-page min/max keys — zero I/O.
    pub fn admitted_pages(&self) -> Vec<usize> {
        self.table.pruned_pages(&self.bounds)
    }

    /// Total rows across the admitted pages (manifest metadata, zero I/O).
    pub fn admitted_rows(&self) -> u64 {
        self.admitted_pages()
            .iter()
            .filter_map(|&p| self.table.page_meta(p).ok())
            .map(|m| m.rows as u64)
            .sum()
    }

    /// Pin one page through the pool, recording I/O to the context's stats.
    pub fn fetch(&self, page_no: usize, ctx: &ExecContext) -> Result<PinnedPage> {
        self.pool
            .fetch(&self.table, page_no, ctx.stats().map(|s| s.as_ref()))
            .map_err(CoreError::from)
    }

    /// Read the admitted pages into an in-memory [`Relation`] (clustered
    /// order), each page fetched — and cached — through the pool. Records
    /// one scan of the admitted rows.
    pub fn materialize(&self, ctx: &ExecContext) -> Result<Relation> {
        let mut rel = Relation::empty(self.table.schema().clone());
        let pages = self.admitted_pages();
        let mut rows = 0u64;
        for &pno in &pages {
            ctx.check_interrupt()?;
            let page = self.fetch(pno, ctx)?;
            rows += page.len() as u64;
            for row in page.iter() {
                rel.push_unchecked(row.clone());
            }
        }
        ctx.record_scan(rows);
        Ok(rel)
    }
}

/// Evaluate `MD(B, scan, l, θ)` with `strategy` over the paged detail
/// source. Every strategy produces output bit-identical to the in-memory
/// evaluator over [`PagedScan::materialize`]'s relation; see the module docs
/// for how each strategy maps onto pages.
pub fn paged_md_join(
    b: &Relation,
    scan: &PagedScan,
    l: &[AggSpec],
    theta: &Expr,
    strategy: ExecStrategy,
    threads: Option<usize>,
    ctx: &ExecContext,
) -> Result<Relation> {
    let scan = scan.clone().prefiltered(theta);
    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    match strategy {
        ExecStrategy::Serial => paged_serial(b, &scan, l, theta, ctx),
        ExecStrategy::Vectorized => paged_vectorized(b, &scan, l, theta, ctx),
        ExecStrategy::Morsel | ExecStrategy::MorselDetail => {
            paged_morsel(b, &scan, l, theta, threads, ctx)
        }
        ExecStrategy::Partitioned { .. }
        | ExecStrategy::ChunkBase
        | ExecStrategy::ChunkDetail
        | ExecStrategy::MorselBase => {
            // These plans split B (or re-scan R per fragment): feed them the
            // admitted pages once, then run the unchanged in-memory plan.
            let r = scan.materialize(ctx)?;
            MdJoin::new(b, &r)
                .theta(theta.clone())
                .aggs(l)
                .strategy(strategy)
                .threads(threads)
                .run(ctx)
        }
        ExecStrategy::Auto => {
            let coverage = batch_coverage(b, theta, l, ctx);
            let vectorized = coverage.choose_vectorized();
            ctx.record_auto_decision(coverage.permille(), vectorized);
            let rows = scan.admitted_rows() as usize;
            if threads > 1 && rows > ctx.morsel_size() {
                paged_morsel(b, &scan, l, theta, threads, ctx)
            } else if vectorized {
                paged_vectorized(b, &scan, l, theta, ctx)
            } else {
                paged_serial(b, &scan, l, theta, ctx)
            }
        }
    }
}

type States = Vec<Vec<Box<dyn AggState>>>;

fn init_states(b: &Relation, bound: &[BoundAgg]) -> States {
    b.iter()
        .map(|_| bound.iter().map(|ba| ba.agg.init()).collect())
        .collect()
}

fn finalize(b: &Relation, bound: &[BoundAgg], states: States) -> Relation {
    let mut fields = b.schema().fields().to_vec();
    fields.extend(bound.iter().map(|ba| ba.output.clone()));
    let mut out = Relation::empty(Schema::new(fields));
    for (row, row_states) in b.iter().zip(states) {
        let mut vals = row.values().to_vec();
        vals.extend(row_states.iter().map(|s| s.finalize()));
        out.push_unchecked(Row::new(vals));
    }
    out
}

/// Algorithm 3.1 streaming the admitted pages one pinned page at a time.
/// Peak memory is one page plus aggregate state — the table itself is never
/// resident beyond what the pool caches.
pub(crate) fn paged_serial(
    b: &Relation,
    scan: &PagedScan,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> Result<Relation> {
    ctx.check_interrupt()?;
    let r_schema = scan.table().schema();
    let bound = bind_aggs(l, r_schema, ctx.registry())?;
    check_no_duplicates(b.schema(), &bound)?;
    let _state_charge = MemCharge::try_new(ctx, governor::state_bytes(b.len(), bound.len()))?;
    let (plan, _index_charge) = ProbePlan::build_charged(b, r_schema, theta, ctx)?;
    let mut states = init_states(b, &bound);
    let mut meter = GrowthMeter::new(ctx);
    let metered = metered_flags(&bound, &meter);

    let pages = scan.admitted_pages();
    ctx.record_scan(scan.admitted_rows());
    let mut matches: Vec<usize> = Vec::new();
    let mut key_scratch: Vec<Value> = Vec::new();
    let mut ti = 0usize;
    for &pno in &pages {
        let page = scan.fetch(pno, ctx)?;
        for t in page.iter() {
            if ti.is_multiple_of(CANCEL_CHECK_INTERVAL) {
                ctx.check_interrupt()?;
            }
            ti += 1;
            plan.matches(b, t.values(), ctx, &mut matches, &mut key_scratch)?;
            if matches.is_empty() {
                continue;
            }
            ctx.record_updates((matches.len() * bound.len()) as u64);
            for &bi in &matches {
                let row_states = &mut states[bi];
                for (j, ba) in bound.iter().enumerate() {
                    let v = match ba.input_col {
                        Some(c) => &t[c],
                        None => &Value::Null,
                    };
                    if metered[j] {
                        let before = row_states[j].heap_bytes();
                        row_states[j].update(v)?;
                        meter.charge(row_states[j].heap_bytes().saturating_sub(before))?;
                    } else {
                        row_states[j].update(v)?;
                    }
                }
            }
        }
    }
    Ok(finalize(b, &bound, states))
}

/// Vectorized paged execution: each pinned page decodes straight into a
/// [`ColumnarChunk`] (the page is the batch) and replays the shared
/// [`BatchProbe`]. Updates are applied in tuple order within each page and
/// pages stream in clustered order, so output is row-identical to
/// [`paged_serial`] — including `f64` accumulation order.
pub(crate) fn paged_vectorized(
    b: &Relation,
    scan: &PagedScan,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> Result<Relation> {
    ctx.check_interrupt()?;
    let r_schema = scan.table().schema();
    let bound = bind_aggs(l, r_schema, ctx.registry())?;
    check_no_duplicates(b.schema(), &bound)?;
    let _state_charge = MemCharge::try_new(ctx, governor::state_bytes(b.len(), bound.len()))?;
    let (plan, _index_charge) = ProbePlan::build_charged(b, r_schema, theta, ctx)?;
    let bp = BatchProbe::new(&plan, b);
    let mut needed = vec![false; r_schema.fields().len()];
    bp.collect_needed(&mut needed);
    let mut states = init_states(b, &bound);
    let mut meter = GrowthMeter::new(ctx);
    let metered = metered_flags(&bound, &meter);

    let pages = scan.admitted_pages();
    ctx.record_scan(scan.admitted_rows());
    let mut bpairs: Vec<(u32, usize)> = Vec::new();
    for &pno in &pages {
        ctx.check_interrupt()?;
        let page = scan.fetch(pno, ctx)?;
        let rows: &[Row] = &page;
        if rows.is_empty() {
            continue;
        }
        let chunk = ColumnarChunk::from_rows(rows, 0, rows.len(), &needed);
        bpairs.clear();
        let fell_back = bp.matches_batch(&chunk, rows, ctx, &mut bpairs)?;
        ctx.record_batch();
        if fell_back {
            ctx.record_batch_fallback();
        }
        ctx.record_updates((bpairs.len() * bound.len()) as u64);
        for &(i, row_id) in &bpairs {
            let t = &rows[i as usize];
            let row_states = &mut states[row_id];
            for (j, ba) in bound.iter().enumerate() {
                let v = match ba.input_col {
                    Some(c) => &t[c],
                    None => &Value::Null,
                };
                if metered[j] {
                    let before = row_states[j].heap_bytes();
                    row_states[j].update(v)?;
                    meter.charge(row_states[j].heap_bytes().saturating_sub(before))?;
                } else {
                    row_states[j].update(v)?;
                }
            }
        }
    }
    Ok(finalize(b, &bound, states))
}

/// Cut the admitted pages into runs of consecutive pages totalling at least
/// `morsel_rows` rows (always ≥ 1 page per run).
fn page_runs(scan: &PagedScan, pages: &[usize], morsel_rows: usize) -> Vec<Vec<usize>> {
    let mut runs: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut rows = 0usize;
    for &pno in pages {
        let n = scan
            .table()
            .page_meta(pno)
            .map(|m| m.rows as usize)
            .unwrap_or(0);
        cur.push(pno);
        rows += n;
        if rows >= morsel_rows.max(1) {
            runs.push(std::mem::take(&mut cur));
            rows = 0;
        }
    }
    if !cur.is_empty() {
        runs.push(cur);
    }
    runs
}

/// Morsel-parallel paged execution. A morsel is a *pinned page run*: workers
/// claim runs of consecutive admitted pages from a shared counter, evaluate
/// each run against full-`B` partial states, and deposit the run's states
/// under its run index. The deposits merge in run order — i.e. page order —
/// so the merged result is deterministic and identical to [`paged_serial`]
/// whenever each aggregate's merge is exact (every built-in is; `f64` sums
/// are exact for the dyadic inputs the differential suite uses).
pub(crate) fn paged_morsel(
    b: &Relation,
    scan: &PagedScan,
    l: &[AggSpec],
    theta: &Expr,
    threads: usize,
    ctx: &ExecContext,
) -> Result<Relation> {
    if threads == 0 {
        return Err(CoreError::BadConfig("thread count must be ≥ 1".into()));
    }
    ctx.check_interrupt()?;
    let r_schema = scan.table().schema();
    let bound = bind_aggs(l, r_schema, ctx.registry())?;
    check_no_duplicates(b.schema(), &bound)?;
    let (plan, _index_charge) = ProbePlan::build_charged(b, r_schema, theta, ctx)?;

    let pages = scan.admitted_pages();
    let runs = page_runs(scan, &pages, ctx.morsel_size());
    ctx.record_scan(scan.admitted_rows());
    if runs.is_empty() {
        return Ok(finalize(b, &bound, init_states(b, &bound)));
    }

    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, States)>> = Mutex::new(Vec::with_capacity(runs.len()));
    let bound_ref = &bound;
    let plan_ref = &plan;
    let runs_ref = &runs;

    let worker = |me: usize| -> Result<()> {
        // Each worker holds full-B state for the run it is computing.
        let _state_charge =
            MemCharge::try_new(ctx, governor::state_bytes(b.len(), bound_ref.len()))?;
        let mut ws = WorkerStats::new(me);
        let mut meter = GrowthMeter::new(ctx);
        let metered = metered_flags(bound_ref, &meter);
        let mut matches: Vec<usize> = Vec::new();
        let mut key_scratch: Vec<Value> = Vec::new();
        loop {
            let run_idx = next.fetch_add(1, Ordering::Relaxed);
            if run_idx >= runs_ref.len() {
                break;
            }
            ctx.check_interrupt()?;
            ws.morsels += 1;
            let mut states = init_states(b, bound_ref);
            for &pno in &runs_ref[run_idx] {
                let page = scan.fetch(pno, ctx)?;
                ws.tuples += page.len() as u64;
                for t in page.iter() {
                    plan_ref.matches(b, t.values(), ctx, &mut matches, &mut key_scratch)?;
                    if matches.is_empty() {
                        continue;
                    }
                    let n = (matches.len() * bound_ref.len()) as u64;
                    ctx.record_updates(n);
                    ws.updates += n;
                    for &bi in &matches {
                        let row_states = &mut states[bi];
                        for (j, ba) in bound_ref.iter().enumerate() {
                            let v = match ba.input_col {
                                Some(c) => &t[c],
                                None => &Value::Null,
                            };
                            if metered[j] {
                                let before = row_states[j].heap_bytes();
                                row_states[j].update(v)?;
                                meter.charge(row_states[j].heap_bytes().saturating_sub(before))?;
                            } else {
                                row_states[j].update(v)?;
                            }
                        }
                    }
                }
            }
            slots
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push((run_idx, states));
        }
        ctx.record_worker(ws);
        Ok(())
    };

    let workers = threads.min(runs.len());
    let results: Vec<Result<()>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                let worker = &worker;
                scope.spawn(move |_| worker(me))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(worker, h)| {
                h.join().unwrap_or_else(|payload| {
                    Err(CoreError::WorkerPanicked {
                        worker,
                        message: panic_message(payload.as_ref()),
                    })
                })
            })
            .collect()
    })
    .map_err(|payload| {
        CoreError::Internal(format!(
            "crossbeam scope failed: {}",
            panic_message(payload.as_ref())
        ))
    })?;
    results.into_iter().collect::<Result<Vec<()>>>()?;

    let mut deposits = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
    deposits.sort_by_key(|(run_idx, _)| *run_idx);
    let mut it = deposits.into_iter();
    let (_, mut total) = it
        .next()
        .ok_or_else(|| CoreError::Internal("paged morsel run produced no state sets".into()))?;
    for (_, states) in it {
        for (row_states, other_states) in total.iter_mut().zip(states) {
            for (s, o) in row_states.iter_mut().zip(other_states) {
                s.merge(o.as_ref())?;
            }
        }
    }
    Ok(finalize(b, &bound, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, PagedStore, ScanStats};
    use std::sync::atomic::AtomicU64;

    fn sales(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("cust", DataType::Int),
            ("sale", DataType::Float),
        ]);
        Relation::from_rows(
            schema,
            (0..n)
                .map(|i| {
                    Row::from_values(vec![
                        Value::Int(i % 37),
                        Value::Int(i % 7),
                        // Dyadic: every partial-sum order is bit-exact.
                        Value::Float(i as f64 * 0.5),
                    ])
                })
                .collect(),
        )
    }

    fn store_with(rel: &Relation, page_bytes: u64) -> (tempdir::Dir, PagedScan) {
        let dir = tempdir::Dir::new("mdj-core-paged");
        let (store, _) = PagedStore::open(dir.path()).unwrap();
        let table = store.create_table("sales", rel, "k", page_bytes).unwrap();
        let pool = BufferPool::new(64 * 1024);
        (dir, PagedScan::new(table, pool))
    }

    /// Minimal tempdir (no external crates): unique path under the target
    /// tmpdir, removed on drop.
    mod tempdir {
        use std::path::{Path, PathBuf};
        use std::sync::atomic::{AtomicU64, Ordering};

        static NEXT: AtomicU64 = AtomicU64::new(0);

        pub struct Dir(PathBuf);

        impl Dir {
            pub fn new(prefix: &str) -> Dir {
                let n = NEXT.fetch_add(1, Ordering::Relaxed);
                let path =
                    std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
                std::fs::create_dir_all(&path).unwrap();
                Dir(path)
            }

            pub fn path(&self) -> &Path {
                &self.0
            }
        }

        impl Drop for Dir {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }
    }

    #[test]
    fn key_bounds_extraction_covers_shapes_and_sides() {
        // Detail-only range on the key, both orientations.
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            and(ge(col_r("k"), lit(5i64)), gt(lit(20i64), col_r("k"))),
        );
        let kb = key_bounds_from_theta(&theta, "k");
        assert_eq!(kb.lo, Some((Value::Int(5), true)));
        assert_eq!(kb.hi, Some((Value::Int(20), false)));
        // Equality pins both ends.
        let kb = key_bounds_from_theta(&eq(col_r("k"), lit(7i64)), "k");
        assert_eq!(kb.lo, Some((Value::Int(7), true)));
        assert_eq!(kb.hi, Some((Value::Int(7), true)));
        // A bound involving B cannot prune (depends on the base row).
        let kb = key_bounds_from_theta(&ge(col_r("k"), col_b("cust")), "k");
        assert!(kb.is_unbounded());
        // Ranges on non-key columns do not leak onto the key.
        let kb = key_bounds_from_theta(&ge(col_r("cust"), lit(3i64)), "k");
        assert!(kb.is_unbounded());
    }

    #[test]
    fn every_paged_strategy_is_bit_identical_to_in_memory_serial() {
        let rel = sales(400);
        let (_dir, scan) = store_with(&rel, 512);
        // The paged store re-sorts by the clustered key: the in-memory
        // reference must scan in the same order for bit-identical floats
        // (dyadic values make every order exact, but probe/update counts are
        // only comparable on the same tuple order too).
        let sorted = scan
            .materialize(&ExecContext::new())
            .expect("materialize clustered order");
        let b = rel.distinct_on(&["cust"]).unwrap();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            and(ge(col_r("k"), lit(4i64)), le(col_r("k"), lit(30i64))),
        );
        let l = [
            AggSpec::on_column("sum", "sale"),
            AggSpec::on_column("avg", "sale"),
            AggSpec::count_star(),
        ];
        let reference = MdJoin::new(&b, &sorted)
            .theta(theta.clone())
            .aggs(&l)
            .strategy(ExecStrategy::Serial)
            .run(&ExecContext::new())
            .unwrap();
        let strategies = [
            ExecStrategy::Auto,
            ExecStrategy::Serial,
            ExecStrategy::Partitioned { partitions: 3 },
            ExecStrategy::ChunkBase,
            ExecStrategy::ChunkDetail,
            ExecStrategy::Morsel,
            ExecStrategy::MorselBase,
            ExecStrategy::MorselDetail,
            ExecStrategy::Vectorized,
        ];
        for strategy in strategies {
            let ctx = ExecContext::new().with_morsel_size(32);
            let out = paged_md_join(&b, &scan, &l, &theta, strategy, Some(4), &ctx).unwrap();
            assert_eq!(reference.schema(), out.schema(), "{strategy:?}");
            assert_eq!(reference.len(), out.len(), "{strategy:?}");
            for (a, c) in reference.rows().iter().zip(out.rows()) {
                for (x, y) in a.values().iter().zip(c.values()) {
                    match (x, y) {
                        (Value::Float(f), Value::Float(g)) => {
                            assert_eq!(f.to_bits(), g.to_bits(), "{strategy:?}");
                        }
                        _ => assert_eq!(x, y, "{strategy:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_4_2_pushdown_cuts_pages_read() {
        let rel = sales(600);
        let (_dir, scan) = store_with(&rel, 256);
        let b = rel.distinct_on(&["cust"]).unwrap();
        let l = [AggSpec::on_column("sum", "sale")];
        let run = |theta: &Expr| {
            let stats = Arc::new(ScanStats::new());
            let ctx = ExecContext::new().with_stats(stats.clone());
            scan.pool().clear();
            paged_md_join(&b, &scan, &l, theta, ExecStrategy::Serial, Some(1), &ctx).unwrap();
            (stats.pages_read(), stats.bytes_read())
        };
        let full = eq(col_b("cust"), col_r("cust"));
        let pruned = and(
            eq(col_b("cust"), col_r("cust")),
            and(ge(col_r("k"), lit(10i64)), le(col_r("k"), lit(12i64))),
        );
        let (full_pages, full_bytes) = run(&full);
        let (pruned_pages, pruned_bytes) = run(&pruned);
        assert!(full_pages > 0 && full_bytes > 0);
        assert!(
            pruned_pages < full_pages,
            "pushdown must cut pages: {pruned_pages} vs {full_pages}"
        );
        assert!(pruned_bytes < full_bytes);
        // Pruning is sound: the pruned run equals filtering in memory.
        let sorted = scan.materialize(&ExecContext::new()).unwrap();
        let reference = MdJoin::new(&b, &sorted)
            .theta(pruned.clone())
            .aggs(&l)
            .strategy(ExecStrategy::Serial)
            .run(&ExecContext::new())
            .unwrap();
        let out = paged_md_join(
            &b,
            &scan,
            &l,
            &pruned,
            ExecStrategy::Serial,
            Some(1),
            &ExecContext::new(),
        )
        .unwrap();
        assert_eq!(reference.rows(), out.rows());
    }

    #[test]
    fn pool_charge_adapter_reserves_and_releases_engine_memory() {
        let mem = Arc::new(MemoryPool::new(16 * 1024));
        let hook = PoolChargeAdapter::new(Arc::clone(&mem));
        let grant = hook.reserve(4096).expect("reserve within capacity");
        assert_eq!(mem.reserved(), 4096);
        drop(grant);
        assert_eq!(mem.reserved(), 0);
        // Starvation surfaces typed, with real numbers.
        let _held = hook.reserve(12 * 1024).unwrap();
        let err = hook.reserve(8 * 1024).unwrap_err();
        assert_eq!(err.needed, 8 * 1024);
        assert_eq!(err.capacity, 16 * 1024);
        assert_eq!(err.available, 4 * 1024);
    }

    #[test]
    fn hooked_buffer_pool_charges_resident_pages_to_the_engine_pool() {
        let rel = sales(300);
        let dir = tempdir::Dir::new("mdj-core-paged-hooked");
        let (store, _) = PagedStore::open(dir.path()).unwrap();
        let table = store.create_table("sales", &rel, "k", 512).unwrap();
        let mem = Arc::new(MemoryPool::new(1024 * 1024));
        let pool = PoolChargeAdapter::hooked_pool(Arc::clone(&mem), 64 * 1024);
        let scan = PagedScan::new(table, pool);
        let b = rel.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let l = [AggSpec::count_star()];
        paged_md_join(
            &b,
            &scan,
            &l,
            &theta,
            ExecStrategy::Serial,
            Some(1),
            &ExecContext::new(),
        )
        .unwrap();
        assert!(
            mem.reserved() > 0,
            "cached pages must hold engine-pool reservations"
        );
        scan.pool().clear();
        assert_eq!(mem.reserved(), 0, "clearing the pool releases every grant");
    }

    #[test]
    fn paged_morsel_reports_workers_and_uses_page_runs() {
        let rel = sales(1000);
        let (_dir, scan) = store_with(&rel, 256);
        let b = rel.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let l = [AggSpec::on_column("sum", "sale")];
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        paged_md_join(&b, &scan, &l, &theta, ExecStrategy::Morsel, Some(4), &ctx).unwrap();
        let workers = stats.workers();
        assert!(!workers.is_empty() && workers.len() <= 4);
        let tuples: u64 = workers.iter().map(|w| w.tuples).sum();
        assert_eq!(tuples, 1000);
        assert_eq!(stats.scans(), 1);
        assert!(stats.pages_read() > 0);
    }

    #[test]
    fn auto_records_its_decision_and_matches_serial() {
        let rel = sales(500);
        let (_dir, scan) = store_with(&rel, 512);
        let b = rel.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let l = [AggSpec::on_column("sum", "sale")];
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        let auto = paged_md_join(&b, &scan, &l, &theta, ExecStrategy::Auto, Some(2), &ctx).unwrap();
        let serial = paged_md_join(
            &b,
            &scan,
            &l,
            &theta,
            ExecStrategy::Serial,
            Some(1),
            &ExecContext::new(),
        )
        .unwrap();
        assert_eq!(auto.rows(), serial.rows());
        assert_eq!(stats.auto_decisions(), 1);
    }

    #[test]
    fn starved_pool_surfaces_pool_exhausted_not_wrong_rows() {
        let rel = sales(400);
        let dir = tempdir::Dir::new("mdj-core-paged-starved");
        let (store, _) = PagedStore::open(dir.path()).unwrap();
        let table = store.create_table("sales", &rel, "k", 512).unwrap();
        // Budget smaller than a single frame: the first fetch must fail.
        let pool = BufferPool::new(16);
        let scan = PagedScan::new(table, pool);
        let b = rel.distinct_on(&["cust"]).unwrap();
        let err = paged_md_join(
            &b,
            &scan,
            &[AggSpec::count_star()],
            &eq(col_b("cust"), col_r("cust")),
            ExecStrategy::Serial,
            Some(1),
            &ExecContext::new(),
        );
        assert!(
            matches!(err, Err(CoreError::PoolExhausted { .. })),
            "{err:?}"
        );
    }

    // Silence an unused-import lint when the tempdir helper shadows it.
    #[allow(dead_code)]
    fn _unused(_: &AtomicU64) {}
}
