//! Execution context, split for multi-tenant service use into an immutable,
//! shareable [`EngineConfig`] and a per-query [`QueryCtx`].
//!
//! One `Arc<EngineConfig>` — aggregate registry, planning knobs, spill
//! policy, and a catalog of copy-on-write relations — serves any number of
//! concurrent queries without cloning relation data. Everything that must be
//! isolated per query (stats, cancellation, deadline, memory tracker) lives
//! in `QueryCtx`. [`ExecContext`], the handle every evaluator consumes, is
//! just the pair; cloning it clones the cheap per-query half and bumps the
//! engine `Arc`.
//!
//! The raw fields of all three types are sealed: read through the accessor
//! methods, write through the builder-style `with_*` setters (or the few
//! explicit `set_*` mutators shells need). This keeps the public surface
//! stable while the internals move between the two halves.

use crate::cache::CuboidCache;
use crate::error::{CoreError, Result};
use crate::governor::{CancelToken, MemoryTracker};
use mdj_agg::Registry;
use mdj_storage::{Catalog, Row, ScanStats};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the inner loop of Algorithm 3.1 locates `Rel(t)` — the base rows a
/// detail tuple may update (Section 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeStrategy {
    /// Analyze θ: if it yields `B.col = f(R-row)` bindings, hash-index `B`
    /// on those columns; otherwise fall back to the nested loop.
    #[default]
    Auto,
    /// Always examine every row of `B` per detail tuple (the literal
    /// Algorithm 3.1 inner loop).
    NestedLoop,
    /// Require the hash probe; planning fails if θ has no usable bindings.
    HashProbe,
}

/// Whether a budget breach may degrade into *spilling* partitioned
/// evaluation (hash-partition `R` to disk run files once, evaluate each
/// `(Bᵢ, Rᵢ)` pair from its file) instead of re-scanning the in-memory `R`
/// m times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillPolicy {
    /// Cost the two degradation modes (`core::cost`) and pick the cheaper:
    /// re-scan work `m·|R|` vs one partitioning pass plus priced run-file
    /// I/O. Requires θ to carry hash-partitionable equality bindings.
    #[default]
    Auto,
    /// Never spill; always degrade by re-scanning (the PR-2 behaviour).
    Never,
    /// Spill whenever θ permits it, regardless of modeled cost (ablations
    /// and tests).
    Always,
}

/// Default morsel granularity (rows per task) for the parallel executor.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Default bound on per-morsel panic retries (initial attempt + 1 retry).
pub const DEFAULT_MORSEL_RETRIES: u32 = 1;

/// Detail tuples between governor polls in the serial scan loops: cheap
/// enough that `Instant::now` never shows up in a profile, frequent enough
/// that cancellation latency stays far below human-visible.
pub(crate) const CANCEL_CHECK_INTERVAL: usize = 1024;

/// The immutable, `Send + Sync` half of the execution context: everything
/// that is property of the *engine*, not of one query.
///
/// Build one, wrap it in an `Arc`, and share it across every session and
/// worker thread of a process. Relations in the [`catalog`](Self::catalog)
/// are stored behind `Arc`s, so queries read them without copies; replacing
/// a table produces a new catalog entry and never disturbs in-flight readers
/// (copy-on-write at the granularity of whole relations).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    registry: Registry,
    strategy: ProbeStrategy,
    prefilter: bool,
    morsel_size: usize,
    max_morsel_retries: u32,
    spill: SpillPolicy,
    spill_dir: Option<PathBuf>,
    catalog: Catalog,
    cuboid_cache: Option<Arc<CuboidCache>>,
    /// Shared buffer pool for paged catalog tables. Interior-mutable (like
    /// the catalog's paged handles) so a daemon can attach it after the
    /// config is built and `Arc`-shared; cloning the config shares the slot.
    buffer_pool: Arc<std::sync::Mutex<Option<Arc<mdj_storage::BufferPool>>>>,
}

/// What [`EngineConfig::ingest`] did: the catalog grew, and resident cuboids
/// were folded forward or dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Rows appended in this batch.
    pub rows: usize,
    /// Table version after the append (1 = first registration).
    pub version: u64,
    /// Cached cuboids dropped because they could not be maintained.
    pub cache_invalidated: u64,
    /// Cached cuboids incrementally maintained per Algorithm 3.1.
    pub cache_maintained: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            registry: Registry::default(),
            strategy: ProbeStrategy::default(),
            prefilter: true,
            morsel_size: DEFAULT_MORSEL_SIZE,
            max_morsel_retries: DEFAULT_MORSEL_RETRIES,
            spill: SpillPolicy::default(),
            spill_dir: None,
            catalog: Catalog::new(),
            cuboid_cache: None,
            buffer_pool: Arc::new(std::sync::Mutex::new(None)),
        }
    }
}

impl EngineConfig {
    pub fn new() -> Self {
        Self::default()
    }

    // ----- builder setters -----

    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    pub fn with_strategy(mut self, strategy: ProbeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Disable the operator-level Theorem 4.2 prefilter (ablation knob).
    pub fn without_prefilter(mut self) -> Self {
        self.prefilter = false;
        self
    }

    /// Set the morsel granularity (rows per task) for the parallel executor.
    pub fn with_morsel_size(mut self, rows: usize) -> Self {
        self.morsel_size = rows;
        self
    }

    /// Bound per-morsel panic retries (0 = fail on first panic).
    pub fn with_morsel_retries(mut self, retries: u32) -> Self {
        self.max_morsel_retries = retries;
        self
    }

    /// Choose whether budget-breach degradation may spill `R` partitions to
    /// disk run files (default: cost-based [`SpillPolicy::Auto`]).
    pub fn with_spill_policy(mut self, policy: SpillPolicy) -> Self {
        self.spill = policy;
        self
    }

    /// Directory for spill run files (default: the system temp directory).
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Use `catalog` as this engine's table catalog.
    pub fn with_catalog(mut self, catalog: Catalog) -> Self {
        self.catalog = catalog;
        self
    }

    /// Register (or replace) a relation in the catalog.
    pub fn register_table(mut self, name: impl Into<String>, rel: mdj_storage::Relation) -> Self {
        self.catalog.register(name, rel);
        self
    }

    /// Enable the cuboid result cache with a byte budget for finalized
    /// results (see [`crate::cache`]). Repeated canonical group-by MD-joins
    /// are answered from memory; coarser ones roll up from finer cached
    /// cuboids (Theorem 4.5); ingest maintains distributive entries
    /// incrementally (Algorithm 3.1).
    pub fn with_cuboid_cache(mut self, budget_bytes: usize) -> Self {
        self.cuboid_cache = Some(Arc::new(CuboidCache::new(budget_bytes)));
        self
    }

    /// Finish building: wrap in the `Arc` that sessions share.
    pub fn build(self) -> Arc<Self> {
        Arc::new(self)
    }

    // ----- accessors -----

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn strategy(&self) -> ProbeStrategy {
        self.strategy
    }

    pub fn prefilter(&self) -> bool {
        self.prefilter
    }

    pub fn morsel_size(&self) -> usize {
        self.morsel_size
    }

    pub fn max_morsel_retries(&self) -> u32 {
        self.max_morsel_retries
    }

    pub fn spill_policy(&self) -> SpillPolicy {
        self.spill
    }

    /// Configured spill directory, if any (`None` = system temp dir).
    pub fn spill_dir(&self) -> Option<&PathBuf> {
        self.spill_dir.as_ref()
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The cuboid result cache, if enabled.
    pub fn cuboid_cache(&self) -> Option<&Arc<CuboidCache>> {
        self.cuboid_cache.as_ref()
    }

    /// Attach the buffer pool that paged catalog tables are read through.
    /// Takes `&self` (interior mutability) so it can be called after
    /// [`build`](Self::build) — the daemon constructs the pool once its
    /// shared [`MemoryPool`](crate::governor::MemoryPool) exists, charging
    /// resident pages and query state to one budget.
    pub fn attach_buffer_pool(&self, pool: Arc<mdj_storage::BufferPool>) {
        *self
            .buffer_pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(pool);
    }

    /// The shared buffer pool for paged tables, if one is attached.
    pub fn buffer_pool(&self) -> Option<Arc<mdj_storage::BufferPool>> {
        self.buffer_pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Append `rows` to catalog table `table` (Algorithm 3.1 maintenance
    /// path). The batch is validated against the schema atomically — on any
    /// bad row nothing is appended — then folded into the resident cuboid
    /// cache: distributive entries are maintained in place, the rest are
    /// invalidated. In-flight queries keep reading the pre-append relation
    /// (copy-on-write at relation granularity).
    pub fn ingest(&self, table: &str, rows: Vec<Row>) -> Result<IngestReport> {
        let outcome = self.catalog.ingest(table, rows)?;
        let (cache_invalidated, cache_maintained) = match &self.cuboid_cache {
            Some(cache) => {
                let r = cache.on_ingest(&outcome, &self.registry);
                (r.invalidated, r.maintained)
            }
            None => (0, 0),
        };
        Ok(IngestReport {
            rows: outcome.appended.len(),
            version: outcome.version,
            cache_invalidated,
            cache_maintained,
        })
    }
}

/// The mutable, per-query half of the execution context: stats sink,
/// cancellation token, deadline, and memory tracker. One `QueryCtx` belongs
/// to exactly one query execution; sharing its `stats` or `memory` across
/// queries makes their counters bleed together (see
/// `tests/concurrent_sessions.rs` for the regression this caused).
#[derive(Debug, Clone, Default)]
pub struct QueryCtx {
    stats: Option<Arc<ScanStats>>,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    memory: Option<Arc<MemoryTracker>>,
    #[cfg(feature = "fault-injection")]
    fault: Option<Arc<crate::fault::FaultInjector>>,
}

impl QueryCtx {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_stats(mut self, stats: Arc<ScanStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Give the query `budget` of wall-clock time from now.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Set an absolute deadline instant.
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bound the estimated memory footprint with a fresh tracker.
    pub fn with_budget_bytes(mut self, budget: usize) -> Self {
        self.memory = Some(Arc::new(MemoryTracker::new(budget)));
        self
    }

    /// Attach an already-built tracker (e.g. one drawing its budget from a
    /// shared [`MemoryPool`](crate::governor::MemoryPool)).
    pub fn with_tracker(mut self, tracker: Arc<MemoryTracker>) -> Self {
        self.memory = Some(tracker);
        self
    }

    /// Attach a deterministic fault injector (robustness test harness).
    #[cfg(feature = "fault-injection")]
    pub fn with_fault_injector(mut self, fault: Arc<crate::fault::FaultInjector>) -> Self {
        self.fault = Some(fault);
        self
    }

    pub fn stats(&self) -> Option<&Arc<ScanStats>> {
        self.stats.as_ref()
    }

    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    pub fn memory(&self) -> Option<&Arc<MemoryTracker>> {
        self.memory.as_ref()
    }
}

/// The evaluation context every operator consumes: one shared
/// [`EngineConfig`] plus one per-query [`QueryCtx`].
///
/// The default context uses the standard aggregate registry, the `Auto`
/// strategy, no stats collection, and no governor limits (no cancellation
/// token, no deadline, no memory budget).
///
/// For single-user use the fluent `with_*` methods keep working exactly as
/// before the split — each engine-side setter copies the config on write
/// (`Arc::make_mut`), so a context built inline never mutates a config
/// another session shares.
#[derive(Debug, Clone)]
pub struct ExecContext {
    engine: Arc<EngineConfig>,
    query: QueryCtx,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext {
            engine: Arc::new(EngineConfig::default()),
            query: QueryCtx::default(),
        }
    }
}

impl ExecContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// Assemble a context from a shared engine config and a per-query half.
    /// This is the multi-tenant entry point: many threads call this against
    /// the same `Arc` without cloning registry or relations.
    pub fn from_parts(engine: Arc<EngineConfig>, query: QueryCtx) -> Self {
        ExecContext { engine, query }
    }

    /// The shared engine half.
    pub fn engine(&self) -> &Arc<EngineConfig> {
        &self.engine
    }

    /// The per-query half.
    pub fn query_ctx(&self) -> &QueryCtx {
        &self.query
    }

    fn engine_mut(&mut self) -> &mut EngineConfig {
        Arc::make_mut(&mut self.engine)
    }

    // ----- builder setters (engine half: copy-on-write) -----

    pub fn with_strategy(mut self, strategy: ProbeStrategy) -> Self {
        self.engine_mut().strategy = strategy;
        self
    }

    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.engine_mut().registry = registry;
        self
    }

    /// Disable the operator-level Theorem 4.2 prefilter (ablation knob).
    pub fn without_prefilter(mut self) -> Self {
        self.engine_mut().prefilter = false;
        self
    }

    /// Set the morsel granularity (rows per task) for the parallel executor.
    pub fn with_morsel_size(mut self, rows: usize) -> Self {
        self.engine_mut().morsel_size = rows;
        self
    }

    /// Bound per-morsel panic retries (0 = fail on first panic).
    pub fn with_morsel_retries(mut self, retries: u32) -> Self {
        self.engine_mut().max_morsel_retries = retries;
        self
    }

    /// Choose whether budget-breach degradation may spill `R` partitions to
    /// disk run files (default: cost-based [`SpillPolicy::Auto`]).
    pub fn with_spill_policy(mut self, policy: SpillPolicy) -> Self {
        self.engine_mut().spill = policy;
        self
    }

    /// Directory for spill run files (default: the system temp directory).
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.engine_mut().spill_dir = Some(dir.into());
        self
    }

    // ----- builder setters (query half) -----

    pub fn with_stats(mut self, stats: Arc<ScanStats>) -> Self {
        self.query.stats = Some(stats);
        self
    }

    /// Attach a cancellation token (cancel it from any thread to stop the
    /// query at its next governor poll).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.query.cancel = Some(token);
        self
    }

    /// Give queries run under this context `budget` of wall-clock time from
    /// now.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.query.deadline = Some(Instant::now() + budget);
        self
    }

    /// Bound the estimated memory footprint of base-table aggregate state
    /// and probe-index allocations. A breach degrades in-memory strategies
    /// into Theorem 4.1 partitioned evaluation (see `builder`).
    pub fn with_budget_bytes(mut self, budget: usize) -> Self {
        self.query.memory = Some(Arc::new(MemoryTracker::new(budget)));
        self
    }

    /// Attach a deterministic fault injector (robustness test harness).
    #[cfg(feature = "fault-injection")]
    pub fn with_fault_injector(mut self, fault: Arc<crate::fault::FaultInjector>) -> Self {
        self.query.fault = Some(fault);
        self
    }

    // ----- explicit mutators (interactive shells re-arm between queries) -----

    /// Install or clear the cancellation token in place.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.query.cancel = token;
    }

    /// Install or clear the absolute deadline in place.
    pub fn set_deadline_at(&mut self, deadline: Option<Instant>) {
        self.query.deadline = deadline;
    }

    /// Install or clear the stats sink in place.
    pub fn set_stats(&mut self, stats: Option<Arc<ScanStats>>) {
        self.query.stats = stats;
    }

    /// Install or clear the memory tracker in place.
    pub fn set_memory(&mut self, tracker: Option<Arc<MemoryTracker>>) {
        self.query.memory = tracker;
    }

    /// Swap the per-query half wholesale, keeping the shared engine.
    pub fn set_query_ctx(&mut self, query: QueryCtx) {
        self.query = query;
    }

    // ----- accessors (the sealed fields' public surface) -----

    pub fn registry(&self) -> &Registry {
        &self.engine.registry
    }

    /// The engine's cuboid result cache, if enabled.
    pub fn cuboid_cache(&self) -> Option<&Arc<CuboidCache>> {
        self.engine.cuboid_cache.as_ref()
    }

    /// The engine's shared buffer pool for paged tables, if attached.
    pub fn buffer_pool(&self) -> Option<Arc<mdj_storage::BufferPool>> {
        self.engine.buffer_pool()
    }

    /// Ingest through this context's engine (see [`EngineConfig::ingest`]),
    /// recording the batch and any cache invalidations on the context's
    /// [`ScanStats`] so they surface in EXPLAIN ANALYZE and stats snapshots.
    pub fn ingest(&self, table: &str, rows: Vec<Row>) -> Result<IngestReport> {
        let report = self.engine.ingest(table, rows)?;
        if let Some(stats) = self.stats() {
            stats.record_ingest_batch();
            stats.record_cache_invalidations(report.cache_invalidated);
        }
        Ok(report)
    }

    pub fn strategy(&self) -> ProbeStrategy {
        self.engine.strategy
    }

    pub fn prefilter(&self) -> bool {
        self.engine.prefilter
    }

    pub fn morsel_size(&self) -> usize {
        self.engine.morsel_size
    }

    pub fn max_morsel_retries(&self) -> u32 {
        self.engine.max_morsel_retries
    }

    pub fn spill_policy(&self) -> SpillPolicy {
        self.engine.spill
    }

    /// One-release compatibility alias for [`spill_policy`](Self::spill_policy)
    /// (the former `spill` field).
    #[doc(hidden)]
    pub fn spill(&self) -> SpillPolicy {
        self.engine.spill
    }

    pub fn stats(&self) -> Option<&Arc<ScanStats>> {
        self.query.stats.as_ref()
    }

    pub fn cancel(&self) -> Option<&CancelToken> {
        self.query.cancel.as_ref()
    }

    pub fn deadline(&self) -> Option<Instant> {
        self.query.deadline
    }

    pub fn memory(&self) -> Option<&Arc<MemoryTracker>> {
        self.query.memory.as_ref()
    }

    #[cfg(feature = "fault-injection")]
    pub fn fault(&self) -> Option<&Arc<crate::fault::FaultInjector>> {
        self.query.fault.as_ref()
    }

    /// Resolved spill directory.
    pub(crate) fn spill_dir(&self) -> PathBuf {
        self.engine
            .spill_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir)
    }

    /// Governor poll: fail fast with [`CoreError::Cancelled`] /
    /// [`CoreError::DeadlineExceeded`] if the query was cancelled or ran past
    /// its deadline. Free when neither limit is configured. Public so outer
    /// layers (plan executors, shells) can poll between operators at the same
    /// cost model as the strategies' internal polls.
    #[inline]
    pub fn check_interrupt(&self) -> Result<()> {
        if self.query.cancel.is_none() && self.query.deadline.is_none() {
            return Ok(());
        }
        if let Some(s) = &self.query.stats {
            s.record_cancel_poll();
        }
        if let Some(token) = &self.query.cancel {
            if token.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
        }
        if let Some(deadline) = &self.query.deadline {
            if Instant::now() >= *deadline {
                return Err(CoreError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Fault-injection hook at a morsel execution site. No-op without the
    /// `fault-injection` feature or with no injector armed.
    #[inline]
    #[allow(unused_variables)]
    pub(crate) fn fault_on_morsel(&self, morsel: usize) {
        #[cfg(feature = "fault-injection")]
        if let Some(f) = &self.query.fault {
            f.on_morsel(morsel);
        }
    }

    /// Fault-injection hook at a planner site (parse/compile/optimize):
    /// true = the SQL layer must fail the site with a typed error. Always
    /// compiled — callers in `mdj-sql`/`mdj-algebra` need no feature gate of
    /// their own; without the `fault-injection` feature this is a constant
    /// `false` the optimizer removes.
    #[inline]
    pub fn fault_should_fail_planner(&self) -> bool {
        #[cfg(feature = "fault-injection")]
        if let Some(f) = &self.query.fault {
            return f.should_fail_planner();
        }
        false
    }

    pub(crate) fn record_scan(&self, tuples: u64) {
        if let Some(s) = &self.query.stats {
            s.record_scan();
            s.record_tuples(tuples);
        }
    }

    pub(crate) fn record_probes(&self, n: u64) {
        if let Some(s) = &self.query.stats {
            s.record_probes(n);
        }
    }

    pub(crate) fn record_updates(&self, n: u64) {
        if let Some(s) = &self.query.stats {
            s.record_updates(n);
        }
    }

    pub(crate) fn record_worker(&self, worker: mdj_storage::WorkerStats) {
        if let Some(s) = &self.query.stats {
            s.record_worker(worker);
        }
    }

    pub(crate) fn record_batch(&self) {
        if let Some(s) = &self.query.stats {
            s.record_batch();
        }
    }

    pub(crate) fn record_batch_fallback(&self) {
        if let Some(s) = &self.query.stats {
            s.record_batch_fallback();
        }
    }

    pub(crate) fn record_fallback_reason(&self, reason: mdj_storage::FallbackReason) {
        if let Some(s) = &self.query.stats {
            s.record_fallback_reason(reason);
        }
    }

    pub(crate) fn record_gen_set(&self, scalar: bool) {
        if let Some(s) = &self.query.stats {
            s.record_gen_set(scalar);
        }
    }

    pub(crate) fn record_auto_decision(&self, coverage_permille: u64, batched: bool) {
        if let Some(s) = &self.query.stats {
            s.record_auto_decision(coverage_permille, batched);
        }
    }

    pub(crate) fn record_morsel_retry(&self) {
        if let Some(s) = &self.query.stats {
            s.record_morsel_retry();
        }
    }

    pub(crate) fn record_degradation(&self) {
        if let Some(s) = &self.query.stats {
            s.record_degradation();
        }
    }

    pub(crate) fn record_spill_partition(&self, bytes: u64) {
        if let Some(s) = &self.query.stats {
            s.record_spill_partition(bytes);
        }
    }

    pub(crate) fn record_spill_read_bytes(&self, bytes: u64) {
        if let Some(s) = &self.query.stats {
            s.record_spill_read_bytes(bytes);
        }
    }

    /// Fault-injection hook at a spill run-file write site: true = the spill
    /// layer must fail this write ENOSPC-style. No-op without the feature.
    #[inline]
    pub(crate) fn fault_should_fail_spill_write(&self) -> bool {
        #[cfg(feature = "fault-injection")]
        if let Some(f) = &self.query.fault {
            return f.should_fail_spill_write();
        }
        false
    }

    /// Fault-injection hook before a spill run-file read site: true = the
    /// file must be corrupted first. No-op without the feature.
    #[inline]
    pub(crate) fn fault_should_corrupt_spill_read(&self) -> bool {
        #[cfg(feature = "fault-injection")]
        if let Some(f) = &self.query.fault {
            return f.should_corrupt_spill_read();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The shared half must be safe to hand to every worker thread.
    #[test]
    fn engine_config_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Arc<EngineConfig>>();
        assert_send_sync::<ExecContext>();
    }

    #[test]
    fn builder_and_recording() {
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_strategy(ProbeStrategy::NestedLoop)
            .with_stats(stats.clone());
        ctx.record_scan(10);
        ctx.record_probes(5);
        ctx.record_updates(2);
        assert_eq!(stats.scans(), 1);
        assert_eq!(stats.tuples_scanned(), 10);
        assert_eq!(stats.probes(), 5);
        assert_eq!(stats.updates(), 2);
    }

    #[test]
    fn recording_without_stats_is_a_noop() {
        let ctx = ExecContext::new();
        ctx.record_scan(10); // must not panic
        assert!(ctx.stats().is_none());
    }

    #[test]
    fn interrupt_checks_report_typed_errors() {
        // No limits: free and Ok.
        assert!(ExecContext::new().check_interrupt().is_ok());
        // Cancelled token.
        let token = CancelToken::new();
        let ctx = ExecContext::new().with_cancel_token(token.clone());
        assert!(ctx.check_interrupt().is_ok());
        token.cancel();
        assert!(matches!(ctx.check_interrupt(), Err(CoreError::Cancelled)));
        // Expired deadline.
        let ctx = ExecContext::new().with_deadline(Duration::ZERO);
        assert!(matches!(
            ctx.check_interrupt(),
            Err(CoreError::DeadlineExceeded)
        ));
        // Generous deadline.
        let ctx = ExecContext::new().with_deadline(Duration::from_secs(3600));
        assert!(ctx.check_interrupt().is_ok());
    }

    #[test]
    fn interrupt_polls_are_counted() {
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_stats(stats.clone())
            .with_cancel_token(CancelToken::new());
        ctx.check_interrupt().unwrap();
        ctx.check_interrupt().unwrap();
        assert_eq!(stats.cancel_polls(), 2);
        // Without limits, polling is skipped entirely (and not counted).
        let free = ExecContext::new().with_stats(stats.clone());
        free.check_interrupt().unwrap();
        assert_eq!(stats.cancel_polls(), 2);
    }

    #[test]
    fn context_is_cloneable_with_shared_governor_state() {
        let token = CancelToken::new();
        let ctx = ExecContext::new()
            .with_cancel_token(token.clone())
            .with_budget_bytes(1 << 20);
        let clone = ctx.clone();
        token.cancel();
        assert!(matches!(clone.check_interrupt(), Err(CoreError::Cancelled)));
        // The tracker is shared, not duplicated.
        ctx.memory().unwrap().try_charge(100).unwrap();
        assert_eq!(clone.memory().unwrap().charged(), 100);
    }

    #[test]
    fn clones_share_the_engine_config_allocation() {
        let cfg = EngineConfig::new().with_morsel_size(99).build();
        let a = ExecContext::from_parts(cfg.clone(), QueryCtx::new());
        let b = a.clone();
        assert!(Arc::ptr_eq(a.engine(), b.engine()));
        assert_eq!(b.morsel_size(), 99);
    }

    #[test]
    fn engine_side_setters_copy_on_write() {
        let cfg = EngineConfig::new().build();
        let shared = ExecContext::from_parts(cfg.clone(), QueryCtx::new());
        // A per-context override forks the config instead of mutating the
        // shared one.
        let forked = shared.clone().with_morsel_size(7).without_prefilter();
        assert_eq!(forked.morsel_size(), 7);
        assert!(!forked.prefilter());
        assert_eq!(shared.morsel_size(), DEFAULT_MORSEL_SIZE);
        assert!(shared.prefilter());
        assert_eq!(cfg.morsel_size(), DEFAULT_MORSEL_SIZE);
        assert!(!Arc::ptr_eq(shared.engine(), forked.engine()));
    }

    #[test]
    fn from_parts_exposes_catalog_and_query_halves() {
        use mdj_storage::{DataType, Relation, Schema};
        let rel = Relation::empty(Schema::from_pairs(&[("x", DataType::Int)]));
        let cfg = EngineConfig::new()
            .register_table("T", rel)
            .with_spill_policy(SpillPolicy::Never)
            .build();
        let stats = Arc::new(ScanStats::new());
        let q = QueryCtx::new()
            .with_stats(stats.clone())
            .with_budget_bytes(1024);
        let ctx = ExecContext::from_parts(cfg.clone(), q);
        assert!(ctx.engine().catalog().contains("T"));
        assert_eq!(ctx.spill_policy(), SpillPolicy::Never);
        assert!(Arc::ptr_eq(ctx.stats().unwrap(), &stats));
        assert_eq!(ctx.memory().unwrap().budget(), 1024);
        assert!(ctx.query_ctx().cancel().is_none());
    }

    #[test]
    fn shell_mutators_rearm_in_place() {
        let mut ctx = ExecContext::new();
        let token = CancelToken::new();
        ctx.set_cancel_token(Some(token.clone()));
        ctx.set_deadline_at(Some(Instant::now() + Duration::from_secs(3600)));
        assert!(ctx.cancel().is_some() && ctx.deadline().is_some());
        ctx.set_cancel_token(None);
        ctx.set_deadline_at(None);
        assert!(ctx.cancel().is_none() && ctx.deadline().is_none());
        ctx.set_query_ctx(QueryCtx::new().with_cancel_token(token));
        assert!(ctx.cancel().is_some());
    }
}
