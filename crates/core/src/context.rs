//! Execution context: aggregate registry, probe strategy, scan accounting,
//! and the query governor (cancellation, deadline, memory budget).

use crate::error::{CoreError, Result};
use crate::governor::{CancelToken, MemoryTracker};
use mdj_agg::Registry;
use mdj_storage::ScanStats;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the inner loop of Algorithm 3.1 locates `Rel(t)` — the base rows a
/// detail tuple may update (Section 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeStrategy {
    /// Analyze θ: if it yields `B.col = f(R-row)` bindings, hash-index `B`
    /// on those columns; otherwise fall back to the nested loop.
    #[default]
    Auto,
    /// Always examine every row of `B` per detail tuple (the literal
    /// Algorithm 3.1 inner loop).
    NestedLoop,
    /// Require the hash probe; planning fails if θ has no usable bindings.
    HashProbe,
}

/// Whether a budget breach may degrade into *spilling* partitioned
/// evaluation (hash-partition `R` to disk run files once, evaluate each
/// `(Bᵢ, Rᵢ)` pair from its file) instead of re-scanning the in-memory `R`
/// m times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillPolicy {
    /// Cost the two degradation modes (`core::cost`) and pick the cheaper:
    /// re-scan work `m·|R|` vs one partitioning pass plus priced run-file
    /// I/O. Requires θ to carry hash-partitionable equality bindings.
    #[default]
    Auto,
    /// Never spill; always degrade by re-scanning (the PR-2 behaviour).
    Never,
    /// Spill whenever θ permits it, regardless of modeled cost (ablations
    /// and tests).
    Always,
}

/// Shared, immutable evaluation context.
///
/// The default context uses the standard aggregate registry, the `Auto`
/// strategy, no stats collection, and no governor limits (no cancellation
/// token, no deadline, no memory budget).
#[derive(Debug, Clone)]
pub struct ExecContext {
    pub registry: Registry,
    pub strategy: ProbeStrategy,
    /// Apply Theorem 4.2 inside the operator: evaluate detail-only conjuncts
    /// of θ once per scanned tuple, before any base-row work. On by default;
    /// turn off only for ablation measurements (experiment E6).
    pub prefilter: bool,
    /// When set, operators record scans/tuples/probes/updates here.
    pub stats: Option<Arc<ScanStats>>,
    /// Rows per work unit for the morsel-driven parallel executor. Small
    /// enough that stealing rebalances skew, large enough to amortize queue
    /// traffic.
    pub morsel_size: usize,
    /// Cooperative cancellation: every strategy polls this at
    /// morsel/partition/chunk granularity and stops with
    /// [`CoreError::Cancelled`] once triggered.
    pub cancel: Option<CancelToken>,
    /// Wall-clock deadline, polled at the same points as `cancel`; past it
    /// evaluation stops with [`CoreError::DeadlineExceeded`].
    pub deadline: Option<Instant>,
    /// Memory budget accounting: evaluators charge base-state and
    /// probe-index allocations here. Set via [`with_budget_bytes`]
    /// (`Self::with_budget_bytes`); a breach degrades in-memory strategies
    /// into Theorem 4.1 partitioned evaluation (see `builder`).
    pub memory: Option<Arc<MemoryTracker>>,
    /// How many times the morsel executor re-runs a panicked morsel before
    /// surfacing [`CoreError::MorselPanicked`].
    pub max_morsel_retries: u32,
    /// Whether budget-breach degradation may spill partitions of `R` to
    /// disk (see [`SpillPolicy`]).
    pub spill: SpillPolicy,
    /// Directory for spill run files; `None` = the system temp directory.
    /// Files are RAII-deleted, so the directory only holds live runs.
    pub spill_dir: Option<PathBuf>,
    /// Deterministic fault injection for the robustness test harness.
    #[cfg(feature = "fault-injection")]
    pub fault: Option<Arc<crate::fault::FaultInjector>>,
}

/// Default morsel granularity (rows per task) for the parallel executor.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

/// Default bound on per-morsel panic retries (initial attempt + 1 retry).
pub const DEFAULT_MORSEL_RETRIES: u32 = 1;

/// Detail tuples between governor polls in the serial scan loops: cheap
/// enough that `Instant::now` never shows up in a profile, frequent enough
/// that cancellation latency stays far below human-visible.
pub(crate) const CANCEL_CHECK_INTERVAL: usize = 1024;

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext {
            registry: Registry::default(),
            strategy: ProbeStrategy::default(),
            prefilter: true,
            stats: None,
            morsel_size: DEFAULT_MORSEL_SIZE,
            cancel: None,
            deadline: None,
            memory: None,
            max_morsel_retries: DEFAULT_MORSEL_RETRIES,
            spill: SpillPolicy::default(),
            spill_dir: None,
            #[cfg(feature = "fault-injection")]
            fault: None,
        }
    }
}

impl ExecContext {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_strategy(mut self, strategy: ProbeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    pub fn with_stats(mut self, stats: Arc<ScanStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Disable the operator-level Theorem 4.2 prefilter (ablation knob).
    pub fn without_prefilter(mut self) -> Self {
        self.prefilter = false;
        self
    }

    /// Set the morsel granularity (rows per task) for the parallel executor.
    pub fn with_morsel_size(mut self, rows: usize) -> Self {
        self.morsel_size = rows;
        self
    }

    /// Attach a cancellation token (cancel it from any thread to stop the
    /// query at its next governor poll).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Give queries run under this context `budget` of wall-clock time from
    /// now.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Bound the estimated memory footprint of base-table aggregate state
    /// and probe indexes. In-memory strategies that would exceed it are
    /// re-planned into Theorem 4.1 partitioned evaluation.
    pub fn with_budget_bytes(mut self, budget: usize) -> Self {
        self.memory = Some(Arc::new(MemoryTracker::new(budget)));
        self
    }

    /// Bound per-morsel panic retries (0 = fail on first panic).
    pub fn with_morsel_retries(mut self, retries: u32) -> Self {
        self.max_morsel_retries = retries;
        self
    }

    /// Choose whether budget-breach degradation may spill `R` partitions to
    /// disk run files (default: cost-based [`SpillPolicy::Auto`]).
    pub fn with_spill_policy(mut self, policy: SpillPolicy) -> Self {
        self.spill = policy;
        self
    }

    /// Directory for spill run files (default: the system temp directory).
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Resolved spill directory.
    pub(crate) fn spill_dir(&self) -> PathBuf {
        self.spill_dir.clone().unwrap_or_else(std::env::temp_dir)
    }

    /// Attach a deterministic fault injector (robustness test harness).
    #[cfg(feature = "fault-injection")]
    pub fn with_fault_injector(mut self, fault: Arc<crate::fault::FaultInjector>) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Governor poll: fail fast with [`CoreError::Cancelled`] /
    /// [`CoreError::DeadlineExceeded`] if the query was cancelled or ran past
    /// its deadline. Free when neither limit is configured. Public so outer
    /// layers (plan executors, shells) can poll between operators at the same
    /// cost model as the strategies' internal polls.
    #[inline]
    pub fn check_interrupt(&self) -> Result<()> {
        if self.cancel.is_none() && self.deadline.is_none() {
            return Ok(());
        }
        if let Some(s) = &self.stats {
            s.record_cancel_poll();
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(CoreError::Cancelled);
            }
        }
        if let Some(deadline) = &self.deadline {
            if Instant::now() >= *deadline {
                return Err(CoreError::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Fault-injection hook at a morsel execution site. No-op without the
    /// `fault-injection` feature or with no injector armed.
    #[inline]
    #[allow(unused_variables)]
    pub(crate) fn fault_on_morsel(&self, morsel: usize) {
        #[cfg(feature = "fault-injection")]
        if let Some(f) = &self.fault {
            f.on_morsel(morsel);
        }
    }

    pub(crate) fn record_scan(&self, tuples: u64) {
        if let Some(s) = &self.stats {
            s.record_scan();
            s.record_tuples(tuples);
        }
    }

    pub(crate) fn record_probes(&self, n: u64) {
        if let Some(s) = &self.stats {
            s.record_probes(n);
        }
    }

    pub(crate) fn record_updates(&self, n: u64) {
        if let Some(s) = &self.stats {
            s.record_updates(n);
        }
    }

    pub(crate) fn record_worker(&self, worker: mdj_storage::WorkerStats) {
        if let Some(s) = &self.stats {
            s.record_worker(worker);
        }
    }

    pub(crate) fn record_batch(&self) {
        if let Some(s) = &self.stats {
            s.record_batch();
        }
    }

    pub(crate) fn record_batch_fallback(&self) {
        if let Some(s) = &self.stats {
            s.record_batch_fallback();
        }
    }

    pub(crate) fn record_auto_decision(&self, coverage_permille: u64, batched: bool) {
        if let Some(s) = &self.stats {
            s.record_auto_decision(coverage_permille, batched);
        }
    }

    pub(crate) fn record_morsel_retry(&self) {
        if let Some(s) = &self.stats {
            s.record_morsel_retry();
        }
    }

    pub(crate) fn record_degradation(&self) {
        if let Some(s) = &self.stats {
            s.record_degradation();
        }
    }

    pub(crate) fn record_spill_partition(&self, bytes: u64) {
        if let Some(s) = &self.stats {
            s.record_spill_partition(bytes);
        }
    }

    pub(crate) fn record_spill_read_bytes(&self, bytes: u64) {
        if let Some(s) = &self.stats {
            s.record_spill_read_bytes(bytes);
        }
    }

    /// Fault-injection hook at a spill run-file write site: true = the spill
    /// layer must fail this write ENOSPC-style. No-op without the feature.
    #[inline]
    pub(crate) fn fault_should_fail_spill_write(&self) -> bool {
        #[cfg(feature = "fault-injection")]
        if let Some(f) = &self.fault {
            return f.should_fail_spill_write();
        }
        false
    }

    /// Fault-injection hook before a spill run-file read site: true = the
    /// file must be corrupted first. No-op without the feature.
    #[inline]
    pub(crate) fn fault_should_corrupt_spill_read(&self) -> bool {
        #[cfg(feature = "fault-injection")]
        if let Some(f) = &self.fault {
            return f.should_corrupt_spill_read();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn builder_and_recording() {
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_strategy(ProbeStrategy::NestedLoop)
            .with_stats(stats.clone());
        ctx.record_scan(10);
        ctx.record_probes(5);
        ctx.record_updates(2);
        assert_eq!(stats.scans(), 1);
        assert_eq!(stats.tuples_scanned(), 10);
        assert_eq!(stats.probes(), 5);
        assert_eq!(stats.updates(), 2);
    }

    #[test]
    fn recording_without_stats_is_a_noop() {
        let ctx = ExecContext::new();
        ctx.record_scan(10); // must not panic
        assert!(ctx.stats.is_none());
    }

    #[test]
    fn interrupt_checks_report_typed_errors() {
        // No limits: free and Ok.
        assert!(ExecContext::new().check_interrupt().is_ok());
        // Cancelled token.
        let token = CancelToken::new();
        let ctx = ExecContext::new().with_cancel_token(token.clone());
        assert!(ctx.check_interrupt().is_ok());
        token.cancel();
        assert!(matches!(ctx.check_interrupt(), Err(CoreError::Cancelled)));
        // Expired deadline.
        let ctx = ExecContext::new().with_deadline(Duration::ZERO);
        assert!(matches!(
            ctx.check_interrupt(),
            Err(CoreError::DeadlineExceeded)
        ));
        // Generous deadline.
        let ctx = ExecContext::new().with_deadline(Duration::from_secs(3600));
        assert!(ctx.check_interrupt().is_ok());
    }

    #[test]
    fn interrupt_polls_are_counted() {
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_stats(stats.clone())
            .with_cancel_token(CancelToken::new());
        ctx.check_interrupt().unwrap();
        ctx.check_interrupt().unwrap();
        assert_eq!(stats.cancel_polls(), 2);
        // Without limits, polling is skipped entirely (and not counted).
        let free = ExecContext::new().with_stats(stats.clone());
        free.check_interrupt().unwrap();
        assert_eq!(stats.cancel_polls(), 2);
    }

    #[test]
    fn context_is_cloneable_with_shared_governor_state() {
        let token = CancelToken::new();
        let ctx = ExecContext::new()
            .with_cancel_token(token.clone())
            .with_budget_bytes(1 << 20);
        let clone = ctx.clone();
        token.cancel();
        assert!(matches!(clone.check_interrupt(), Err(CoreError::Cancelled)));
        // The tracker is shared, not duplicated.
        ctx.memory.as_ref().unwrap().try_charge(100).unwrap();
        assert_eq!(clone.memory.as_ref().unwrap().charged(), 100);
    }
}
