//! Execution context: aggregate registry, probe strategy, and scan accounting.

use mdj_agg::Registry;
use mdj_storage::ScanStats;

/// How the inner loop of Algorithm 3.1 locates `Rel(t)` — the base rows a
/// detail tuple may update (Section 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeStrategy {
    /// Analyze θ: if it yields `B.col = f(R-row)` bindings, hash-index `B`
    /// on those columns; otherwise fall back to the nested loop.
    #[default]
    Auto,
    /// Always examine every row of `B` per detail tuple (the literal
    /// Algorithm 3.1 inner loop).
    NestedLoop,
    /// Require the hash probe; planning fails if θ has no usable bindings.
    HashProbe,
}

/// Shared, immutable evaluation context.
///
/// The default context uses the standard aggregate registry, the `Auto`
/// strategy, and no stats collection.
#[derive(Debug)]
pub struct ExecContext {
    pub registry: Registry,
    pub strategy: ProbeStrategy,
    /// Apply Theorem 4.2 inside the operator: evaluate detail-only conjuncts
    /// of θ once per scanned tuple, before any base-row work. On by default;
    /// turn off only for ablation measurements (experiment E6).
    pub prefilter: bool,
    /// When set, operators record scans/tuples/probes/updates here.
    pub stats: Option<std::sync::Arc<ScanStats>>,
    /// Rows per work unit for the morsel-driven parallel executor. Small
    /// enough that stealing rebalances skew, large enough to amortize queue
    /// traffic.
    pub morsel_size: usize,
}

/// Default morsel granularity (rows per task) for the parallel executor.
pub const DEFAULT_MORSEL_SIZE: usize = 4096;

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext {
            registry: Registry::default(),
            strategy: ProbeStrategy::default(),
            prefilter: true,
            stats: None,
            morsel_size: DEFAULT_MORSEL_SIZE,
        }
    }
}

impl ExecContext {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_strategy(mut self, strategy: ProbeStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    pub fn with_stats(mut self, stats: std::sync::Arc<ScanStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Disable the operator-level Theorem 4.2 prefilter (ablation knob).
    pub fn without_prefilter(mut self) -> Self {
        self.prefilter = false;
        self
    }

    /// Set the morsel granularity (rows per task) for the parallel executor.
    pub fn with_morsel_size(mut self, rows: usize) -> Self {
        self.morsel_size = rows;
        self
    }

    pub(crate) fn record_scan(&self, tuples: u64) {
        if let Some(s) = &self.stats {
            s.record_scan();
            s.record_tuples(tuples);
        }
    }

    pub(crate) fn record_probes(&self, n: u64) {
        if let Some(s) = &self.stats {
            s.record_probes(n);
        }
    }

    pub(crate) fn record_updates(&self, n: u64) {
        if let Some(s) = &self.stats {
            s.record_updates(n);
        }
    }

    pub(crate) fn record_worker(&self, worker: mdj_storage::WorkerStats) {
        if let Some(s) = &self.stats {
            s.record_worker(worker);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn builder_and_recording() {
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_strategy(ProbeStrategy::NestedLoop)
            .with_stats(stats.clone());
        ctx.record_scan(10);
        ctx.record_probes(5);
        ctx.record_updates(2);
        assert_eq!(stats.scans(), 1);
        assert_eq!(stats.tuples_scanned(), 10);
        assert_eq!(stats.probes(), 5);
        assert_eq!(stats.updates(), 2);
    }

    #[test]
    fn recording_without_stats_is_a_noop() {
        let ctx = ExecContext::new();
        ctx.record_scan(10); // must not panic
        assert!(ctx.stats.is_none());
    }
}
