//! # mdj-core
//!
//! The MD-join operator (Chatziantoniou & Johnson, ICDE 2001).
//!
//! `MD(B, R, l, θ)` (Definition 3.1) aggregates a detail relation `R` onto a
//! base-values relation `B`: every tuple `b ∈ B` yields exactly one output
//! tuple carrying `b`'s attributes plus, for each aggregate `fᵢ(cᵢ)` in `l`,
//! the aggregate of `cᵢ` over `RNG(b, R, θ) = { r ∈ R | θ(b, r) }`.
//!
//! This crate provides:
//!
//! * [`md_join`] — Algorithm 3.1: scan `R` once, probe `B` per tuple, update
//!   aggregate state; output cardinality equals `|B|` (outer-join semantics).
//! * [`generalized::md_join_multi`] — the *generalized* MD-join of Section
//!   4.3, `MD(B, R, (l₁..l_k), (θ₁..θ_k))`, evaluating a coalesced series of
//!   MD-joins in a single scan.
//! * [`probe`] — Section 4.5 index selection: θ is analyzed for
//!   `B.col = f(R-row)` bindings and a hash index on `B` replaces the inner
//!   nested loop with a `Rel(t)` lookup.
//! * [`partitioned`] / [`parallel`] — Theorem 4.1 evaluation plans:
//!   memory-bounded multi-scan evaluation and intra-operator parallelism.
//! * [`basevalues`] — builders for every base-table shape in Section 2:
//!   group-by distinct, cube-by with `ALL`, roll-up, grouping sets, unpivot
//!   marginals, and externally supplied tables (Example 2.4).

pub mod basevalues;
pub mod context;
pub mod error;
pub mod generalized;
pub mod mdjoin;
pub mod parallel;
pub mod partitioned;
pub mod probe;

pub use context::{ExecContext, ProbeStrategy};
pub use error::{CoreError, Result};
pub use mdjoin::{md_join, output_schema, MdJoin};
