//! # mdj-core
//!
//! The MD-join operator (Chatziantoniou & Johnson, ICDE 2001).
//!
//! `MD(B, R, l, θ)` (Definition 3.1) aggregates a detail relation `R` onto a
//! base-values relation `B`: every tuple `b ∈ B` yields exactly one output
//! tuple carrying `b`'s attributes plus, for each aggregate `fᵢ(cᵢ)` in `l`,
//! the aggregate of `cᵢ` over `RNG(b, R, θ) = { r ∈ R | θ(b, r) }`.
//!
//! ## Quick start — the `MdJoin` builder
//!
//! Every evaluation mode is reachable through one entrypoint,
//! [`MdJoin`](builder::MdJoin):
//!
//! ```
//! use mdj_core::prelude::*;
//! use mdj_expr::builder::*;
//! use mdj_storage::{Relation, Row, Schema, DataType, Value};
//!
//! let sales = Relation::from_rows(
//!     Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Float)]),
//!     vec![Row::new(vec![Value::Int(1), Value::Float(10.0)]),
//!          Row::new(vec![Value::Int(1), Value::Float(30.0)])],
//! );
//! let b = sales.distinct_on(&["cust"]).unwrap();
//! let out = MdJoin::new(&b, &sales)
//!     .theta(eq(col_b("cust"), col_r("cust")))   // θ: which detail rows feed each base row
//!     .agg("avg(sale)").unwrap()                  // l: the aggregate list
//!     .strategy(ExecStrategy::Auto)               // serial / partitioned / morsel-parallel
//!     .run(&ExecContext::new())
//!     .unwrap();
//! assert_eq!(out.rows()[0][1], Value::Float(20.0));
//! ```
//!
//! [`ExecStrategy`] selects the plan: [`ExecStrategy::Serial`] is Algorithm
//! 3.1; [`ExecStrategy::Partitioned`] is the Theorem 4.1 memory-bounded
//! multi-scan plan; [`ExecStrategy::ChunkBase`] / [`ExecStrategy::ChunkDetail`]
//! are the static one-chunk-per-thread parallel plans; and
//! [`ExecStrategy::Morsel`] (plus its `MorselBase` / `MorselDetail` forcings)
//! is the work-stealing morsel executor in [`morsel`]. Multi-θ generalized
//! MD-joins (Section 4.3) are expressed by adding
//! [`block`](builder::MdJoin::block)s.
//!
//! The deprecated free functions from the first release (`md_join`,
//! `md_join_partitioned`, …) have been removed; see the migration table in
//! the repository README. [`prelude`] is the single documented entry point.
//!
//! ## Modules
//!
//! * [`mdjoin`] — Algorithm 3.1: scan `R` once, probe `B` per tuple, update
//!   aggregate state; output cardinality equals `|B|` (outer-join semantics).
//! * [`morsel`] — the morsel-driven work-stealing parallel executor.
//! * [`generalized`] — the *generalized* MD-join of Section 4.3,
//!   `MD(B, R, (l₁..l_k), (θ₁..θ_k))`, evaluating a coalesced series of
//!   MD-joins in a single scan.
//! * [`probe`] — Section 4.5 index selection: θ is analyzed for
//!   `B.col = f(R-row)` bindings and a hash index on `B` replaces the inner
//!   nested loop with a `Rel(t)` lookup.
//! * [`vectorized`] — batched columnar execution
//!   ([`ExecStrategy::Vectorized`]): `R` is processed in columnar chunks with
//!   selection-vector prefilters, batched integer-key probing, and typed
//!   aggregate kernels, row-identical to the serial evaluator.
//! * [`partitioned`] / [`parallel`] — Theorem 4.1 evaluation plans:
//!   memory-bounded multi-scan evaluation and static intra-operator
//!   parallelism.
//! * [`basevalues`] — builders for every base-table shape in Section 2:
//!   group-by distinct, cube-by with `ALL`, roll-up, grouping sets, unpivot
//!   marginals, and externally supplied tables (Example 2.4).

pub mod basevalues;
pub mod builder;
pub mod cache;
pub mod context;
pub mod cost;
pub mod error;
#[cfg(feature = "fault-injection")]
pub mod fault;
pub mod generalized;
pub mod governor;
pub mod mdjoin;
pub mod morsel;
pub mod paged;
pub mod parallel;
pub mod partitioned;
pub mod probe;
mod spill_exec;
pub mod vectorized;

pub use builder::{ExecStrategy, MdJoin};
pub use cache::{CacheAnswer, CacheIngestReport, CacheMetricsSnapshot, CuboidCache, CuboidRequest};
pub use context::{
    EngineConfig, ExecContext, IngestReport, ProbeStrategy, QueryCtx, SpillPolicy,
    DEFAULT_MORSEL_RETRIES, DEFAULT_MORSEL_SIZE,
};
pub use error::{CoreError, Result};
#[cfg(feature = "fault-injection")]
pub use fault::FaultInjector;
pub use generalized::Block;
pub use governor::{CancelToken, MemoryPool, MemoryTracker, PoolGrant};
pub use mdjoin::output_schema;
pub use morsel::{choose_side, MorselSide};
pub use paged::{key_bounds_from_theta, paged_md_join, PagedScan, PoolChargeAdapter};
pub use spill_exec::recover_spill_dir;

/// Curated re-exports: everything a typical MD-join program needs.
///
/// ```
/// use mdj_core::prelude::*;
/// ```
pub mod prelude {
    pub use crate::basevalues;
    pub use crate::builder::{ExecStrategy, MdJoin};
    pub use crate::context::{EngineConfig, ExecContext, ProbeStrategy, QueryCtx, SpillPolicy};
    pub use crate::error::{CoreError, Result};
    #[cfg(feature = "fault-injection")]
    pub use crate::fault::FaultInjector;
    pub use crate::generalized::Block;
    pub use crate::governor::{CancelToken, MemoryPool, MemoryTracker, PoolGrant};
    pub use crate::mdjoin::output_schema;
    pub use crate::morsel::MorselSide;
    pub use crate::paged::{paged_md_join, PagedScan, PoolChargeAdapter};
    pub use mdj_agg::{AggInput, AggSpec};
    pub use mdj_expr::builder::{and, col_b, col_r, eq, ge, gt, le, lit, lt, ne, not, or};
    pub use mdj_expr::Expr;
    pub use mdj_storage::{DataType, Field, Relation, Row, ScanStats, Schema, Value};
}
