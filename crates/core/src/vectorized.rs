//! Vectorized batch execution of Algorithm 3.1.
//!
//! The serial evaluator interprets everything per row: each conjunct of θ is
//! a `BoundExpr` tree walk, each aggregate update a virtual call through
//! `Box<dyn AggState>` with a `Value` in between. This module processes `R`
//! in columnar batches instead:
//!
//! 1. each batch of `ctx.morsel_size` tuples is transposed into a
//!    [`ColumnarChunk`] (only the columns θ and `l` actually read);
//! 2. the Theorem 4.2 prefilter evaluates over the whole batch into a
//!    selection vector ([`mdj_expr::vectorized::eval_batch`]);
//! 3. hash-probe keys are computed for the whole batch in one typed loop and
//!    looked up through a specialized single-`i64`-key map ([`BatchProbe`]);
//! 4. matched tuples are grouped per base row and aggregate updates applied
//!    through typed [`KernelState`] kernels — one dispatch per (base row,
//!    batch) run over native slices, not one per value.
//!
//! Every step falls back to the scalar interpreter for shapes it cannot
//! prove equivalent (counted in `ScanStats::batch_fallbacks`), and all work
//! accounting (scans, probes, updates) is identical to [`md_join_serial`] by
//! construction, so the two paths are interchangeable in experiments. The
//! output is row-identical to the serial evaluator — including `f64`
//! accumulation order, which follows tuple order per base row in both.

use crate::context::ExecContext;
use crate::error::Result;
use crate::governor::{self, GrowthMeter, MemCharge};
use crate::mdjoin::{bind_aggs, check_no_duplicates, metered_flags, BoundAgg};
use crate::probe::ProbePlan;
use mdj_agg::{AggSpec, AggState, KernelState};
use mdj_expr::vectorized::{collect_detail_cols, eval_batch, BatchVals};
use mdj_expr::Expr;
use mdj_storage::{Column, ColumnarChunk, Relation, Row, Schema, Value};
use std::collections::HashMap;

/// Largest batch the executor will form. Batches index tuples with `u32`
/// selection vectors; anything near this is already far past the size where
/// batching helps.
const MAX_BATCH: usize = u32::MAX as usize;

/// Multiplicative hasher (Fibonacci-style) for the single-`i64`-key probe
/// map. The default SipHash costs more per lookup than the bucket scan it
/// guards; key distribution here is adversary-free (the map is rebuilt per
/// plan from B's own keys), so a fast non-cryptographic mix is safe.
#[derive(Default)]
struct IntHasher(u64);

impl std::hash::Hasher for IntHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 = (self.0.rotate_left(5) ^ byte as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }
    fn write_i64(&mut self, v: i64) {
        self.0 = (self.0.rotate_left(5) ^ v as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type IntMap<V> = HashMap<i64, V, std::hash::BuildHasherDefault<IntHasher>>;

/// Batched `Rel(t)` computation over a [`ProbePlan`], shared by the serial
/// vectorized evaluator and the batched morsel executor.
///
/// Vectorizes two layers when possible — the Theorem 4.2 prefilter (batch →
/// selection vector) and single-column integer probe keys (batch → key array
/// → lookups in an `i64`-keyed copy of the index) — and delegates any row it
/// cannot cover to [`ProbePlan::matches`], whose probe accounting it matches
/// exactly: prefiltered-out and NULL-key tuples record zero probes, hash
/// probes record the bucket length, nested-loop probes record `|B|`.
pub(crate) struct BatchProbe<'a> {
    plan: &'a ProbePlan,
    b: &'a Relation,
    /// Single-`Int`-key buckets extracted from the plan's index. Sound
    /// because index keys are canonicalized (integral floats are already
    /// `Int`), so an `Int` probe key can only ever match an `Int` bucket.
    fast_int: Option<IntMap<Vec<usize>>>,
}

impl<'a> BatchProbe<'a> {
    pub(crate) fn new(plan: &'a ProbePlan, b: &'a Relation) -> Self {
        let fast_int = match plan {
            ProbePlan::Hash {
                index, key_exprs, ..
            } if key_exprs.len() == 1 => {
                let mut map = IntMap::default();
                for (key, rows) in index.entries() {
                    if let [Value::Int(k)] = key {
                        map.insert(*k, rows.to_vec());
                    }
                    // Non-Int buckets are unreachable from an Int key batch
                    // and stay served by the scalar path.
                }
                Some(map)
            }
            _ => None,
        };
        BatchProbe { plan, b, fast_int }
    }

    /// Mark the detail columns batches must materialize for this plan: the
    /// prefilter's and the probe-key expressions'. (Nested-loop θ and hash
    /// residuals evaluate scalar against the row form and need no columns.)
    pub(crate) fn collect_needed(&self, needed: &mut [bool]) {
        match self.plan {
            ProbePlan::NestedLoop { prefilter, .. } => {
                if let Some(p) = prefilter {
                    collect_detail_cols(p, needed);
                }
            }
            ProbePlan::Hash {
                key_exprs,
                prefilter,
                ..
            } => {
                for e in key_exprs {
                    collect_detail_cols(e, needed);
                }
                if let Some(p) = prefilter {
                    collect_detail_cols(p, needed);
                }
            }
        }
    }

    /// Compute `Rel(t)` for every tuple of `chunk`, appending
    /// `(batch-local tuple index, base row id)` pairs in tuple order.
    /// Returns `true` if any part of the batch fell back to the scalar
    /// interpreter.
    pub(crate) fn matches_batch(
        &self,
        chunk: &ColumnarChunk,
        rows: &[Row],
        ctx: &ExecContext,
        pairs: &mut Vec<(u32, usize)>,
    ) -> Result<bool> {
        let n = chunk.len();
        let start = chunk.start();
        let mut fell_back = false;

        let prefilter = match self.plan {
            ProbePlan::NestedLoop { prefilter, .. } => prefilter.as_ref(),
            ProbePlan::Hash { prefilter, .. } => prefilter.as_ref(),
        };
        // A vectorized prefilter yields the batch's selection vector. When it
        // doesn't vectorize, `sel` stays `None` and the scalar paths below
        // apply the prefilter per row themselves (ProbePlan::matches does it
        // internally).
        let sel: Option<Vec<bool>> = match prefilter {
            Some(p) => match eval_batch(p, chunk) {
                Some(bv) => Some(bv.to_selection(n)),
                None => {
                    fell_back = true;
                    None
                }
            },
            None => None,
        };
        let selected = |i: usize| sel.as_ref().is_none_or(|s| s[i]);

        // Fast path: single integer key column, vectorized key batch.
        if let (
            Some(map),
            ProbePlan::Hash {
                key_exprs,
                residual,
                ..
            },
        ) = (&self.fast_int, self.plan)
        {
            let keys = eval_batch(&key_exprs[0], chunk);
            let keyed: Option<(Vec<i64>, Vec<bool>)> = match keys {
                Some(BatchVals::Ints { vals, nulls }) => Some((vals, nulls)),
                Some(BatchVals::Const(Value::Int(k))) => Some((vec![k; n], vec![false; n])),
                // Every key NULL: SQL equality never matches, zero probes.
                Some(BatchVals::Const(Value::Null)) => Some((vec![0; n], vec![true; n])),
                _ => None,
            };
            if let Some((vals, nulls)) = keyed {
                for i in 0..n {
                    if !selected(i) {
                        continue;
                    }
                    let t = rows[start + i].values();
                    if sel.is_none() {
                        if let Some(p) = prefilter {
                            if !p.eval_bool(&[], t)? {
                                continue;
                            }
                        }
                    }
                    if nulls[i] {
                        continue; // NULL key: no probes, no matches
                    }
                    let bucket = map.get(&vals[i]).map(Vec::as_slice).unwrap_or(&[]);
                    ctx.record_probes(bucket.len() as u64);
                    match residual {
                        None => pairs.extend(bucket.iter().map(|&bi| (i as u32, bi))),
                        Some(res) => {
                            for &bi in bucket {
                                if res.eval_bool(self.b.rows()[bi].values(), t)? {
                                    pairs.push((i as u32, bi));
                                }
                            }
                        }
                    }
                }
                return Ok(fell_back);
            }
            fell_back = true;
        } else if self.plan.is_hash() {
            // Multi-key or non-Int-keyed index: scalar key computation.
            fell_back = true;
        } else {
            // Nested loop: θ references the base side, inherently scalar.
            fell_back = true;
        }

        // Scalar path: delegate each surviving tuple to the interpreter's
        // `matches`, which applies prefilter/keys/θ with identical probe
        // accounting. (For tuples a vectorized prefilter already rejected we
        // skip the call entirely — `matches` would record nothing for them.)
        let mut matches: Vec<usize> = Vec::new();
        let mut key_scratch: Vec<Value> = Vec::new();
        for i in 0..n {
            if !selected(i) {
                continue;
            }
            self.plan.matches(
                self.b,
                rows[start + i].values(),
                ctx,
                &mut matches,
                &mut key_scratch,
            )?;
            pairs.extend(matches.iter().map(|&bi| (i as u32, bi)));
        }
        Ok(fell_back)
    }
}

/// Per-aggregate state column: a typed kernel column when the aggregate has
/// a kernel form, the boxed scalar states otherwise.
enum ColStates {
    Kernel(Vec<KernelState>),
    Boxed(Vec<Box<dyn AggState>>),
}

/// Evaluate `MD(B, R, l, θ)` with batched, vectorized execution. Output is
/// row-identical to [`crate::mdjoin::md_join_serial`], with identical
/// scan/probe/update accounting.
pub(crate) fn md_join_vectorized(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> Result<Relation> {
    ctx.check_interrupt()?;
    let bound = bind_aggs(l, r.schema(), &ctx.registry)?;
    check_no_duplicates(b.schema(), &bound)?;
    let _state_charge = MemCharge::try_new(ctx, governor::state_bytes(b.len(), bound.len()))?;
    let (plan, _index_charge) = ProbePlan::build_charged(b, r.schema(), theta, ctx)?;
    let probe = BatchProbe::new(&plan, b);

    let mut cols: Vec<ColStates> = bound
        .iter()
        .map(|ba| match ba.agg.kernel() {
            Some(kind) => ColStates::Kernel((0..b.len()).map(|_| kind.init()).collect()),
            None => ColStates::Boxed(b.iter().map(|_| ba.agg.init()).collect()),
        })
        .collect();
    let mut meter = GrowthMeter::new(ctx);
    let metered = metered_flags(&bound, &meter);

    // Materialize only the columns the probe and the aggregates read.
    let mut needed = vec![false; r.schema().fields().len()];
    probe.collect_needed(&mut needed);
    for ba in &bound {
        if let Some(c) = ba.input_col {
            needed[c] = true;
        }
    }

    ctx.record_scan(r.len() as u64);
    let rows = r.rows();
    let batch_rows = ctx.morsel_size.clamp(1, MAX_BATCH);
    let mut pairs: Vec<(u32, usize)> = Vec::new();
    // Batch-local grouping of matched tuples per base row, in tuple order
    // (so f64 accumulation order matches the serial evaluator exactly). The
    // scoreboard is direct-mapped over B — no hashing per pair — and only the
    // slots a batch touched are reset; group buffers are recycled across
    // batches.
    let mut groups: Vec<(usize, Vec<u32>)> = Vec::new();
    let mut n_groups = 0usize;
    let mut group_of: Vec<usize> = vec![usize::MAX; b.len()];
    let mut start = 0usize;
    while start < rows.len() {
        ctx.check_interrupt()?;
        let len = batch_rows.min(rows.len() - start);
        let chunk = ColumnarChunk::from_rows(rows, start, len, &needed);
        pairs.clear();
        let fell_back = probe.matches_batch(&chunk, rows, ctx, &mut pairs)?;
        ctx.record_batch();
        if fell_back {
            ctx.record_batch_fallback();
        }
        if pairs.is_empty() {
            start += len;
            continue;
        }
        ctx.record_updates((pairs.len() * bound.len()) as u64);

        for (bi, _) in &groups[..n_groups] {
            group_of[*bi] = usize::MAX;
        }
        n_groups = 0;
        for &(i, bi) in &pairs {
            let mut g = group_of[bi];
            if g == usize::MAX {
                g = n_groups;
                group_of[bi] = g;
                if n_groups == groups.len() {
                    groups.push((bi, Vec::new()));
                } else {
                    groups[n_groups].0 = bi;
                    groups[n_groups].1.clear();
                }
                n_groups += 1;
            }
            groups[g].1.push(i);
        }

        for (j, ba) in bound.iter().enumerate() {
            apply_batch(
                &mut cols[j],
                ba,
                &groups[..n_groups],
                &chunk,
                rows,
                start,
                metered[j],
                &mut meter,
            )?;
        }
        start += len;
    }

    let mut fields = b.schema().fields().to_vec();
    fields.extend(bound.iter().map(|ba| ba.output.clone()));
    let mut out = Relation::empty(Schema::new(fields));
    for (bi, row) in b.iter().enumerate() {
        let mut vals = row.values().to_vec();
        vals.extend(cols.iter().map(|col| match col {
            ColStates::Kernel(states) => states[bi].finalize(),
            ColStates::Boxed(states) => states[bi].finalize(),
        }));
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

/// Apply one batch's matched tuples to one aggregate column. Kernel columns
/// consume typed slices with one dispatch per (base row, batch); boxed
/// columns replay the scalar per-value protocol (including growth metering
/// for holistic states under a budget).
#[allow(clippy::too_many_arguments)]
fn apply_batch(
    col: &mut ColStates,
    ba: &BoundAgg,
    groups: &[(usize, Vec<u32>)],
    chunk: &ColumnarChunk,
    rows: &[Row],
    start: usize,
    metered: bool,
    meter: &mut GrowthMeter,
) -> Result<()> {
    match col {
        ColStates::Kernel(states) => match ba.input_col {
            None => {
                for (bi, idxs) in groups {
                    states[*bi].update_star(idxs.len() as u64);
                }
            }
            Some(c) => match chunk.column(c) {
                Column::Int { vals, nulls } => {
                    for (bi, idxs) in groups {
                        states[*bi].update_ints(vals, nulls, idxs);
                    }
                }
                Column::Float { vals, nulls } => {
                    for (bi, idxs) in groups {
                        states[*bi].update_floats(vals, nulls, idxs);
                    }
                }
                // Strings, mixed-typed, or unmaterialized columns: replay
                // the exact scalar update protocol value by value.
                _ => {
                    for (bi, idxs) in groups {
                        for &i in idxs {
                            states[*bi].update_value(&rows[start + i as usize][c])?;
                        }
                    }
                }
            },
        },
        ColStates::Boxed(states) => {
            for (bi, idxs) in groups {
                for &i in idxs {
                    let v = match ba.input_col {
                        Some(c) => &rows[start + i as usize][c],
                        None => &Value::Null,
                    };
                    if metered {
                        let st = &mut states[*bi];
                        let before = st.heap_bytes();
                        st.update(v)?;
                        meter.charge(st.heap_bytes().saturating_sub(before))?;
                    } else {
                        states[*bi].update(v)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// True when every part of the query has a vectorized form: θ yields hash
/// probe bindings over columns `B` actually has (so batched probing applies)
/// and every aggregate of `l` is kernel-covered. Used by the `Auto` planner.
pub(crate) fn vectorized_eligible(
    b: &Relation,
    theta: &Expr,
    aggs: &[AggSpec],
    ctx: &ExecContext,
) -> bool {
    if ctx.strategy == crate::context::ProbeStrategy::NestedLoop {
        return false;
    }
    let (bindings, _) = mdj_expr::analysis::probe_bindings(theta);
    if bindings.is_empty() || !bindings.iter().all(|bi| b.schema().contains(&bi.base_col)) {
        return false;
    }
    aggs.iter().all(|spec| {
        ctx.registry
            .get(&spec.function)
            .map(|agg| agg.kernel().is_some())
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ProbeStrategy;
    use crate::mdjoin::md_join_serial;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, ScanStats};
    use std::sync::Arc;

    fn sales(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
            ("qty", DataType::Int),
        ]);
        Relation::from_rows(
            schema,
            (0..n)
                .map(|i| {
                    Row::from_values(vec![
                        Value::Int(i % 7),
                        Value::Int(i % 12),
                        Value::str(if i % 3 == 0 { "NY" } else { "NJ" }),
                        if i % 11 == 0 {
                            Value::Null
                        } else {
                            Value::Float((i as f64) * 0.25)
                        },
                        Value::Int(i % 5),
                    ])
                })
                .collect(),
        )
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::on_column("sum", "sale"),
            AggSpec::on_column("avg", "sale"),
            AggSpec::on_column("min", "sale"),
            AggSpec::on_column("max", "qty"),
            AggSpec::on_column("count", "sale"),
            AggSpec::count_star(),
        ]
    }

    fn assert_identical(theta: mdj_expr::Expr, l: &[AggSpec], ctx: &ExecContext) {
        let s = sales(400);
        let b = s.distinct_on(&["cust"]).unwrap();
        let serial = md_join_serial(&b, &s, l, &theta, ctx).unwrap();
        let vector = md_join_vectorized(&b, &s, l, &theta, ctx).unwrap();
        assert_eq!(serial.schema(), vector.schema());
        assert_eq!(serial.rows(), vector.rows(), "θ = {theta}");
    }

    #[test]
    fn equality_theta_row_identical() {
        assert_identical(
            eq(col_b("cust"), col_r("cust")),
            &specs(),
            &ExecContext::new().with_morsel_size(64),
        );
    }

    #[test]
    fn computed_key_and_prefilter_row_identical() {
        assert_identical(
            and(
                eq(col_b("cust"), add(col_r("cust"), lit(1i64))),
                eq(col_r("state"), lit("NY")),
            ),
            &specs(),
            &ExecContext::new().with_morsel_size(64),
        );
    }

    #[test]
    fn mixed_residual_row_identical() {
        assert_identical(
            and(
                eq(col_b("cust"), col_r("cust")),
                gt(col_r("sale"), col_b("cust")), // mixed: residual per candidate
            ),
            &specs(),
            &ExecContext::new().with_morsel_size(64),
        );
    }

    #[test]
    fn non_equi_nested_loop_row_identical() {
        assert_identical(
            le(col_b("cust"), col_r("qty")),
            &specs(),
            &ExecContext::new().with_morsel_size(64),
        );
    }

    #[test]
    fn holistic_aggs_take_boxed_path_and_match() {
        assert_identical(
            eq(col_b("cust"), col_r("cust")),
            &[
                AggSpec::on_column("median", "sale"),
                AggSpec::on_column("mode", "qty"),
                AggSpec::on_column("sum", "sale"),
            ],
            &ExecContext::new().with_morsel_size(64),
        );
    }

    #[test]
    fn work_accounting_matches_serial_exactly() {
        let s = sales(500);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_r("state"), lit("NY")),
        );
        let l = specs();
        for strategy in [ProbeStrategy::Auto, ProbeStrategy::NestedLoop] {
            let serial_stats = Arc::new(ScanStats::new());
            let sctx = ExecContext::new()
                .with_strategy(strategy)
                .with_stats(serial_stats.clone());
            md_join_serial(&b, &s, &l, &theta, &sctx).unwrap();
            let vec_stats = Arc::new(ScanStats::new());
            let vctx = ExecContext::new()
                .with_strategy(strategy)
                .with_morsel_size(64)
                .with_stats(vec_stats.clone());
            md_join_vectorized(&b, &s, &l, &theta, &vctx).unwrap();
            assert_eq!(serial_stats.scans(), vec_stats.scans(), "{strategy:?}");
            assert_eq!(
                serial_stats.tuples_scanned(),
                vec_stats.tuples_scanned(),
                "{strategy:?}"
            );
            assert_eq!(serial_stats.probes(), vec_stats.probes(), "{strategy:?}");
            assert_eq!(serial_stats.updates(), vec_stats.updates(), "{strategy:?}");
            assert_eq!(vec_stats.batches(), 500u64.div_ceil(64), "{strategy:?}");
        }
    }

    #[test]
    fn fully_covered_query_reports_no_fallbacks() {
        let s = sales(300);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        md_join_vectorized(&b, &s, &specs(), &theta, &ctx).unwrap();
        assert!(stats.batches() > 0);
        assert_eq!(stats.batch_fallbacks(), 0);
        // A Div in the prefilter has no vectorized form: every batch falls back.
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            gt(div(col_r("sale"), lit(2i64)), lit(0i64)),
        );
        md_join_vectorized(&b, &s, &specs(), &theta, &ctx).unwrap();
        assert_eq!(stats.batch_fallbacks(), stats.batches());
    }

    #[test]
    fn empty_inputs_and_empty_rel_t() {
        let s = sales(50);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_r("state"), lit("ZZ")), // matches nothing: every Rel(t) empty
        );
        let ctx = ExecContext::new().with_morsel_size(16);
        let serial = md_join_serial(&b, &s, &specs(), &theta, &ctx).unwrap();
        let vector = md_join_vectorized(&b, &s, &specs(), &theta, &ctx).unwrap();
        assert_eq!(serial.rows(), vector.rows());
        let empty_r = Relation::empty(s.schema().clone());
        let theta = eq(col_b("cust"), col_r("cust"));
        let out = md_join_vectorized(&b, &empty_r, &specs(), &theta, &ctx).unwrap();
        assert_eq!(out.len(), b.len());
        let empty_b = Relation::empty(b.schema().clone());
        let out = md_join_vectorized(&empty_b, &s, &specs(), &theta, &ctx).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn eligibility_rules() {
        let s = sales(10);
        let b = s.distinct_on(&["cust"]).unwrap();
        let ctx = ExecContext::new();
        let kernel_aggs = [AggSpec::on_column("sum", "sale"), AggSpec::count_star()];
        // Equality θ + kernel aggregates: eligible.
        assert!(vectorized_eligible(
            &b,
            &eq(col_b("cust"), col_r("cust")),
            &kernel_aggs,
            &ctx
        ));
        // Non-equi θ yields no bindings.
        assert!(!vectorized_eligible(
            &b,
            &lt(col_b("cust"), col_r("cust")),
            &kernel_aggs,
            &ctx
        ));
        // A holistic aggregate has no kernel.
        assert!(!vectorized_eligible(
            &b,
            &eq(col_b("cust"), col_r("cust")),
            &[AggSpec::on_column("median", "sale")],
            &ctx
        ));
        // Forced nested loop disables batched probing.
        let nl = ExecContext::new().with_strategy(ProbeStrategy::NestedLoop);
        assert!(!vectorized_eligible(
            &b,
            &eq(col_b("cust"), col_r("cust")),
            &kernel_aggs,
            &nl
        ));
    }
}
