//! Vectorized batch execution of Algorithm 3.1.
//!
//! The serial evaluator interprets everything per row: each conjunct of θ is
//! a `BoundExpr` tree walk, each aggregate update a virtual call through
//! `Box<dyn AggState>` with a `Value` in between. This module processes `R`
//! in columnar batches instead:
//!
//! 1. each batch of `ctx.morsel_size` tuples is transposed into a
//!    [`ColumnarChunk`] (only the columns θ and `l` actually read);
//! 2. the Theorem 4.2 prefilter evaluates over the whole batch into a
//!    selection vector ([`mdj_expr::vectorized::eval_batch`]);
//! 3. hash-probe keys are computed for the whole batch in one typed loop per
//!    key column and looked up without row materialization ([`BatchProbe`]):
//!    single `i64` keys through a specialized map, dictionary-coded string
//!    keys by translating each distinct code to its index bucket once per
//!    chunk, and multi-column keys by assembling canonical key tuples from
//!    the typed columns; mixed hash residuals are bound per candidate base
//!    row and evaluated batch-at-a-time when dense enough;
//! 4. matched tuples are grouped per base row and aggregate updates applied
//!    through typed [`KernelState`] kernels — one dispatch per (base row,
//!    batch) run over native slices, not one per value.
//!
//! Every step falls back to the scalar interpreter for shapes it cannot
//! prove equivalent (counted in `ScanStats::batch_fallbacks`), and all work
//! accounting (scans, probes, updates) is identical to [`md_join_serial`] by
//! construction, so the two paths are interchangeable in experiments. The
//! output is row-identical to the serial evaluator — including `f64`
//! accumulation order, which follows tuple order per base row in both.

use crate::context::ExecContext;
use crate::error::Result;
use crate::governor::{self, GrowthMeter, MemCharge};
use crate::mdjoin::{bind_aggs, check_no_duplicates, metered_flags, BoundAgg};
use crate::probe::{canon_key, ProbePlan};
use mdj_agg::{AggSpec, AggState, KernelState};
use mdj_expr::eval::BoundExpr;
use mdj_expr::vectorized::{
    batchable_bound_shape, batchable_shape, bind_base, collect_detail_cols, eval_batch, BatchVals,
};
use mdj_expr::{Expr, Side};
use mdj_storage::{
    Column, ColumnarChunk, FallbackReason, HashIndex, KeyBuildHasher, Relation, Row, Schema, Value,
};
use std::collections::HashMap;

/// Largest batch the executor will form. Batches index tuples with `u32`
/// selection vectors; anything near this is already far past the size where
/// batching helps.
pub(crate) const MAX_BATCH: usize = u32::MAX as usize;

/// Single-`i64`-key probe map. Uses the same [`KeyBuildHasher`] as the §4.5
/// [`HashIndex`] it is derived from, so the two bucket structures can never
/// drift apart (and SipHash's per-lookup cost is avoided on the hot path).
type IntMap<V> = HashMap<i64, V, KeyBuildHasher>;

/// Batched `Rel(t)` computation over a [`ProbePlan`], shared by the serial
/// vectorized evaluator and the batched morsel executor.
///
/// Vectorizes three layers when possible:
///
/// * the Theorem 4.2 prefilter (batch → selection vector);
/// * hash-probe keys, computed per key column over the whole batch: single
///   `i64` keys go through a specialized map, dictionary-coded string keys
///   translate each distinct code to its index bucket once per chunk (no
///   string materialization, one probe's worth of accounting per row), and
///   multi-column keys assemble canonical `Vec<Value>` keys from the typed
///   columns without touching row storage;
/// * mixed hash residuals, bound per candidate base row ([`bind_base`]) and
///   evaluated batch-at-a-time over the chunk when that base row has enough
///   candidates to amortize the whole-chunk pass.
///
/// Nested-loop plans whose θ shape batches are evaluated vectorized too: θ is
/// bound to every base row up front ([`bind_base`]) and each bound form runs
/// once per chunk. Batches whose key expressions have no vectorized form (and
/// nested-loop θ shapes that don't batch) delegate per row to
/// [`ProbePlan::matches`]. Probe accounting is identical to the scalar path
/// in every mode: prefiltered-out and NULL-key tuples record zero probes,
/// hash probes record the bucket length, nested-loop probes record `|B|`.
pub(crate) struct BatchProbe<'a> {
    plan: &'a ProbePlan,
    b: &'a Relation,
    /// Single-`Int`-key buckets extracted from the plan's index. Sound
    /// because index keys are canonicalized (integral floats are already
    /// `Int`), so an `Int` probe key can only ever match an `Int` bucket.
    fast_int: Option<IntMap<Vec<usize>>>,
    /// For nested-loop plans whose θ shape batches: θ bound to each base row
    /// once, reused by every batch. `None` for hash plans and for θ shapes
    /// with no batch form.
    nl_bound: Option<Vec<BoundExpr>>,
}

impl<'a> BatchProbe<'a> {
    pub(crate) fn new(plan: &'a ProbePlan, b: &'a Relation) -> Self {
        let fast_int = match plan {
            ProbePlan::Hash {
                index, key_exprs, ..
            } if key_exprs.len() == 1 => {
                let mut map = IntMap::default();
                for (key, rows) in index.entries() {
                    if let [Value::Int(k)] = key {
                        map.insert(*k, rows.to_vec());
                    }
                    // Non-Int buckets are unreachable from an Int key batch
                    // and stay served by the scalar path.
                }
                Some(map)
            }
            _ => None,
        };
        let nl_bound = match plan {
            ProbePlan::NestedLoop { theta, .. } if batchable_bound_shape(theta) => {
                Some(b.iter().map(|row| bind_base(theta, row.values())).collect())
            }
            _ => None,
        };
        BatchProbe {
            plan,
            b,
            fast_int,
            nl_bound,
        }
    }

    /// Mark the detail columns batches must materialize for this plan: the
    /// prefilter's, the probe-key expressions', the hash residual's (batch
    /// residual evaluation reads the residual's detail columns from the
    /// chunk), and — when the nested-loop θ shape batches — θ's own detail
    /// columns. An expression whose *shape* can never batch
    /// ([`batchable_bound_shape`]) marks nothing: its evaluation is bound for
    /// the scalar interpreter over row storage, so transposing its columns
    /// would be pure dead weight discarded every batch.
    pub(crate) fn collect_needed(&self, needed: &mut [bool]) {
        match self.plan {
            ProbePlan::NestedLoop { prefilter, theta } => {
                if let Some(p) = prefilter {
                    if batchable_bound_shape(p) {
                        collect_detail_cols(p, needed);
                    }
                }
                if self.nl_bound.is_some() {
                    collect_detail_cols(theta, needed);
                }
            }
            ProbePlan::Hash {
                key_exprs,
                prefilter,
                residual,
                ..
            } => {
                // One unbatchable key sends every batch to the scalar
                // delegate, so the other keys' columns would go unread too.
                if key_exprs.iter().all(batchable_bound_shape) {
                    for e in key_exprs {
                        collect_detail_cols(e, needed);
                    }
                }
                if let Some(p) = prefilter {
                    if batchable_bound_shape(p) {
                        collect_detail_cols(p, needed);
                    }
                }
                if let Some(res) = residual {
                    if batchable_bound_shape(res) {
                        collect_detail_cols(res, needed);
                    }
                }
            }
        }
    }

    /// Compute `Rel(t)` for every tuple of `chunk`, appending
    /// `(batch-local tuple index, base row id)` pairs in tuple order.
    /// Returns `true` if any part of the batch fell back to the scalar
    /// interpreter.
    pub(crate) fn matches_batch(
        &self,
        chunk: &ColumnarChunk,
        rows: &[Row],
        ctx: &ExecContext,
        pairs: &mut Vec<(u32, usize)>,
    ) -> Result<bool> {
        let n = chunk.len();
        let start = chunk.start();
        let mut fell_back = false;

        let prefilter = match self.plan {
            ProbePlan::NestedLoop { prefilter, .. } => prefilter.as_ref(),
            ProbePlan::Hash { prefilter, .. } => prefilter.as_ref(),
        };
        // A vectorized prefilter yields the batch's selection vector. When it
        // doesn't vectorize, `sel` stays `None` and the scalar paths below
        // apply the prefilter per row themselves (ProbePlan::matches does it
        // internally).
        let sel: Option<Vec<bool>> = match prefilter {
            Some(p) => match eval_batch(p, chunk) {
                Some(bv) => Some(bv.to_selection(n)),
                None => {
                    ctx.record_fallback_reason(FallbackReason::Prefilter);
                    fell_back = true;
                    None
                }
            },
            None => None,
        };
        let selected = |i: usize| sel.as_ref().is_none_or(|s| s[i]);

        // Batched probing: vectorize every key column of a hash plan. A key
        // expression with no vectorized form sends the whole batch to the
        // scalar delegate below; everything else probes without ever
        // materializing a row-form key per tuple.
        if let ProbePlan::Hash {
            index,
            key_exprs,
            residual,
            ..
        } = self.plan
        {
            let batches: Option<Vec<BatchVals>> =
                key_exprs.iter().map(|e| eval_batch(e, chunk)).collect();
            if let Some(batches) = batches {
                let prober = self.build_prober(index, batches);
                let mut cands: Vec<(u32, usize)> = Vec::new();
                let mut scratch: Vec<Value> = Vec::new();
                for i in 0..n {
                    if !selected(i) {
                        continue;
                    }
                    if sel.is_none() {
                        if let Some(p) = prefilter {
                            if !p.eval_bool(&[], rows[start + i].values())? {
                                continue;
                            }
                        }
                    }
                    // NULL key component: SQL equality never matches — the
                    // tuple records zero probes, exactly like the scalar path.
                    let Some(bucket) = prober.bucket(i, &mut scratch) else {
                        continue;
                    };
                    ctx.record_probes(bucket.len() as u64);
                    cands.extend(bucket.iter().map(|&bi| (i as u32, bi)));
                }
                match residual {
                    None => pairs.extend_from_slice(&cands),
                    Some(res) => self.filter_residual(res, chunk, rows, &cands, pairs)?,
                }
                return Ok(fell_back);
            }
            ctx.record_fallback_reason(FallbackReason::Key);
            fell_back = true;
        } else if let Some(bound) = &self.nl_bound {
            // Vectorized nested loop: θ was bound to each base row up front,
            // so one whole-chunk evaluation per base row replaces
            // |chunk| × |B| interpreted tree walks. Verdicts land in a
            // per-tuple bitset over B so pairs still come out tuple-major
            // with each tuple's matches contiguous (the batched morsel
            // executor's slot logic relies on that) and in base-row order
            // per tuple — row-identical to the scalar nested loop, including
            // f64 accumulation order.
            let mut survive = vec![false; n];
            let mut n_survive = 0u64;
            for (i, slot) in survive.iter_mut().enumerate() {
                if !selected(i) {
                    continue;
                }
                if sel.is_none() {
                    if let Some(p) = prefilter {
                        if !p.eval_bool(&[], rows[start + i].values())? {
                            continue;
                        }
                    }
                }
                *slot = true;
                n_survive += 1;
            }
            let stride = self.b.len().div_ceil(64).max(1);
            let mut bits = vec![0u64; n * stride];
            let mut vectorized = true;
            for (bi, be) in bound.iter().enumerate() {
                let Some(bv) = eval_batch(be, chunk) else {
                    // One base row's inlined literals broke the batch form
                    // (e.g. a string bound into an arithmetic slot): the
                    // whole batch delegates, keeping probe accounting and
                    // pair order scalar-identical.
                    vectorized = false;
                    break;
                };
                let verdict = bv.to_selection(n);
                let word = bi / 64;
                let mask = 1u64 << (bi % 64);
                for i in 0..n {
                    bits[i * stride + word] |=
                        mask & ((verdict[i] & survive[i]) as u64).wrapping_neg();
                }
            }
            if vectorized {
                // Every surviving tuple examines all of B — exactly the
                // scalar nested loop's accounting; prefiltered-out tuples
                // record zero probes.
                ctx.record_probes(n_survive * self.b.len() as u64);
                for i in 0..n {
                    if !survive[i] {
                        continue;
                    }
                    for (w, &word) in bits[i * stride..(i + 1) * stride].iter().enumerate() {
                        let mut word = word;
                        while word != 0 {
                            let bit = word.trailing_zeros() as usize;
                            pairs.push((i as u32, w * 64 + bit));
                            word &= word - 1;
                        }
                    }
                }
                return Ok(fell_back);
            }
            ctx.record_fallback_reason(FallbackReason::Theta);
            fell_back = true;
        } else {
            // Nested loop whose θ shape has no batch form: inherently scalar.
            ctx.record_fallback_reason(FallbackReason::Theta);
            fell_back = true;
        }

        // Scalar path: delegate each surviving tuple to the interpreter's
        // `matches`, which applies prefilter/keys/θ with identical probe
        // accounting. (For tuples a vectorized prefilter already rejected we
        // skip the call entirely — `matches` would record nothing for them.)
        let mut matches: Vec<usize> = Vec::new();
        let mut key_scratch: Vec<Value> = Vec::new();
        for i in 0..n {
            if !selected(i) {
                continue;
            }
            self.plan.matches(
                self.b,
                rows[start + i].values(),
                ctx,
                &mut matches,
                &mut key_scratch,
            )?;
            pairs.extend(matches.iter().map(|&bi| (i as u32, bi)));
        }
        Ok(fell_back)
    }

    /// Choose the per-row probe strategy for one batch of vectorized key
    /// columns. Single `i64` keys use the specialized map; single
    /// dictionary-coded string keys translate each distinct code to its index
    /// bucket once for the whole chunk; constant keys resolve to one bucket
    /// up front; everything else assembles canonical multi-column keys
    /// per row from the typed columns.
    fn build_prober<'s>(&'s self, index: &'s HashIndex, batches: Vec<BatchVals>) -> Prober<'s> {
        if batches.len() == 1 {
            let kb = batches.into_iter().next().expect("one key batch");
            match (kb, &self.fast_int) {
                (BatchVals::Ints { vals, nulls }, Some(map)) => {
                    return Prober::Int { vals, nulls, map }
                }
                (BatchVals::Strs { codes, dict, nulls }, _) => {
                    // Per-chunk code → bucket translation: one index probe
                    // per distinct dictionary entry, then O(1) per row.
                    let buckets = dict
                        .iter()
                        .map(|s| index.get(&[Value::Str(s.clone())]))
                        .collect();
                    return Prober::Str {
                        codes,
                        nulls,
                        buckets,
                    };
                }
                (BatchVals::Const(v), _) => {
                    return match canon_key(v) {
                        // Every key NULL: equality never matches, zero probes.
                        Value::Null => Prober::Null,
                        v => Prober::Const(index.get(std::slice::from_ref(&v))),
                    };
                }
                (kb, _) => {
                    return Prober::General {
                        cols: vec![KeyCol::from_batch(kb)],
                        index,
                    }
                }
            }
        }
        Prober::General {
            cols: batches.into_iter().map(KeyCol::from_batch).collect(),
            index,
        }
    }

    /// Apply the mixed residual `θres(b, t)` to pre-residual candidate pairs,
    /// preserving tuple order. Base rows with enough candidates in this batch
    /// get the residual bound to their row ([`bind_base`]) and evaluated once
    /// over the whole chunk; sparse base rows — and bound forms with no
    /// vectorized shape — take the scalar per-pair check. Results and work
    /// accounting are identical either way (vectorizable residuals are total,
    /// so no error path diverges), which is why this mode never reports a
    /// batch fallback.
    fn filter_residual(
        &self,
        res: &BoundExpr,
        chunk: &ColumnarChunk,
        rows: &[Row],
        cands: &[(u32, usize)],
        pairs: &mut Vec<(u32, usize)>,
    ) -> Result<()> {
        let n = chunk.len();
        let start = chunk.start();
        let mut counts: HashMap<usize, usize, KeyBuildHasher> = HashMap::default();
        for &(_, bi) in cands {
            *counts.entry(bi).or_insert(0) += 1;
        }
        // One whole-chunk pass evaluates the bound residual at all `n` rows
        // but is consulted only at this base row's candidates, so it pays off
        // only when candidates are dense: at least 4, covering ≥ 1/8 of the
        // chunk (a vectorized op costs roughly an eighth of an interpreted
        // one).
        let mut verdicts: HashMap<usize, Vec<bool>, KeyBuildHasher> = HashMap::default();
        for (&bi, &count) in &counts {
            if count >= 4 && count * 8 >= n {
                let bound = bind_base(res, self.b.rows()[bi].values());
                if let Some(bv) = eval_batch(&bound, chunk) {
                    verdicts.insert(bi, bv.to_selection(n));
                }
            }
        }
        for &(i, bi) in cands {
            let keep = match verdicts.get(&bi) {
                Some(v) => v[i as usize],
                None => res.eval_bool(
                    self.b.rows()[bi].values(),
                    rows[start + i as usize].values(),
                )?,
            };
            if keep {
                pairs.push((i, bi));
            }
        }
        Ok(())
    }
}

/// Per-batch probe strategy chosen by [`BatchProbe::build_prober`]: how each
/// selected row's key maps to an index bucket (`None` = a NULL key component,
/// which never matches and records no probes).
enum Prober<'p> {
    /// Single `i64` key served by the specialized map.
    Int {
        vals: Vec<i64>,
        nulls: Vec<bool>,
        map: &'p IntMap<Vec<usize>>,
    },
    /// Single dictionary-coded string key: buckets pre-resolved per distinct
    /// code, probed per row by table lookup.
    Str {
        codes: Vec<u32>,
        nulls: Vec<bool>,
        buckets: Vec<&'p [usize]>,
    },
    /// Constant non-null key: the same bucket for every row.
    Const(&'p [usize]),
    /// Constant NULL key: no row matches.
    Null,
    /// General path: assemble the canonical multi-column key per row.
    General {
        cols: Vec<KeyCol>,
        index: &'p HashIndex,
    },
}

impl<'p> Prober<'p> {
    /// The index bucket for row `i`, or `None` when any key component is
    /// NULL. `scratch` is the reusable key-assembly buffer for the general
    /// path.
    fn bucket(&self, i: usize, scratch: &mut Vec<Value>) -> Option<&'p [usize]> {
        match self {
            Prober::Int { vals, nulls, map } => {
                if nulls[i] {
                    return None;
                }
                Some(map.get(&vals[i]).map(Vec::as_slice).unwrap_or(&[]))
            }
            Prober::Str {
                codes,
                nulls,
                buckets,
            } => {
                if nulls[i] {
                    return None;
                }
                Some(buckets[codes[i] as usize])
            }
            Prober::Const(bucket) => Some(bucket),
            Prober::Null => None,
            Prober::General { cols, index } => {
                scratch.clear();
                for c in cols {
                    scratch.push(c.value_at(i)?);
                }
                Some(index.get(scratch))
            }
        }
    }
}

/// One key column in canonical form for the general multi-column prober.
/// Values are produced only for selected rows, already canonicalized
/// ([`canon_key`]) to match what the index was built from; string columns
/// translate each distinct dictionary entry to a `Value` once per chunk (an
/// `Arc` clone, not a string copy).
enum KeyCol {
    Ints {
        vals: Vec<i64>,
        nulls: Vec<bool>,
    },
    Floats {
        vals: Vec<f64>,
        nulls: Vec<bool>,
    },
    Strs {
        codes: Vec<u32>,
        dict_vals: Vec<Value>,
        nulls: Vec<bool>,
    },
    /// Comparison keys are total over non-null inputs: no null slots needed.
    Bools(Vec<bool>),
    /// Canonicalized constant; `Null` poisons every row's key.
    Const(Value),
}

impl KeyCol {
    fn from_batch(bv: BatchVals) -> KeyCol {
        match bv {
            BatchVals::Ints { vals, nulls } => KeyCol::Ints { vals, nulls },
            BatchVals::Floats { vals, nulls } => KeyCol::Floats { vals, nulls },
            BatchVals::Strs { codes, dict, nulls } => KeyCol::Strs {
                codes,
                dict_vals: dict.iter().map(|s| Value::Str(s.clone())).collect(),
                nulls,
            },
            BatchVals::Bools(b) => KeyCol::Bools(b),
            BatchVals::Const(v) => KeyCol::Const(canon_key(v)),
        }
    }

    /// The canonical key component for row `i`; `None` for NULL (the scalar
    /// path skips such tuples before probing, and so do we).
    fn value_at(&self, i: usize) -> Option<Value> {
        match self {
            KeyCol::Ints { vals, nulls } => (!nulls[i]).then(|| Value::Int(vals[i])),
            KeyCol::Floats { vals, nulls } => (!nulls[i]).then(|| canon_key(Value::Float(vals[i]))),
            KeyCol::Strs {
                codes,
                dict_vals,
                nulls,
            } => (!nulls[i]).then(|| dict_vals[codes[i] as usize].clone()),
            KeyCol::Bools(b) => Some(Value::Bool(b[i])),
            KeyCol::Const(Value::Null) => None,
            KeyCol::Const(v) => Some(v.clone()),
        }
    }
}

/// Per-aggregate state column: a typed kernel column when the aggregate has
/// a kernel form, the boxed scalar states otherwise.
pub(crate) enum ColStates {
    Kernel(Vec<KernelState>),
    Boxed(Vec<Box<dyn AggState>>),
}

impl ColStates {
    /// One state column over `b_len` base rows for `ba`.
    pub(crate) fn init(ba: &BoundAgg, b_len: usize) -> ColStates {
        match ba.agg.kernel() {
            Some(kind) => ColStates::Kernel((0..b_len).map(|_| kind.init()).collect()),
            None => ColStates::Boxed((0..b_len).map(|_| ba.agg.init()).collect()),
        }
    }

    /// Finalized output value for base row `bi`.
    pub(crate) fn finalize(&self, bi: usize) -> Value {
        match self {
            ColStates::Kernel(states) => states[bi].finalize(),
            ColStates::Boxed(states) => states[bi].finalize(),
        }
    }
}

/// Evaluate `MD(B, R, l, θ)` with batched, vectorized execution. Output is
/// row-identical to [`crate::mdjoin::md_join_serial`], with identical
/// scan/probe/update accounting.
pub(crate) fn md_join_vectorized(
    b: &Relation,
    r: &Relation,
    l: &[AggSpec],
    theta: &Expr,
    ctx: &ExecContext,
) -> Result<Relation> {
    ctx.check_interrupt()?;
    let bound = bind_aggs(l, r.schema(), ctx.registry())?;
    check_no_duplicates(b.schema(), &bound)?;
    let _state_charge = MemCharge::try_new(ctx, governor::state_bytes(b.len(), bound.len()))?;
    let (plan, _index_charge) = ProbePlan::build_charged(b, r.schema(), theta, ctx)?;
    let probe = BatchProbe::new(&plan, b);

    let mut cols: Vec<ColStates> = bound
        .iter()
        .map(|ba| ColStates::init(ba, b.len()))
        .collect();
    let mut meter = GrowthMeter::new(ctx);
    let metered = metered_flags(&bound, &meter);

    // Materialize only the columns the probe and the aggregates read. Boxed
    // (kernel-less) aggregates replay the scalar per-value protocol straight
    // from row storage, so their input columns don't need transposition.
    let mut needed = vec![false; r.schema().fields().len()];
    probe.collect_needed(&mut needed);
    for (j, ba) in bound.iter().enumerate() {
        if let (ColStates::Kernel(_), Some(c)) = (&cols[j], ba.input_col) {
            needed[c] = true;
        }
    }

    ctx.record_scan(r.len() as u64);
    let rows = r.rows();
    let batch_rows = ctx.morsel_size().clamp(1, MAX_BATCH);
    let mut pairs: Vec<(u32, usize)> = Vec::new();
    let mut board = Scoreboard::new(b.len());
    let mut start = 0usize;
    while start < rows.len() {
        ctx.check_interrupt()?;
        let len = batch_rows.min(rows.len() - start);
        let chunk = ColumnarChunk::from_rows(rows, start, len, &needed);
        pairs.clear();
        let fell_back = probe.matches_batch(&chunk, rows, ctx, &mut pairs)?;
        ctx.record_batch();
        if fell_back {
            ctx.record_batch_fallback();
        }
        if pairs.is_empty() {
            start += len;
            continue;
        }
        ctx.record_updates((pairs.len() * bound.len()) as u64);

        let groups = board.group(&pairs);
        for (j, ba) in bound.iter().enumerate() {
            apply_batch(
                &mut cols[j],
                ba,
                groups,
                &chunk,
                rows,
                start,
                metered[j],
                &mut meter,
                ctx,
            )?;
        }
        start += len;
    }

    let mut fields = b.schema().fields().to_vec();
    fields.extend(bound.iter().map(|ba| ba.output.clone()));
    let mut out = Relation::empty(Schema::new(fields));
    for (bi, row) in b.iter().enumerate() {
        let mut vals = row.values().to_vec();
        vals.extend(cols.iter().map(|col| col.finalize(bi)));
        out.push_unchecked(Row::new(vals));
    }
    Ok(out)
}

/// Batch-local grouping of matched `(tuple, base row)` pairs per base row, in
/// tuple order (so f64 accumulation order matches the serial evaluator
/// exactly). The scoreboard is direct-mapped over `B` — no hashing per pair —
/// and only the slots a batch touched are reset; group buffers are recycled
/// across batches (and, in the fused generalized executor, across condition
/// sets within a batch).
pub(crate) struct Scoreboard {
    groups: Vec<(usize, Vec<u32>)>,
    n_groups: usize,
    group_of: Vec<usize>,
}

impl Scoreboard {
    pub(crate) fn new(b_len: usize) -> Self {
        Scoreboard {
            groups: Vec::new(),
            n_groups: 0,
            group_of: vec![usize::MAX; b_len],
        }
    }

    /// Group one batch's pairs per base row; the returned slice lives until
    /// the next call.
    pub(crate) fn group(&mut self, pairs: &[(u32, usize)]) -> &[(usize, Vec<u32>)] {
        for (bi, _) in &self.groups[..self.n_groups] {
            self.group_of[*bi] = usize::MAX;
        }
        self.n_groups = 0;
        for &(i, bi) in pairs {
            let mut g = self.group_of[bi];
            if g == usize::MAX {
                g = self.n_groups;
                self.group_of[bi] = g;
                if self.n_groups == self.groups.len() {
                    self.groups.push((bi, Vec::new()));
                } else {
                    self.groups[self.n_groups].0 = bi;
                    self.groups[self.n_groups].1.clear();
                }
                self.n_groups += 1;
            }
            self.groups[g].1.push(i);
        }
        &self.groups[..self.n_groups]
    }
}

/// Apply one batch's matched tuples to one aggregate column. Kernel columns
/// consume typed slices with one dispatch per (base row, batch); boxed
/// columns replay the scalar per-value protocol (including growth metering
/// for holistic states under a budget).
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_batch(
    col: &mut ColStates,
    ba: &BoundAgg,
    groups: &[(usize, Vec<u32>)],
    chunk: &ColumnarChunk,
    rows: &[Row],
    start: usize,
    metered: bool,
    meter: &mut GrowthMeter,
    ctx: &ExecContext,
) -> Result<()> {
    match col {
        ColStates::Kernel(states) => match ba.input_col {
            None => {
                for (bi, idxs) in groups {
                    states[*bi].update_star(idxs.len() as u64)?;
                }
            }
            Some(c) => match chunk.column(c) {
                Column::Int { vals, nulls } => {
                    for (bi, idxs) in groups {
                        states[*bi].update_ints(vals, nulls, idxs)?;
                    }
                }
                Column::Float { vals, nulls } => {
                    for (bi, idxs) in groups {
                        states[*bi].update_floats(vals, nulls, idxs)?;
                    }
                }
                // Strings, mixed-typed, or unmaterialized columns: replay
                // the exact scalar update protocol value by value.
                _ => {
                    ctx.record_fallback_reason(FallbackReason::Agg);
                    for (bi, idxs) in groups {
                        for &i in idxs {
                            states[*bi].update_value(&rows[start + i as usize][c])?;
                        }
                    }
                }
            },
        },
        ColStates::Boxed(states) => {
            // Kernel-less (e.g. holistic) aggregates never batch.
            ctx.record_fallback_reason(FallbackReason::Agg);
            for (bi, idxs) in groups {
                for &i in idxs {
                    let v = match ba.input_col {
                        Some(c) => &rows[start + i as usize][c],
                        None => &Value::Null,
                    };
                    if metered {
                        let st = &mut states[*bi];
                        let before = st.heap_bytes();
                        st.update(v)?;
                        meter.charge(st.heap_bytes().saturating_sub(before))?;
                    } else {
                        states[*bi].update(v)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// `Auto`'s batch-coverage cost model: how much of a query's per-tuple work
/// the batch layer keeps on typed paths. Work units are the probe (1), the
/// Theorem 4.2 prefilter (1, when θ has detail-only residual conjuncts), the
/// mixed residual (1, when θ has base-referencing residual conjuncts), and one
/// per aggregate. Each unit is covered when its expression shape vectorizes
/// ([`batchable_shape`]) or its aggregate has a typed kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BatchCoverage {
    /// Work units with a batched form.
    pub covered: u32,
    /// Total work units.
    pub total: u32,
    /// θ yields usable hash bindings under this context's probe strategy —
    /// without hash probing the batch layer has nothing to vectorize the
    /// match step with, so the vectorized evaluator is never chosen.
    pub hash: bool,
}

impl BatchCoverage {
    /// Covered fraction in per-mille; 0 when probing cannot hash at all.
    pub fn permille(&self) -> u64 {
        if !self.hash || self.total == 0 {
            return 0;
        }
        (self.covered as u64 * 1000) / self.total as u64
    }

    /// Choose the batched evaluator when probing hashes and strictly more
    /// than half the modeled work stays on typed paths — below that, the
    /// per-batch chunk transposition and scalar delegation cost more than
    /// the covered share wins back.
    pub fn choose_vectorized(&self) -> bool {
        self.hash && self.covered * 2 > self.total
    }
}

/// Model the batch coverage of `MD(B, R, l, θ)` under `ctx` (see
/// [`BatchCoverage`]). Replaces the old all-or-nothing eligibility gate: a
/// query with one holistic aggregate among several kernel-covered ones — or a
/// Div-bearing prefilter next to a vectorizable probe — now batches when the
/// covered majority of its work still wins.
pub(crate) fn batch_coverage(
    b: &Relation,
    theta: &Expr,
    aggs: &[AggSpec],
    ctx: &ExecContext,
) -> BatchCoverage {
    let (bindings, residual) = mdj_expr::analysis::probe_bindings(theta);
    let hash = ctx.strategy() != crate::context::ProbeStrategy::NestedLoop
        && !bindings.is_empty()
        && bindings.iter().all(|bi| b.schema().contains(&bi.base_col));
    let mut total = 1u32;
    let mut covered = 0u32;
    if hash && bindings.iter().all(|bi| batchable_shape(&bi.detail_expr)) {
        covered += 1;
    }
    // Residual conjuncts split the same way ProbePlan::build splits them:
    // detail-only ones become the Theorem 4.2 prefilter, base-referencing
    // ones the per-candidate residual.
    let (prefilter, mixed): (Vec<&Expr>, Vec<&Expr>) = residual
        .iter()
        .partition(|c| !c.uses_side(Side::Base) && c.uses_side(Side::Detail));
    if !prefilter.is_empty() {
        total += 1;
        if prefilter.iter().all(|c| batchable_shape(c)) {
            covered += 1;
        }
    }
    if !mixed.is_empty() {
        total += 1;
        if mixed.iter().all(|c| batchable_shape(c)) {
            covered += 1;
        }
    }
    for spec in aggs {
        total += 1;
        if ctx
            .registry()
            .get(&spec.function)
            .map(|agg| agg.kernel().is_some())
            .unwrap_or(false)
        {
            covered += 1;
        }
    }
    BatchCoverage {
        covered,
        total,
        hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ProbeStrategy;
    use crate::mdjoin::md_join_serial;
    use mdj_expr::builder::*;
    use mdj_storage::{DataType, ScanStats};
    use std::sync::Arc;

    fn sales(n: i64) -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
            ("qty", DataType::Int),
        ]);
        Relation::from_rows(
            schema,
            (0..n)
                .map(|i| {
                    Row::from_values(vec![
                        Value::Int(i % 7),
                        Value::Int(i % 12),
                        Value::str(if i % 3 == 0 { "NY" } else { "NJ" }),
                        if i % 11 == 0 {
                            Value::Null
                        } else {
                            Value::Float((i as f64) * 0.25)
                        },
                        Value::Int(i % 5),
                    ])
                })
                .collect(),
        )
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::on_column("sum", "sale"),
            AggSpec::on_column("avg", "sale"),
            AggSpec::on_column("min", "sale"),
            AggSpec::on_column("max", "qty"),
            AggSpec::on_column("count", "sale"),
            AggSpec::count_star(),
        ]
    }

    fn assert_identical(theta: mdj_expr::Expr, l: &[AggSpec], ctx: &ExecContext) {
        let s = sales(400);
        let b = s.distinct_on(&["cust"]).unwrap();
        let serial = md_join_serial(&b, &s, l, &theta, ctx).unwrap();
        let vector = md_join_vectorized(&b, &s, l, &theta, ctx).unwrap();
        assert_eq!(serial.schema(), vector.schema());
        assert_eq!(serial.rows(), vector.rows(), "θ = {theta}");
    }

    #[test]
    fn equality_theta_row_identical() {
        assert_identical(
            eq(col_b("cust"), col_r("cust")),
            &specs(),
            &ExecContext::new().with_morsel_size(64),
        );
    }

    #[test]
    fn computed_key_and_prefilter_row_identical() {
        assert_identical(
            and(
                eq(col_b("cust"), add(col_r("cust"), lit(1i64))),
                eq(col_r("state"), lit("NY")),
            ),
            &specs(),
            &ExecContext::new().with_morsel_size(64),
        );
    }

    #[test]
    fn mixed_residual_row_identical() {
        assert_identical(
            and(
                eq(col_b("cust"), col_r("cust")),
                gt(col_r("sale"), col_b("cust")), // mixed: residual per candidate
            ),
            &specs(),
            &ExecContext::new().with_morsel_size(64),
        );
    }

    #[test]
    fn non_equi_nested_loop_row_identical() {
        assert_identical(
            le(col_b("cust"), col_r("qty")),
            &specs(),
            &ExecContext::new().with_morsel_size(64),
        );
    }

    #[test]
    fn holistic_aggs_take_boxed_path_and_match() {
        assert_identical(
            eq(col_b("cust"), col_r("cust")),
            &[
                AggSpec::on_column("median", "sale"),
                AggSpec::on_column("mode", "qty"),
                AggSpec::on_column("sum", "sale"),
            ],
            &ExecContext::new().with_morsel_size(64),
        );
    }

    #[test]
    fn work_accounting_matches_serial_exactly() {
        let s = sales(500);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_r("state"), lit("NY")),
        );
        let l = specs();
        for strategy in [ProbeStrategy::Auto, ProbeStrategy::NestedLoop] {
            let serial_stats = Arc::new(ScanStats::new());
            let sctx = ExecContext::new()
                .with_strategy(strategy)
                .with_stats(serial_stats.clone());
            md_join_serial(&b, &s, &l, &theta, &sctx).unwrap();
            let vec_stats = Arc::new(ScanStats::new());
            let vctx = ExecContext::new()
                .with_strategy(strategy)
                .with_morsel_size(64)
                .with_stats(vec_stats.clone());
            md_join_vectorized(&b, &s, &l, &theta, &vctx).unwrap();
            assert_eq!(serial_stats.scans(), vec_stats.scans(), "{strategy:?}");
            assert_eq!(
                serial_stats.tuples_scanned(),
                vec_stats.tuples_scanned(),
                "{strategy:?}"
            );
            assert_eq!(serial_stats.probes(), vec_stats.probes(), "{strategy:?}");
            assert_eq!(serial_stats.updates(), vec_stats.updates(), "{strategy:?}");
            assert_eq!(vec_stats.batches(), 500u64.div_ceil(64), "{strategy:?}");
        }
    }

    #[test]
    fn fully_covered_query_reports_no_fallbacks() {
        let s = sales(300);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = eq(col_b("cust"), col_r("cust"));
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        md_join_vectorized(&b, &s, &specs(), &theta, &ctx).unwrap();
        assert!(stats.batches() > 0);
        assert_eq!(stats.batch_fallbacks(), 0);
        // A Div in the prefilter has no vectorized form: every batch falls back.
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            gt(div(col_r("sale"), lit(2i64)), lit(0i64)),
        );
        md_join_vectorized(&b, &s, &specs(), &theta, &ctx).unwrap();
        assert_eq!(stats.batch_fallbacks(), stats.batches());
    }

    #[test]
    fn nested_loop_theta_vectorizes_without_fallback() {
        // A batchable non-equi θ runs the vectorized nested loop: no batch
        // falls back, and probe accounting (|B| per surviving tuple) is
        // identical to the scalar nested loop.
        let s = sales(300);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = le(col_b("cust"), col_r("qty"));
        let serial_stats = Arc::new(ScanStats::new());
        let sctx = ExecContext::new().with_stats(serial_stats.clone());
        let serial = md_join_serial(&b, &s, &specs(), &theta, &sctx).unwrap();
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        let vector = md_join_vectorized(&b, &s, &specs(), &theta, &ctx).unwrap();
        assert_eq!(serial.rows(), vector.rows());
        assert_eq!(stats.batches(), 300u64.div_ceil(64));
        assert_eq!(stats.batch_fallbacks(), 0);
        assert_eq!(stats.fallback_theta(), 0);
        assert_eq!(serial_stats.probes(), stats.probes());
        // With a prefilter attached, prefiltered-out tuples record zero
        // probes in both paths.
        let theta = and(
            le(col_b("cust"), col_r("qty")),
            eq(col_r("state"), lit("NY")),
        );
        let serial_stats = Arc::new(ScanStats::new());
        let sctx = ExecContext::new().with_stats(serial_stats.clone());
        let serial = md_join_serial(&b, &s, &specs(), &theta, &sctx).unwrap();
        let stats = Arc::new(ScanStats::new());
        let ctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(stats.clone());
        let vector = md_join_vectorized(&b, &s, &specs(), &theta, &ctx).unwrap();
        assert_eq!(serial.rows(), vector.rows());
        assert_eq!(stats.batch_fallbacks(), 0);
        assert_eq!(serial_stats.probes(), stats.probes());
    }

    #[test]
    fn fallback_reasons_attributed_per_site() {
        let s = sales(300);
        let b = s.distinct_on(&["cust"]).unwrap();
        let run = |theta: &mdj_expr::Expr, l: &[AggSpec]| {
            let stats = Arc::new(ScanStats::new());
            let ctx = ExecContext::new()
                .with_morsel_size(64)
                .with_stats(stats.clone());
            md_join_vectorized(&b, &s, l, theta, &ctx).unwrap();
            stats
        };
        let batches = 300u64.div_ceil(64);
        // Div in the prefilter: every batch charges the prefilter.
        let stats = run(
            &and(
                eq(col_b("cust"), col_r("cust")),
                gt(div(col_r("sale"), lit(2i64)), lit(0i64)),
            ),
            &specs(),
        );
        assert_eq!(stats.fallback_prefilter(), batches);
        assert_eq!(stats.fallback_key(), 0);
        assert_eq!(stats.fallback_theta(), 0);
        // Div in the probe-key expression: every batch charges the key.
        let stats = run(&eq(col_b("cust"), div(col_r("cust"), lit(1i64))), &specs());
        assert_eq!(stats.fallback_key(), batches);
        assert_eq!(stats.fallback_prefilter(), 0);
        // Div inside a nested-loop θ: no batch form, every batch charges θ.
        let stats = run(&le(col_b("cust"), div(col_r("qty"), lit(2i64))), &specs());
        assert_eq!(stats.fallback_theta(), batches);
        assert_eq!(stats.batch_fallbacks(), batches);
        // A kernel-less aggregate charges the aggregate on every batch that
        // applies updates, without making the batch itself a fallback.
        let stats = run(
            &eq(col_b("cust"), col_r("cust")),
            &[AggSpec::on_column("median", "sale")],
        );
        assert_eq!(stats.fallback_agg(), batches);
        assert_eq!(stats.batch_fallbacks(), 0);
    }

    #[test]
    fn empty_inputs_and_empty_rel_t() {
        let s = sales(50);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_r("state"), lit("ZZ")), // matches nothing: every Rel(t) empty
        );
        let ctx = ExecContext::new().with_morsel_size(16);
        let serial = md_join_serial(&b, &s, &specs(), &theta, &ctx).unwrap();
        let vector = md_join_vectorized(&b, &s, &specs(), &theta, &ctx).unwrap();
        assert_eq!(serial.rows(), vector.rows());
        let empty_r = Relation::empty(s.schema().clone());
        let theta = eq(col_b("cust"), col_r("cust"));
        let out = md_join_vectorized(&b, &empty_r, &specs(), &theta, &ctx).unwrap();
        assert_eq!(out.len(), b.len());
        let empty_b = Relation::empty(b.schema().clone());
        let out = md_join_vectorized(&empty_b, &s, &specs(), &theta, &ctx).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn coverage_cost_model() {
        let s = sales(10);
        let b = s.distinct_on(&["cust"]).unwrap();
        let ctx = ExecContext::new();
        let kernel_aggs = [AggSpec::on_column("sum", "sale"), AggSpec::count_star()];
        // Equality θ + kernel aggregates: fully covered.
        let c = batch_coverage(&b, &eq(col_b("cust"), col_r("cust")), &kernel_aggs, &ctx);
        assert_eq!((c.covered, c.total), (3, 3));
        assert_eq!(c.permille(), 1000);
        assert!(c.choose_vectorized());
        // Non-equi θ yields no bindings: no hash probing, never vectorized.
        let c = batch_coverage(&b, &lt(col_b("cust"), col_r("cust")), &kernel_aggs, &ctx);
        assert!(!c.hash);
        assert_eq!(c.permille(), 0);
        assert!(!c.choose_vectorized());
        // A single holistic aggregate: exactly half covered → scalar.
        let c = batch_coverage(
            &b,
            &eq(col_b("cust"), col_r("cust")),
            &[AggSpec::on_column("median", "sale")],
            &ctx,
        );
        assert_eq!((c.covered, c.total), (1, 2));
        assert!(!c.choose_vectorized());
        // One holistic among kernel aggregates: majority covered → batch.
        let c = batch_coverage(
            &b,
            &eq(col_b("cust"), col_r("cust")),
            &[
                AggSpec::on_column("sum", "sale"),
                AggSpec::on_column("median", "sale"),
            ],
            &ctx,
        );
        assert_eq!((c.covered, c.total), (2, 3));
        assert!(c.choose_vectorized());
        // A Div prefilter uncovers its unit but the rest still carries it.
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            gt(div(col_r("sale"), lit(2i64)), lit(0i64)),
        );
        let c = batch_coverage(&b, &theta, &kernel_aggs, &ctx);
        assert_eq!((c.covered, c.total), (3, 4));
        assert!(c.choose_vectorized());
        // A Div probe-key expression uncovers the probe unit.
        let theta = eq(col_b("cust"), div(col_r("cust"), lit(1i64)));
        let c = batch_coverage(&b, &theta, &[AggSpec::count_star()], &ctx);
        assert_eq!((c.covered, c.total), (1, 2));
        assert!(!c.choose_vectorized());
        // A mixed residual counts as its own covered unit.
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            ge(col_r("sale"), col_b("cust")),
        );
        let c = batch_coverage(&b, &theta, &kernel_aggs, &ctx);
        assert_eq!((c.covered, c.total), (4, 4));
        assert!(c.choose_vectorized());
        // Forced nested loop disables batched probing entirely.
        let nl = ExecContext::new().with_strategy(ProbeStrategy::NestedLoop);
        let c = batch_coverage(&b, &eq(col_b("cust"), col_r("cust")), &kernel_aggs, &nl);
        assert!(!c.hash);
        assert!(!c.choose_vectorized());
    }

    /// Satellite: the specialized single-`i64` map and the generic §4.5 index
    /// share one hasher; assert their bucket assignments are identical for
    /// every key (including adversarial shapes and absent keys).
    #[test]
    fn fast_int_map_matches_index_buckets_exactly() {
        let keys = [
            0i64,
            1,
            -1,
            i64::MIN,
            i64::MAX,
            1 << 40,
            2 << 40,
            3 << 40,
            -(1 << 40),
            7,
        ];
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("tag", DataType::Int)]);
        // Two rows per key so buckets have more than one entry.
        let rows: Vec<Row> = keys
            .iter()
            .enumerate()
            .flat_map(|(i, &k)| {
                [
                    Row::from_values(vec![Value::Int(k), Value::Int(i as i64)]),
                    Row::from_values(vec![Value::Int(k), Value::Int(-(i as i64))]),
                ]
            })
            .collect();
        let b = Relation::from_rows(schema.clone(), rows);
        let theta = eq(col_b("k"), col_r("k"));
        let plan = ProbePlan::build(&b, &schema, &theta, ProbeStrategy::HashProbe).unwrap();
        let probe = BatchProbe::new(&plan, &b);
        let map = probe.fast_int.as_ref().expect("single-Int-key fast map");
        let ProbePlan::Hash { index, .. } = probe.plan else {
            panic!("expected hash plan");
        };
        assert_eq!(map.len(), index.distinct_keys());
        for k in keys.iter().copied().chain([2, -2, 99, i64::MIN + 1]) {
            let fast: &[usize] = map.get(&k).map(Vec::as_slice).unwrap_or(&[]);
            assert_eq!(fast, index.get(&[Value::Int(k)]), "key {k}");
        }
    }

    /// Tentpole: multi-column integer keys probe vectorized — row- and
    /// counter-identical to serial with zero batch fallbacks.
    #[test]
    fn multi_column_keys_vectorize_without_fallback() {
        let s = sales(400);
        let b = s.distinct_on(&["cust", "month"]).unwrap();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_b("month"), col_r("month")),
        );
        assert_vectorized_covered(&b, &s, &specs(), &theta);
    }

    /// Tentpole: dictionary-coded string keys probe by code translation —
    /// row- and counter-identical to serial with zero batch fallbacks.
    #[test]
    fn string_keys_vectorize_without_fallback() {
        let s = sales(400);
        let b = s.distinct_on(&["state"]).unwrap();
        let theta = eq(col_b("state"), col_r("state"));
        assert_vectorized_covered(&b, &s, &specs(), &theta);
    }

    /// Tentpole: mixed int + string key tuples assemble from typed columns.
    #[test]
    fn mixed_int_string_keys_vectorize_without_fallback() {
        let s = sales(400);
        let b = s.distinct_on(&["cust", "state"]).unwrap();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            eq(col_b("state"), col_r("state")),
        );
        assert_vectorized_covered(&b, &s, &specs(), &theta);
    }

    /// Tentpole: a dense mixed residual takes the batch-evaluation path (7
    /// base rows over 64-row chunks ⇒ every base row clears the density
    /// cutoff) and stays identical to serial, still with zero fallbacks.
    #[test]
    fn batch_residual_matches_serial_without_fallback() {
        let s = sales(400);
        let b = s.distinct_on(&["cust"]).unwrap();
        let theta = and(
            eq(col_b("cust"), col_r("cust")),
            gt(col_r("sale"), col_b("cust")),
        );
        assert_vectorized_covered(&b, &s, &specs(), &theta);
    }

    fn assert_vectorized_covered(
        b: &Relation,
        s: &Relation,
        l: &[AggSpec],
        theta: &mdj_expr::Expr,
    ) {
        let serial_stats = Arc::new(ScanStats::new());
        let sctx = ExecContext::new().with_stats(serial_stats.clone());
        let serial = md_join_serial(b, s, l, theta, &sctx).unwrap();
        let vec_stats = Arc::new(ScanStats::new());
        let vctx = ExecContext::new()
            .with_morsel_size(64)
            .with_stats(vec_stats.clone());
        let vector = md_join_vectorized(b, s, l, theta, &vctx).unwrap();
        assert_eq!(serial.rows(), vector.rows(), "θ = {theta}");
        assert_eq!(serial_stats.scans(), vec_stats.scans());
        assert_eq!(serial_stats.tuples_scanned(), vec_stats.tuples_scanned());
        assert_eq!(serial_stats.probes(), vec_stats.probes(), "θ = {theta}");
        assert_eq!(serial_stats.updates(), vec_stats.updates(), "θ = {theta}");
        assert!(vec_stats.batches() > 0);
        assert_eq!(vec_stats.batch_fallbacks(), 0, "θ = {theta}");
    }

    /// Satellite: adversarial scoreboard stress — tiny batches so slots are
    /// recycled every few tuples, duplicate base keys so buckets span rows,
    /// and extreme key values that collide in a naive multiplicative hash.
    /// Rows and every counter must match serial exactly.
    #[test]
    fn scoreboard_slot_recycling_under_adversarial_keys() {
        let keys = [
            0i64,
            i64::MAX,
            i64::MIN,
            1 << 40,
            2 << 40,
            3 << 40,
            -(1 << 40),
            7,
            -7,
            42,
        ];
        let b_schema = Schema::from_pairs(&[("k", DataType::Int), ("tag", DataType::Int)]);
        let b_rows: Vec<Row> = keys
            .iter()
            .enumerate()
            .flat_map(|(i, &k)| {
                // Duplicate keys → every probe returns a two-row bucket, so
                // distinct base rows always share a batch's scoreboard.
                [
                    Row::from_values(vec![Value::Int(k), Value::Int(i as i64)]),
                    Row::from_values(vec![Value::Int(k), Value::Int(100 + i as i64)]),
                ]
            })
            .collect();
        let b = Relation::from_rows(b_schema, b_rows);
        let r_schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]);
        // Rotate through the keys (plus misses) so consecutive tuples hit
        // different base rows and every 3-row batch recycles all its slots.
        let r_rows: Vec<Row> = (0..200)
            .map(|i| {
                let k = if i % 13 == 0 {
                    Value::Int(999) // absent key: empty bucket
                } else {
                    Value::Int(keys[i % keys.len()])
                };
                Row::from_values(vec![k, Value::Float(i as f64 * 0.5)])
            })
            .collect();
        let r = Relation::from_rows(r_schema, r_rows);
        let theta = eq(col_b("k"), col_r("k"));
        let l = [
            AggSpec::on_column("sum", "v"),
            AggSpec::on_column("min", "v"),
            AggSpec::count_star(),
        ];
        let serial_stats = Arc::new(ScanStats::new());
        let sctx = ExecContext::new().with_stats(serial_stats.clone());
        let serial = md_join_serial(&b, &r, &l, &theta, &sctx).unwrap();
        let vec_stats = Arc::new(ScanStats::new());
        let vctx = ExecContext::new()
            .with_morsel_size(3)
            .with_stats(vec_stats.clone());
        let vector = md_join_vectorized(&b, &r, &l, &theta, &vctx).unwrap();
        assert_eq!(serial.rows(), vector.rows());
        assert_eq!(serial_stats.probes(), vec_stats.probes());
        assert_eq!(serial_stats.updates(), vec_stats.updates());
        assert_eq!(vec_stats.batches(), 200u64.div_ceil(3));
        assert_eq!(vec_stats.batch_fallbacks(), 0);
    }
}
