//! Base-values table builders — every group-definition shape from Section 2.
//!
//! The point of the MD-join is that *any* relation can serve as `B`: a plain
//! `select distinct` (group-by), a cube with `ALL` values (Example 2.1), a
//! restricted collection of group-bys (grouping sets / unpivot marginals), a
//! roll-up chain, or an externally supplied table of "crucial/representative
//! points" (Example 2.4 — just pass that relation straight in). These
//! builders produce such tables; the aggregation that follows is always the
//! same operator.

use crate::error::Result;
use mdj_expr::builder::{and_all, col_b, col_r, eq, lit, or};
use mdj_expr::Expr;
use mdj_storage::{Relation, Row, Value};
use std::collections::HashSet;

/// Group-by base table: `select distinct attrs from r` (Example 3.1's `B`).
pub fn group_by(r: &Relation, attrs: &[&str]) -> Result<Relation> {
    Ok(r.distinct_on(attrs)?)
}

/// All subsets of `0..n` as bitmasks, from full set down to empty.
fn masks(n: usize) -> impl Iterator<Item = u32> {
    (0..(1u32 << n)).rev()
}

/// Generic grouping-set materialization: for each listed subset of `dims`,
/// the distinct values of kept dimensions, with `ALL` in the rolled-up ones.
fn materialize_sets(r: &Relation, dims: &[&str], keep_masks: &[u32]) -> Result<Relation> {
    let idx = r.schema().indices_of(dims)?;
    let schema = r.schema().project(&idx);
    let mut seen: HashSet<Vec<Value>> = HashSet::new();
    let mut out = Relation::empty(schema);
    for &mask in keep_masks {
        for row in r.iter() {
            let key: Vec<Value> = idx
                .iter()
                .enumerate()
                .map(|(d, &col)| {
                    if mask & (1 << d) != 0 {
                        row[col].clone()
                    } else {
                        Value::All
                    }
                })
                .collect();
            if seen.insert(key.clone()) {
                out.push_unchecked(Row::new(key));
            }
        }
    }
    Ok(out)
}

/// The data-cube base table of Example 2.1: all `2^n` group-bys of `dims`
/// merged into one relation using `ALL` (Gray et al.). Ordered coarse-to-fine
/// free; rows are unique.
pub fn cube(r: &Relation, dims: &[&str]) -> Result<Relation> {
    let keep: Vec<u32> = masks(dims.len()).collect();
    materialize_sets(r, dims, &keep)
}

/// SQL99 `ROLLUP(dims)`: the n+1 prefix group-bys
/// `(d₁..d_n), (d₁..d_{n-1}), …, ()`.
pub fn rollup(r: &Relation, dims: &[&str]) -> Result<Relation> {
    let n = dims.len();
    let keep: Vec<u32> = (0..=n).rev().map(|k| ((1u64 << k) - 1) as u32).collect();
    materialize_sets(r, dims, &keep)
}

/// SQL99 `GROUPING SETS`: a user-controlled collection of group-bys. Each set
/// lists the dimensions *kept*; the rest become `ALL`. The paper's marginals
/// example: `Grouping Sets ((prod), (month), (state))`.
pub fn grouping_sets(r: &Relation, dims: &[&str], sets: &[Vec<&str>]) -> Result<Relation> {
    let keep: Vec<u32> = sets
        .iter()
        .map(|set| {
            let mut mask = 0u32;
            for name in set {
                // Raises UnknownColumn via indices_of below if bogus; position
                // within dims is what matters here.
                if let Some(d) = dims.iter().position(|x| x == name) {
                    mask |= 1 << d;
                }
            }
            mask
        })
        .collect();
    // Validate set members really are dims.
    for set in sets {
        for name in set {
            if !dims.contains(name) {
                return Err(mdj_storage::StorageError::UnknownColumn {
                    name: (*name).to_string(),
                    schema: format!("grouping dims {dims:?}"),
                }
                .into());
            }
        }
    }
    materialize_sets(r, dims, &keep)
}

/// The unpivot base table of \[GFC98\] as discussed in Example 2.1: the
/// one-dimensional marginals, i.e. `GROUPING SETS ((d₁), (d₂), …, (d_n))`.
pub fn unpivot(r: &Relation, dims: &[&str]) -> Result<Relation> {
    let sets: Vec<Vec<&str>> = dims.iter().map(|d| vec![*d]).collect();
    grouping_sets(r, dims, &sets)
}

/// θ matching a cube/rollup/grouping-sets base table against detail tuples:
/// for each dimension, `B.d = ALL OR B.d = R.d`. An `ALL` cell aggregates
/// every detail value of that dimension — precisely the roll-up meaning of
/// `ALL` in \[GBLP96\]. (The optimized cube algorithms in `mdj-cube` avoid this
/// OR-form by partitioning per cuboid, per Theorem 4.1.)
pub fn cube_match_theta(dims: &[&str]) -> Expr {
    and_all(
        dims.iter()
            .map(|d| or(eq(col_b(*d), lit(Value::All)), eq(col_b(*d), col_r(*d)))),
    )
}

/// θ for one specific cuboid (the kept dimensions get equality tests; rolled
/// up dimensions are unconstrained). Used by the per-cuboid evaluation plans.
pub fn cuboid_theta(kept: &[&str]) -> Expr {
    and_all(kept.iter().map(|d| eq(col_b(*d), col_r(*d))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_storage::{DataType, Schema};

    fn rel() -> Relation {
        let schema = Schema::from_pairs(&[
            ("prod", DataType::Int),
            ("month", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![
                    Value::Int(1),
                    Value::Int(1),
                    Value::str("NY"),
                    Value::Float(1.0),
                ]),
                Row::from_values(vec![
                    Value::Int(1),
                    Value::Int(2),
                    Value::str("NY"),
                    Value::Float(2.0),
                ]),
                Row::from_values(vec![
                    Value::Int(2),
                    Value::Int(1),
                    Value::str("CA"),
                    Value::Float(3.0),
                ]),
            ],
        )
    }

    #[test]
    fn group_by_is_distinct() {
        let b = group_by(&rel(), &["prod"]).unwrap();
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn cube_counts() {
        // Distinct combos: (prod,month,state): 3; (prod,month): 3; (prod,state): 2;
        // (month,state): 3; (prod): 2; (month): 2; (state): 2; (): 1. Total 18.
        let b = cube(&rel(), &["prod", "month", "state"]).unwrap();
        assert_eq!(b.len(), 18);
        // Apex row present.
        assert!(b.iter().any(|r| r.values().iter().all(|v| v.is_all())));
        // No duplicates.
        let uniq: HashSet<_> = b.iter().cloned().collect();
        assert_eq!(uniq.len(), b.len());
    }

    #[test]
    fn cube_of_two_dims() {
        let b = cube(&rel(), &["prod", "month"]).unwrap();
        // (p,m): 3; (p,ALL): 2; (ALL,m): 2; (ALL,ALL): 1 → 8
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn rollup_prefixes_only() {
        let b = rollup(&rel(), &["prod", "month"]).unwrap();
        // (p,m): 3; (p,ALL): 2; (ALL,ALL): 1 → 6; no (ALL,m) rows.
        assert_eq!(b.len(), 6);
        assert!(!b.iter().any(|r| r[0].is_all() && !r[1].is_all()));
    }

    #[test]
    fn grouping_sets_marginals() {
        let b = grouping_sets(
            &rel(),
            &["prod", "month", "state"],
            &[vec!["prod"], vec!["month"], vec!["state"]],
        )
        .unwrap();
        // prods: 2 + months: 2 + states: 2 = 6 rows.
        assert_eq!(b.len(), 6);
        for row in b.iter() {
            let all_count = row.values().iter().filter(|v| v.is_all()).count();
            assert_eq!(all_count, 2);
        }
    }

    #[test]
    fn unpivot_equals_singleton_grouping_sets() {
        let a = unpivot(&rel(), &["prod", "month"]).unwrap();
        let b = grouping_sets(&rel(), &["prod", "month"], &[vec!["prod"], vec!["month"]]).unwrap();
        assert!(a.same_multiset(&b));
    }

    #[test]
    fn grouping_sets_rejects_unknown_dims() {
        let err = grouping_sets(&rel(), &["prod"], &[vec!["bogus"]]);
        assert!(err.is_err());
    }

    #[test]
    fn grouping_sets_with_duplicate_sets_dedups() {
        let b = grouping_sets(&rel(), &["prod"], &[vec!["prod"], vec!["prod"]]).unwrap();
        assert_eq!(b.len(), 2); // distinct prods once
    }

    #[test]
    fn cube_match_theta_semantics() {
        use crate::context::ExecContext;
        use crate::mdjoin::md_join_serial;
        use mdj_agg::AggSpec;
        let r = rel();
        let b = cube(&r, &["prod", "month"]).unwrap();
        let out = md_join_serial(
            &b,
            &r,
            &[AggSpec::on_column("sum", "sale")],
            &cube_match_theta(&["prod", "month"]),
            &ExecContext::new(),
        )
        .unwrap();
        // Apex = total of all sales.
        let apex = out
            .rows()
            .iter()
            .find(|row| row[0].is_all() && row[1].is_all())
            .unwrap();
        assert_eq!(apex[2], Value::Float(6.0));
        // (prod=1, ALL) = 1.0 + 2.0.
        let p1 = out
            .rows()
            .iter()
            .find(|row| row[0] == Value::Int(1) && row[1].is_all())
            .unwrap();
        assert_eq!(p1[2], Value::Float(3.0));
        // Finest cell (1, 2) = 2.0.
        let cell = out
            .rows()
            .iter()
            .find(|row| row[0] == Value::Int(1) && row[1] == Value::Int(2))
            .unwrap();
        assert_eq!(cell[2], Value::Float(2.0));
    }

    #[test]
    fn cuboid_theta_is_group_theta() {
        assert_eq!(
            cuboid_theta(&["prod", "state"]),
            and_all([
                eq(col_b("prod"), col_r("prod")),
                eq(col_b("state"), col_r("state"))
            ])
        );
        assert_eq!(cuboid_theta(&[]), Expr::always_true());
    }

    #[test]
    fn external_table_is_just_a_relation() {
        // Example 2.4: a precomputed table of cube points is usable directly.
        let csv = "prod,month\n1,ALL\nALL,2\n";
        let schema = Schema::from_pairs(&[("prod", DataType::Int), ("month", DataType::Int)]);
        let b = mdj_storage::csv::read_str(csv, &schema).unwrap();
        use crate::context::ExecContext;
        use crate::mdjoin::md_join_serial;
        use mdj_agg::AggSpec;
        let out = md_join_serial(
            &b,
            &rel(),
            &[AggSpec::on_column("sum", "sale")],
            &cube_match_theta(&["prod", "month"]),
            &ExecContext::new(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let r1 = &out.rows()[0];
        assert_eq!(r1[2], Value::Float(3.0)); // prod 1, any month
    }
}
