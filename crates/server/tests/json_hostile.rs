//! Hostile-payload fuzz for the wire JSON layer.
//!
//! A public listener's parser sees attacker-controlled bytes before any
//! other code does, so the contract here is strict: any byte string either
//! parses or returns `Err` — it never panics, never overflows the stack,
//! and when driven through `handle_line` always produces a well-formed
//! response with a stable `code`. All generators are seeded (SplitMix64),
//! so a failure reproduces exactly.

use mdj_core::EngineConfig;
use mdj_server::json::{parse, Json, MAX_DEPTH};
use mdj_server::wire::handle_line;
use mdj_server::{QueryService, ServiceConfig};
use mdj_storage::{DataType, Relation, Row, Schema, Value};

const KNOWN_CODES: &[&str] = &[
    "bad_request",
    "unknown_session",
    "unknown_statement",
    "lex_error",
    "parse_error",
    "compile_error",
    "bind_error",
    "execution_error",
    "cancelled",
    "deadline_exceeded",
    "budget_exceeded",
    "pool_exhausted",
    "queue_full",
    "frame_too_large",
    "idle_timeout",
    "server_busy",
    "shutting_down",
    "io_error",
];

fn service() -> QueryService {
    let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Float)]);
    let rel = Relation::from_rows(
        schema,
        vec![
            Row::from_values(vec![Value::Int(1), Value::Float(10.0)]),
            Row::from_values(vec![Value::Int(2), Value::Float(30.0)]),
        ],
    );
    let engine = EngineConfig::new().register_table("Sales", rel).build();
    QueryService::new(engine, ServiceConfig::default())
}

/// The invariant every hostile line must satisfy: the response is parseable
/// JSON carrying `ok`, and failures carry a code from the stable set.
fn assert_well_formed_response(svc: &QueryService, line: &str) {
    let resp = handle_line(svc, line);
    let json = parse(&resp).unwrap_or_else(|e| panic!("unparseable response `{resp}`: {e}"));
    match json.get("ok") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            let code = json
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("failure without code: {resp}"));
            assert!(
                KNOWN_CODES.contains(&code),
                "unknown code `{code}` for `{line}`"
            );
        }
        other => panic!("response without boolean ok ({other:?}): {resp}"),
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[test]
fn truncated_requests_never_panic() {
    let svc = service();
    let seeds = [
        r#"{"op":"query","session":1,"sql":"select cust, sum(sale) from Sales group by cust"}"#,
        r#"{"op":"execute","session":1,"stmt":1,"args":[1,2.5,"x",null,true],"deadline_ms":50}"#,
        r#"{"op":"open","nested":{"a":[1,{"b":"\u0041\n"}]}}"#,
    ];
    for full in seeds {
        for cut in 0..=full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let line = &full[..cut];
            let _ = parse(line); // must not panic
            if !line.trim().is_empty() {
                assert_well_formed_response(&svc, line);
            }
        }
    }
}

#[test]
fn deep_nesting_is_an_error_not_a_stack_overflow() {
    // Orders of magnitude past the limit: would abort the process if the
    // parser actually recursed that deep.
    for open in ["[", "{\"k\":[", "[[{\"a\":"] {
        let bomb = open.repeat(20_000 / open.len());
        let err = parse(&bomb).unwrap_err();
        assert!(err.contains("depth"), "{err}");
    }
    let exact = "[".repeat(MAX_DEPTH) + "1" + &"]".repeat(MAX_DEPTH);
    assert!(parse(&exact).is_ok());
    let svc = service();
    let bomb_line = format!(r#"{{"op":"query","session":1,"sql":{}"#, "[".repeat(50_000));
    assert_well_formed_response(&svc, &bomb_line);
}

#[test]
fn malformed_escapes_and_control_chars_are_typed_errors() {
    let svc = service();
    let cases: &[&str] = &[
        "{\"op\":\"ping\",\"x\":\"\\ud800\"}",     // lone surrogate
        "{\"op\":\"ping\",\"x\":\"\\u12\"}",       // truncated \u escape
        "{\"op\":\"ping\",\"x\":\"\\q\"}",         // unknown escape
        "{\"op\":\"ping\",\"x\":\"unterminated",   // unterminated string
        "{\"op\":\"ping\",\"x\":\"\u{1}\u{1f}\"}", // raw control chars
        "{\"op\":\u{7}\"ping\"}",                  // control char between tokens
        "{\"op\":\"ping\"}\u{0}",                  // trailing NUL
        "\u{feff}{\"op\":\"ping\"}",               // BOM prefix
        "{\"op\":\"ping\",\"n\":1e999999}",        // overflow exponent
        "{\"op\":\"ping\",\"n\":-}",               // bare minus
        "{\"op\":\"ping\",\"n\":00000000000000000000000000009}", // i64 overflow
    ];
    for line in cases {
        let _ = parse(line); // must not panic either way
        assert_well_formed_response(&svc, line);
    }
}

#[test]
fn seeded_byte_fuzz_never_panics_and_codes_stay_stable() {
    let svc = service();
    let mut rng = SplitMix64(0x5eed_f00d_0000_0007);
    let template =
        r#"{"op":"query","session":1,"sql":"select cust from Sales","tag":"t","budget":4096}"#;

    // Pure random byte soup (lossy-decoded so it is a &str like the
    // connection layer guarantees by the time JSON sees it).
    for _ in 0..400 {
        let len = rng.below(160);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xff) as u8).collect();
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse(&line);
        if !line.trim().is_empty() {
            assert_well_formed_response(&svc, &line);
        }
    }

    // Structured mutations of a valid request: flips, deletions, splices.
    for _ in 0..400 {
        let mut bytes = template.as_bytes().to_vec();
        for _ in 0..=rng.below(4) {
            match rng.below(3) {
                0 => {
                    let i = rng.below(bytes.len());
                    bytes[i] = (rng.next() & 0x7f) as u8;
                }
                1 => {
                    let i = rng.below(bytes.len());
                    bytes.remove(i);
                }
                _ => {
                    let i = rng.below(bytes.len());
                    bytes.insert(i, b"{}[],:\"\\x0"[rng.below(10)]);
                }
            }
        }
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse(&line);
        if !line.trim().is_empty() {
            assert_well_formed_response(&svc, &line);
        }
    }
}
