//! Minimal hand-rolled JSON for the wire protocol.
//!
//! The vendored `serde` stub is a no-op, so `mdjd` carries its own parser
//! and writer. The dialect is standard JSON restricted to what the protocol
//! needs: objects, arrays, strings with `\uXXXX`/standard escapes, i64 and
//! f64 numbers, booleans, and null. Integers that fit i64 stay integers —
//! the SQL layer distinguishes `Value::Int` from `Value::Float`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with sorted keys (deterministic encode order).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Encode to a single-line JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    // JSON has no NaN/Infinity; encode as null like most
                    // implementations.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Deepest object/array nesting `parse` accepts. The parser recurses, so
/// without a bound a hostile `[[[[...` payload overflows the stack and
/// aborts the whole process; with it, the payload is a parse error like
/// any other. 64 is far beyond anything the wire protocol produces.
pub const MAX_DEPTH: usize = 64;

/// Parse one JSON document; trailing content is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.input[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting exceeds the depth limit of {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.enter()?;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.enter()?;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_lit("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_lit("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .input
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the protocol;
                            // lone surrogates decode to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    let ch = self.input[self.pos..]
                        .chars()
                        .next()
                        .ok_or("invalid utf8 position")?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cases = [
            r#"{"a":1,"b":[1.5,"x",null,true],"c":{"d":-2}}"#,
            r#"[]"#,
            r#""he said \"hi\"\n""#,
            r#"-42"#,
        ];
        for case in cases {
            let v = parse(case).unwrap();
            assert_eq!(parse(&v.encode()).unwrap(), v, "{case}");
        }
    }

    #[test]
    fn ints_and_floats_stay_distinct() {
        assert_eq!(parse("3").unwrap(), Json::Int(3));
        assert_eq!(parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(parse(r#""aA\t""#).unwrap(), Json::Str("aA\t".into()));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1} extra"#).is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn depth_limit_is_enforced_not_overflowed() {
        // One past the limit fails cleanly...
        let deep = "[".repeat(MAX_DEPTH + 1) + &"]".repeat(MAX_DEPTH + 1);
        let err = parse(&deep).unwrap_err();
        assert!(err.contains("depth"), "{err}");
        // ...and the limit itself still parses.
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
        // Mixed nesting counts both container kinds toward the limit.
        let mixed = r#"{"a":["#.repeat(MAX_DEPTH / 2 + 1);
        let err = parse(&mixed).unwrap_err();
        assert!(err.contains("depth"), "{err}");
    }

    #[test]
    fn control_chars_encode_escaped() {
        let s = Json::Str("a\u{1}b".into()).encode();
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(parse(&s).unwrap(), Json::Str("a\u{1}b".into()));
    }
}
