//! Graceful-shutdown state machine and drain reporting.
//!
//! A [`ShutdownController`] is one shared atomic with three states:
//!
//! ```text
//! Running ──request()──▶ Draining ──mark_stopped()──▶ Stopped
//! ```
//!
//! `request` is a single atomic store, so SIGTERM/SIGINT handlers may call
//! it directly (async-signal-safe: no locks, no allocation). While
//! *Draining*, the service sheds new queries with `shutting_down`, the
//! acceptor refuses new connections, and in-flight queries run to
//! completion up to the drain deadline; stragglers are then cancelled
//! through their [`CancelToken`](mdj_core::CancelToken)s. *Stopped* ends
//! the accept loop.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// Shared shutdown state. Clones observe (and drive) the same state.
#[derive(Debug, Clone, Default)]
pub struct ShutdownController {
    state: Arc<AtomicU8>,
}

impl ShutdownController {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enter the *Draining* state. Idempotent; never downgrades *Stopped*.
    /// Async-signal-safe: exactly one atomic compare-exchange.
    pub fn request(&self) {
        let _ = self
            .state
            .compare_exchange(RUNNING, DRAINING, Ordering::AcqRel, Ordering::Acquire);
    }

    /// True once shutdown has been requested (draining or stopped).
    pub fn is_requested(&self) -> bool {
        self.state.load(Ordering::Acquire) != RUNNING
    }

    /// True once the drain has completed and the acceptor must exit.
    pub fn is_stopped(&self) -> bool {
        self.state.load(Ordering::Acquire) == STOPPED
    }

    /// Enter the terminal *Stopped* state.
    pub fn mark_stopped(&self) {
        self.state.store(STOPPED, Ordering::Release);
    }
}

/// What a graceful drain observed and did, for the operator log and the
/// chaos tests' assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainReport {
    /// Queries in flight when the drain began.
    pub in_flight_at_request: usize,
    /// Stragglers force-cancelled at the drain deadline.
    pub cancelled: usize,
    /// True when every in-flight query finished before the deadline
    /// (nothing was cancelled).
    pub drained_in_time: bool,
    /// Pool bytes still reserved after the drain (0 on a clean drain).
    pub pool_reserved: u64,
    /// Pool waiters still queued after the drain (0 on a clean drain).
    pub pool_waiters: usize,
    /// Sessions still open at exit (informational; sessions are cheap).
    pub sessions: usize,
}

impl DrainReport {
    /// A drain is *clean* when the pool returned every byte and no one is
    /// left waiting — the invariant `mdjd` asserts before exiting 0.
    pub fn is_clean(&self) -> bool {
        self.pool_reserved == 0 && self.pool_waiters == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_machine_is_monotone() {
        let s = ShutdownController::new();
        assert!(!s.is_requested());
        assert!(!s.is_stopped());
        s.request();
        assert!(s.is_requested());
        assert!(!s.is_stopped());
        s.request(); // idempotent
        assert!(s.is_requested());
        s.mark_stopped();
        assert!(s.is_stopped());
        s.request(); // must not downgrade
        assert!(s.is_stopped());
    }

    #[test]
    fn clones_share_state() {
        let a = ShutdownController::new();
        let b = a.clone();
        b.request();
        assert!(a.is_requested());
    }

    #[test]
    fn clean_report() {
        assert!(DrainReport::default().is_clean());
        assert!(!DrainReport {
            pool_reserved: 1,
            ..DrainReport::default()
        }
        .is_clean());
    }
}
