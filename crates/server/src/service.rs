//! The multi-tenant query service: sessions, prepared statements, and
//! governed execution over one shared [`EngineConfig`].
//!
//! A [`QueryService`] is transport-agnostic — the TCP front end in
//! [`server`](crate::server) and the in-process stress tests drive the same
//! object. One service holds:
//!
//! * one immutable `Arc<EngineConfig>` (registry, strategy, spill policy,
//!   catalog of copy-on-write relations) shared by every query thread;
//! * an [`AdmissionController`] deciding which queries may start;
//! * a session table mapping session ids to their prepared statements and
//!   the cancel tokens of in-flight queries.
//!
//! Every execution builds a *fresh* [`QueryCtx`] — new `ScanStats`, new
//! `CancelToken`, new pool-backed `MemoryTracker` — so no counter, token,
//! or budget is ever shared between queries (see the per-query isolation
//! regression tests).

use crate::admission::AdmissionController;
use crate::error::ServerError;
use crate::shutdown::{DrainReport, ShutdownController};
use mdj_core::governor::{CancelToken, MemoryPool};
use mdj_core::{CoreError, EngineConfig, ExecContext, IngestReport, QueryCtx};
use mdj_sql::{PreparedStatement, SqlEngine};
use mdj_storage::{Row, ScanStats, StatsSnapshot, SweepReport, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Service-level policy: pool size, admission bounds, default limits.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Global memory pool capacity shared by all queries.
    pub pool_bytes: usize,
    /// Per-query budget when the client doesn't specify one.
    pub default_budget: usize,
    /// Max queries queued for admission before `QueueFull` shedding.
    pub max_waiters: usize,
    /// Max time a query waits for admission before `PoolExhausted`.
    pub admission_wait: Duration,
    /// Wall-clock deadline applied to queries that don't specify one.
    pub default_deadline: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pool_bytes: 256 << 20,
            default_budget: 16 << 20,
            max_waiters: 32,
            admission_wait: Duration::from_millis(500),
            default_deadline: Some(Duration::from_secs(30)),
        }
    }
}

/// Per-execution overrides supplied by the client.
#[derive(Debug, Clone, Default)]
pub struct ExecOptions {
    /// Memory budget in bytes (reserved from the pool at admission).
    pub budget: Option<usize>,
    /// Wall-clock deadline for this execution.
    pub deadline: Option<Duration>,
    /// Client-chosen tag identifying the query for mid-flight `cancel`.
    pub tag: Option<String>,
}

/// A successful query result plus its isolated per-query statistics.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    pub stats: StatsSnapshot,
}

#[derive(Default)]
struct Session {
    statements: HashMap<u64, Arc<PreparedStatement>>,
    next_statement: u64,
    /// Cancel tokens of queries currently executing on behalf of this
    /// session, keyed by the client-supplied tag.
    running: HashMap<String, CancelToken>,
}

/// The shared, thread-safe query service.
pub struct QueryService {
    engine: Arc<EngineConfig>,
    admission: AdmissionController,
    config: ServiceConfig,
    sessions: Mutex<HashMap<u64, Session>>,
    next_session: AtomicU64,
    /// Cancel tokens of *every* in-flight query (tagged or not), keyed by a
    /// monotone query id. This is what a drain cancels; the per-session tag
    /// map remains the client-facing `cancel` surface.
    running: Mutex<HashMap<u64, CancelToken>>,
    next_query: AtomicU64,
    shutdown: ShutdownController,
    /// What the startup crash-recovery sweep of the spill dir found.
    recovery: SweepReport,
    /// Lifetime ingest totals for the `stats` surface (per-batch figures
    /// travel in each `ingest` response).
    ingest_batches: AtomicU64,
    ingest_rows: AtomicU64,
    /// Lifetime paged-I/O totals across every query (per-query figures
    /// travel in each response's `stats` object).
    paged_bytes_read: AtomicU64,
    paged_pages_read: AtomicU64,
    paged_pool_evictions: AtomicU64,
    /// Durable page store backing the catalog, when the daemon was started
    /// with `--data`. Ingest batches are appended here *after* the
    /// in-memory commit so restarts serve the same tables.
    paged_store: Mutex<Option<Arc<mdj_storage::PagedStore>>>,
    #[cfg(feature = "fault-injection")]
    fault: Mutex<Option<Arc<mdj_core::FaultInjector>>>,
}

impl QueryService {
    pub fn new(engine: Arc<EngineConfig>, config: ServiceConfig) -> Self {
        let pool = Arc::new(MemoryPool::new(config.pool_bytes));
        // Cached cuboid bytes compete with query admission for the same
        // pool, so a hot cache cannot starve queries invisibly.
        if let Some(cache) = engine.cuboid_cache() {
            cache.attach_pool(pool.clone());
        }
        let admission = AdmissionController::new(
            pool,
            config.default_budget,
            config.admission_wait,
            config.max_waiters,
        );
        // Crash recovery: a SIGKILLed predecessor skipped its RAII spill
        // cleanup; sweep its orphaned run files before serving anyone. A
        // sweep failure (e.g. an unreadable dir) must not block boot.
        let recovery = mdj_core::recover_spill_dir(&engine).unwrap_or_else(|e| {
            eprintln!("mdjd: spill recovery sweep failed: {e}");
            SweepReport::default()
        });
        QueryService {
            engine,
            admission,
            config,
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            running: Mutex::new(HashMap::new()),
            next_query: AtomicU64::new(1),
            shutdown: ShutdownController::new(),
            recovery,
            ingest_batches: AtomicU64::new(0),
            ingest_rows: AtomicU64::new(0),
            paged_bytes_read: AtomicU64::new(0),
            paged_pages_read: AtomicU64::new(0),
            paged_pool_evictions: AtomicU64::new(0),
            paged_store: Mutex::new(None),
            #[cfg(feature = "fault-injection")]
            fault: Mutex::new(None),
        }
    }

    pub fn engine(&self) -> &Arc<EngineConfig> {
        &self.engine
    }

    pub fn pool(&self) -> &Arc<MemoryPool> {
        self.admission.pool()
    }

    /// The shared shutdown state (also observed by the TCP front end).
    pub fn shutdown(&self) -> &ShutdownController {
        &self.shutdown
    }

    /// What the startup crash-recovery sweep found in the spill directory.
    pub fn recovery_report(&self) -> SweepReport {
        self.recovery
    }

    /// Number of queries executing right now (tagged or not).
    pub fn running_query_count(&self) -> usize {
        self.lock_running().len()
    }

    /// Cancel every in-flight query; returns how many tokens were flipped.
    pub fn cancel_all_running(&self) -> usize {
        let running = self.lock_running();
        for token in running.values() {
            token.cancel();
        }
        running.len()
    }

    /// Graceful drain: stop admitting queries, wait for in-flight work up
    /// to `deadline`, cancel stragglers, and wait (bounded) for the memory
    /// pool to return to zero. Idempotent; safe to call from any thread.
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        const POLL: Duration = Duration::from_millis(5);
        /// Bound on the post-cancel unwind and pool-drain waits: generous
        /// next to any governor poll interval, far from a CI hang.
        const GRACE: Duration = Duration::from_secs(10);

        self.shutdown.request();
        let in_flight_at_request = self.running_query_count();
        let start = Instant::now();
        while self.running_query_count() > 0 && start.elapsed() < deadline {
            std::thread::sleep(POLL);
        }
        let drained_in_time = self.running_query_count() == 0;
        let cancelled = if drained_in_time {
            0
        } else {
            self.cancel_all_running()
        };
        // Cancelled queries still need to unwind to their next governor
        // poll and release their grants; bound the wait so a wedged query
        // cannot hang shutdown.
        let grace = Instant::now();
        while self.running_query_count() > 0 && grace.elapsed() < GRACE {
            std::thread::sleep(POLL);
        }
        // Resident cuboid-cache entries hold pool grants by design; a drain
        // must hand those bytes back or the pool can never reach zero.
        if let Some(cache) = self.engine.cuboid_cache() {
            cache.clear();
        }
        let pool_wait = Instant::now();
        while (self.pool().reserved() > 0 || self.pool().waiters() > 0)
            && pool_wait.elapsed() < GRACE
        {
            std::thread::sleep(POLL);
        }
        DrainReport {
            in_flight_at_request,
            cancelled,
            drained_in_time,
            pool_reserved: self.pool().reserved(),
            pool_waiters: self.pool().waiters(),
            sessions: self.session_count(),
        }
    }

    /// Arm (or disarm) a deterministic fault injector consulted by every
    /// subsequent query and by the TCP front end's accept/read/write sites.
    #[cfg(feature = "fault-injection")]
    pub fn set_fault_injector(&self, fault: Option<Arc<mdj_core::FaultInjector>>) {
        *self
            .fault
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = fault;
    }

    #[cfg(feature = "fault-injection")]
    fn fault_injector(&self) -> Option<Arc<mdj_core::FaultInjector>> {
        self.fault
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Fault hook for the acceptor (constant false without the feature).
    pub(crate) fn fault_server_accept(&self) -> bool {
        #[cfg(feature = "fault-injection")]
        if let Some(f) = self.fault_injector() {
            return f.should_fail_server_accept();
        }
        false
    }

    /// Fault hook per request read (constant false without the feature).
    pub(crate) fn fault_server_read(&self) -> bool {
        #[cfg(feature = "fault-injection")]
        if let Some(f) = self.fault_injector() {
            return f.should_fail_server_read();
        }
        false
    }

    /// Fault hook per response write (constant false without the feature).
    pub(crate) fn fault_server_write(&self) -> bool {
        #[cfg(feature = "fault-injection")]
        if let Some(f) = self.fault_injector() {
            return f.should_fail_server_write();
        }
        false
    }

    /// Open a session; returns its id.
    pub fn open_session(&self) -> u64 {
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.lock_sessions().insert(id, Session::default());
        id
    }

    /// Close a session, cancelling any queries still running under it.
    pub fn close_session(&self, session: u64) -> Result<(), ServerError> {
        let removed = self.lock_sessions().remove(&session);
        match removed {
            Some(s) => {
                for token in s.running.values() {
                    token.cancel();
                }
                Ok(())
            }
            None => Err(ServerError::UnknownSession(session)),
        }
    }

    pub fn session_count(&self) -> usize {
        self.lock_sessions().len()
    }

    /// Parse `sql` once and store it under the session. Returns the
    /// statement id and its `?`-parameter count.
    pub fn prepare(&self, session: u64, sql: &str) -> Result<(u64, usize), ServerError> {
        let stmt = Arc::new(PreparedStatement::parse(sql)?);
        let params = stmt.param_count();
        let mut sessions = self.lock_sessions();
        let s = sessions
            .get_mut(&session)
            .ok_or(ServerError::UnknownSession(session))?;
        s.next_statement += 1;
        let id = s.next_statement;
        s.statements.insert(id, stmt);
        Ok((id, params))
    }

    /// Drop a prepared statement.
    pub fn deallocate(&self, session: u64, statement: u64) -> Result<(), ServerError> {
        let mut sessions = self.lock_sessions();
        let s = sessions
            .get_mut(&session)
            .ok_or(ServerError::UnknownSession(session))?;
        s.statements
            .remove(&statement)
            .map(|_| ())
            .ok_or(ServerError::UnknownStatement(statement))
    }

    /// Execute a prepared statement with bound parameter values.
    pub fn execute(
        &self,
        session: u64,
        statement: u64,
        params: &[Value],
        opts: ExecOptions,
    ) -> Result<QueryOutcome, ServerError> {
        let stmt = {
            let sessions = self.lock_sessions();
            let s = sessions
                .get(&session)
                .ok_or(ServerError::UnknownSession(session))?;
            s.statements
                .get(&statement)
                .cloned()
                .ok_or(ServerError::UnknownStatement(statement))?
        };
        self.run(session, opts, |engine| {
            engine.execute_prepared(&stmt, params)
        })
    }

    /// Execute a one-shot SQL string (no preparation step).
    pub fn query(
        &self,
        session: u64,
        sql: &str,
        opts: ExecOptions,
    ) -> Result<QueryOutcome, ServerError> {
        if !self.lock_sessions().contains_key(&session) {
            return Err(ServerError::UnknownSession(session));
        }
        self.run(session, opts, |engine| engine.query(sql))
    }

    /// Append a validated batch of rows to a catalog table (Algorithm 3.1
    /// maintenance path). Cached cuboids over the table are incrementally
    /// maintained where distributive and dropped otherwise; in-flight
    /// queries keep reading the pre-append relation.
    pub fn ingest(
        &self,
        session: u64,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<IngestReport, ServerError> {
        if self.shutdown.is_requested() {
            return Err(ServerError::ShuttingDown);
        }
        if !self.lock_sessions().contains_key(&session) {
            return Err(ServerError::UnknownSession(session));
        }
        // Durable-first when a page store backs this table: if the disk
        // append fails (ENOSPC, injected fault) the batch is rejected whole
        // and the in-memory catalog never sees it, so a restart can never
        // serve *fewer* rows than clients were acknowledged.
        let store = self.paged_store();
        let durable = store.as_ref().filter(|s| s.table(table).is_some());
        let rows = if let Some(s) = &durable {
            // Validate the whole batch against the live schema *before* the
            // durable append: disk and memory must reject the same batches,
            // and the store's append only checks arity, not types.
            let schema = self
                .engine
                .catalog()
                .get(table)
                .map_err(CoreError::from)?
                .schema()
                .clone();
            let mut staged = mdj_storage::Relation::empty(schema);
            for row in rows {
                staged.push(row).map_err(CoreError::from)?;
            }
            let rows = staged.into_rows();
            s.append(table, &rows).map_err(CoreError::from)?;
            rows
        } else {
            rows
        };
        let report = self.engine.ingest(table, rows)?;
        if let Some(s) = &durable {
            // Re-attach the post-append handle so paged scans see the batch.
            if let Some(t) = s.table(table) {
                let _ = self.engine.catalog().attach_paged(table, t);
            }
        }
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        self.ingest_rows
            .fetch_add(report.rows as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// Attach the durable page store that backs this service's catalog
    /// (`mdjd --data`). Ingest batches for tables present in the store are
    /// appended durably before the in-memory commit.
    pub fn attach_paged_store(&self, store: Arc<mdj_storage::PagedStore>) {
        *self
            .paged_store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(store);
    }

    /// The attached durable page store, if any.
    pub fn paged_store(&self) -> Option<Arc<mdj_storage::PagedStore>> {
        self.paged_store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Lifetime `(batches, rows)` ingested through this service.
    pub fn ingest_totals(&self) -> (u64, u64) {
        (
            self.ingest_batches.load(Ordering::Relaxed),
            self.ingest_rows.load(Ordering::Relaxed),
        )
    }

    /// Lifetime paged-store I/O: `(bytes_read, pages_read, pool_evictions)`
    /// summed over every query executed by this service.
    pub fn paged_totals(&self) -> (u64, u64, u64) {
        (
            self.paged_bytes_read.load(Ordering::Relaxed),
            self.paged_pages_read.load(Ordering::Relaxed),
            self.paged_pool_evictions.load(Ordering::Relaxed),
        )
    }

    /// Cancel the running query tagged `tag` in `session`. Returns whether
    /// a running query was found (a `false` is not an error — the query may
    /// have already finished).
    pub fn cancel(&self, session: u64, tag: &str) -> Result<bool, ServerError> {
        let sessions = self.lock_sessions();
        let s = sessions
            .get(&session)
            .ok_or(ServerError::UnknownSession(session))?;
        match s.running.get(tag) {
            Some(token) => {
                token.cancel();
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The admission + isolation + execution spine shared by `execute` and
    /// `query`.
    fn run(
        &self,
        session: u64,
        opts: ExecOptions,
        body: impl FnOnce(&SqlEngine) -> mdj_sql::Result<mdj_storage::Relation>,
    ) -> Result<QueryOutcome, ServerError> {
        // 0. A draining server admits nothing: shed before touching the
        //    pool so the drain's pool-at-zero invariant cannot regress.
        if self.shutdown.is_requested() {
            return Err(ServerError::ShuttingDown);
        }

        // 1. Admission: reserve the whole budget, or shed with a typed error.
        let tracker = self.admission.admit(opts.budget)?;

        // 2. Fresh per-query context: nothing here is shared with any other
        //    query, so stats and budgets cannot bleed across sessions.
        let stats = Arc::new(ScanStats::new());
        let token = CancelToken::new();
        let mut qctx = QueryCtx::new()
            .with_stats(stats.clone())
            .with_cancel_token(token.clone())
            .with_tracker(Arc::new(tracker));
        if let Some(d) = opts.deadline.or(self.config.default_deadline) {
            qctx = qctx.with_deadline(d);
        }
        #[cfg(feature = "fault-injection")]
        if let Some(f) = self.fault_injector() {
            qctx = qctx.with_fault_injector(f);
        }

        // 3a. Register the token in the service-wide in-flight registry so
        //     a drain can cancel it even when the client sent no tag. The
        //     guard deregisters on every exit path, panic included.
        let query_id = self.next_query.fetch_add(1, Ordering::Relaxed);
        self.lock_running().insert(query_id, token.clone());
        let _running = RunningGuard {
            service: self,
            query_id,
        };

        // 3b. Register the token for client-driven mid-flight cancellation,
        //     if tagged.
        let tag = opts.tag.clone();
        if let Some(t) = &tag {
            let mut sessions = self.lock_sessions();
            let s = sessions
                .get_mut(&session)
                .ok_or(ServerError::UnknownSession(session))?;
            s.running.insert(t.clone(), token.clone());
        }

        // 4. Execute over the shared engine config. The catalog clone is a
        //    BTreeMap of Arc'd relations — cheap, no data copied.
        let ctx = ExecContext::from_parts(self.engine.clone(), qctx);
        let engine = SqlEngine::with_context(self.engine.catalog().clone(), ctx);
        let result = body(&engine);

        // 5. Unregister the tag no matter how execution ended.
        if let Some(t) = &tag {
            if let Some(s) = self.lock_sessions().get_mut(&session) {
                s.running.remove(t);
            }
        }

        let out = result.map_err(ServerError::from)?;
        let snapshot = stats.snapshot();
        self.paged_bytes_read
            .fetch_add(snapshot.bytes_read, Ordering::Relaxed);
        self.paged_pages_read
            .fetch_add(snapshot.pages_read, Ordering::Relaxed);
        self.paged_pool_evictions
            .fetch_add(snapshot.pool_evictions, Ordering::Relaxed);
        Ok(QueryOutcome {
            columns: out.schema().names().iter().map(|s| s.to_string()).collect(),
            rows: out.rows().iter().map(|r| r.values().to_vec()).collect(),
            stats: snapshot,
        })
    }

    fn lock_sessions(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Session>> {
        self.sessions
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_running(&self) -> std::sync::MutexGuard<'_, HashMap<u64, CancelToken>> {
        self.running
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Deregisters an in-flight query from the service-wide registry on every
/// exit path (success, typed error, or panic).
struct RunningGuard<'a> {
    service: &'a QueryService,
    query_id: u64,
}

impl Drop for RunningGuard<'_> {
    fn drop(&mut self) {
        self.service.lock_running().remove(&self.query_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_storage::{DataType, Relation, Row, Schema};

    fn sales() -> Relation {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("month", DataType::Int),
            ("sale", DataType::Float),
        ]);
        let mk = |c: i64, m: i64, s: f64| {
            Row::from_values(vec![Value::Int(c), Value::Int(m), Value::Float(s)])
        };
        Relation::from_rows(
            schema,
            vec![
                mk(1, 1, 10.0),
                mk(1, 2, 30.0),
                mk(2, 1, 7.0),
                mk(2, 2, 50.0),
            ],
        )
    }

    fn service(config: ServiceConfig) -> QueryService {
        let engine = EngineConfig::new().register_table("Sales", sales()).build();
        QueryService::new(engine, config)
    }

    #[test]
    fn prepare_execute_lifecycle() {
        let svc = service(ServiceConfig::default());
        let sid = svc.open_session();
        let (stmt, params) = svc
            .prepare(
                sid,
                "select cust, sum(sale) from Sales where month = ? group by cust",
            )
            .unwrap();
        assert_eq!(params, 1);
        let out = svc
            .execute(sid, stmt, &[Value::Int(2)], ExecOptions::default())
            .unwrap();
        assert_eq!(out.columns, vec!["cust", "sum_sale"]);
        assert_eq!(out.rows.len(), 2);
        assert!(out.stats.tuples_scanned > 0);
        svc.deallocate(sid, stmt).unwrap();
        assert!(matches!(
            svc.execute(sid, stmt, &[Value::Int(2)], ExecOptions::default()),
            Err(ServerError::UnknownStatement(_))
        ));
        svc.close_session(sid).unwrap();
        assert!(matches!(
            svc.prepare(sid, "select count(*) from Sales"),
            Err(ServerError::UnknownSession(_))
        ));
    }

    #[test]
    fn pool_returns_to_zero_after_queries() {
        let svc = service(ServiceConfig::default());
        let sid = svc.open_session();
        for _ in 0..3 {
            svc.query(
                sid,
                "select cust, sum(sale) from Sales group by cust",
                ExecOptions::default(),
            )
            .unwrap();
        }
        assert_eq!(svc.pool().reserved(), 0);
    }

    #[test]
    fn oversized_budget_is_shed_with_typed_error() {
        let svc = service(ServiceConfig {
            pool_bytes: 1 << 20,
            ..ServiceConfig::default()
        });
        let sid = svc.open_session();
        let err = svc
            .query(
                sid,
                "select count(*) from Sales",
                ExecOptions {
                    budget: Some(2 << 20),
                    ..ExecOptions::default()
                },
            )
            .unwrap_err();
        assert_eq!(err.code(), "pool_exhausted");
        assert!(err.is_shed());
        assert_eq!(svc.pool().reserved(), 0);
    }

    #[test]
    fn per_query_stats_are_isolated() {
        let svc = service(ServiceConfig::default());
        let sid = svc.open_session();
        let sql = "select cust, sum(sale) from Sales group by cust";
        let a = svc.query(sid, sql, ExecOptions::default()).unwrap();
        let b = svc.query(sid, sql, ExecOptions::default()).unwrap();
        // Identical queries see identical — not accumulating — counters.
        assert_eq!(a.stats.tuples_scanned, b.stats.tuples_scanned);
        assert_eq!(a.stats.updates, b.stats.updates);
    }

    #[test]
    fn draining_service_sheds_new_queries_and_reports_clean() {
        let svc = service(ServiceConfig::default());
        let sid = svc.open_session();
        let report = svc.drain(Duration::from_millis(100));
        assert!(report.drained_in_time);
        assert!(report.is_clean());
        assert_eq!(report.in_flight_at_request, 0);
        let err = svc
            .query(sid, "select count(*) from Sales", ExecOptions::default())
            .unwrap_err();
        assert_eq!(err.code(), "shutting_down");
        assert_eq!(svc.pool().reserved(), 0);
    }

    #[test]
    fn drain_cancels_stragglers_past_the_deadline() {
        let svc = Arc::new(service(ServiceConfig {
            default_deadline: None,
            ..ServiceConfig::default()
        }));
        let sid = svc.open_session();
        let bg = {
            let svc = svc.clone();
            std::thread::spawn(move || {
                // A cube over the cross of three columns: long enough to
                // still be running when the drain lands.
                svc.query(
                    sid,
                    "select cust, month, sum(sale) from Sales analyze by cube(cust, month)",
                    ExecOptions::default(),
                )
            })
        };
        // Wait for the query to actually be in flight.
        for _ in 0..500 {
            if svc.running_query_count() > 0 || bg.is_finished() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let report = svc.drain(Duration::from_millis(0));
        let outcome = bg.join().unwrap();
        if report.in_flight_at_request > 0 && !report.drained_in_time {
            assert!(report.cancelled >= 1, "{report:?}");
            assert_eq!(outcome.unwrap_err().code(), "cancelled");
        }
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(svc.running_query_count(), 0);
    }

    #[test]
    fn recovery_report_is_exposed() {
        let svc = service(ServiceConfig::default());
        // The default engine spills to the system temp dir; the sweep ran
        // and found nothing of ours to remove (live files are kept).
        let _ = svc.recovery_report();
    }

    #[test]
    fn cancel_of_unknown_tag_reports_not_found() {
        let svc = service(ServiceConfig::default());
        let sid = svc.open_session();
        assert!(!svc.cancel(sid, "nope").unwrap());
        assert!(svc.cancel(999, "nope").is_err());
    }
}
