//! Typed service errors and their wire codes.

use mdj_core::CoreError;
use mdj_sql::SqlError;
use std::fmt;

/// Everything the query service can report to a client. Each variant maps
/// to a stable wire `code` so clients can branch without parsing messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Malformed request (bad JSON, missing field, wrong type).
    BadRequest(String),
    /// The addressed session does not exist (or was closed).
    UnknownSession(u64),
    /// The addressed prepared statement does not exist in the session.
    UnknownStatement(u64),
    /// SQL-layer failure (lex/parse/compile/bind/execution).
    Sql(SqlError),
    /// Governor / admission failure (shedding, cancellation, budgets).
    Core(CoreError),
    /// A request line exceeded the connection's frame-size limit. The line
    /// was discarded without buffering it whole; the connection closes.
    FrameTooLarge { limit: usize },
    /// The connection produced no complete request within the read timeout.
    IdleTimeout,
    /// The server is at its concurrent-connection limit; this connection
    /// was shed before any request was read.
    ServerBusy { limit: usize },
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// Transport-level failure (bind, accept, read, or write). Message-only
    /// so the error stays `Clone + PartialEq`.
    Io(String),
}

impl ServerError {
    /// The stable wire code for this error.
    pub fn code(&self) -> &'static str {
        match self {
            ServerError::BadRequest(_) => "bad_request",
            ServerError::UnknownSession(_) => "unknown_session",
            ServerError::UnknownStatement(_) => "unknown_statement",
            ServerError::Sql(SqlError::Lex { .. }) => "lex_error",
            ServerError::Sql(SqlError::Parse { .. }) => "parse_error",
            ServerError::Sql(SqlError::Compile(_)) => "compile_error",
            ServerError::Sql(SqlError::DuplicateAlias(_)) => "compile_error",
            ServerError::Sql(SqlError::Bind(_)) => "bind_error",
            ServerError::Sql(SqlError::Algebra(e)) => match core_of(e) {
                Some(c) => core_code(c),
                None => "execution_error",
            },
            ServerError::Sql(SqlError::Agg(_)) => "execution_error",
            ServerError::Core(c) => core_code(c),
            ServerError::FrameTooLarge { .. } => "frame_too_large",
            ServerError::IdleTimeout => "idle_timeout",
            ServerError::ServerBusy { .. } => "server_busy",
            ServerError::ShuttingDown => "shutting_down",
            ServerError::Io(_) => "io_error",
        }
    }

    /// True when the request was *shed* by admission or connection control:
    /// the query never ran and the client may retry later.
    pub fn is_shed(&self) -> bool {
        matches!(self.code(), "pool_exhausted" | "queue_full" | "server_busy")
    }
}

fn core_code(c: &CoreError) -> &'static str {
    match c {
        CoreError::Cancelled => "cancelled",
        CoreError::DeadlineExceeded => "deadline_exceeded",
        CoreError::BudgetExceeded { .. } => "budget_exceeded",
        CoreError::PoolExhausted { .. } => "pool_exhausted",
        CoreError::QueueFull { .. } => "queue_full",
        _ => "execution_error",
    }
}

/// Dig the originating `CoreError` out of an algebra error, if any.
fn core_of(e: &mdj_algebra::AlgebraError) -> Option<&CoreError> {
    match e {
        mdj_algebra::AlgebraError::Core(c) => Some(c),
        _ => None,
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::UnknownStatement(id) => write!(f, "unknown statement {id}"),
            ServerError::Sql(e) => write!(f, "{e}"),
            ServerError::Core(e) => write!(f, "{e}"),
            ServerError::FrameTooLarge { limit } => {
                write!(f, "request frame exceeds the {limit}-byte limit")
            }
            ServerError::IdleTimeout => write!(f, "connection idle past the read timeout"),
            ServerError::ServerBusy { limit } => {
                write!(f, "server at its {limit}-connection limit; retry later")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SqlError> for ServerError {
    fn from(e: SqlError) -> Self {
        ServerError::Sql(e)
    }
}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_codes() {
        let pool = ServerError::Core(CoreError::PoolExhausted {
            needed: 10,
            available: 0,
            capacity: 10,
        });
        assert_eq!(pool.code(), "pool_exhausted");
        assert!(pool.is_shed());
        let queue = ServerError::Core(CoreError::QueueFull {
            waiting: 4,
            limit: 4,
        });
        assert_eq!(queue.code(), "queue_full");
        assert!(queue.is_shed());
        assert!(!ServerError::Core(CoreError::Cancelled).is_shed());
        let busy = ServerError::ServerBusy { limit: 4 };
        assert_eq!(busy.code(), "server_busy");
        assert!(busy.is_shed());
    }

    #[test]
    fn connection_governor_codes_are_stable() {
        assert_eq!(
            ServerError::FrameTooLarge { limit: 1024 }.code(),
            "frame_too_large"
        );
        assert_eq!(ServerError::IdleTimeout.code(), "idle_timeout");
        assert_eq!(ServerError::ShuttingDown.code(), "shutting_down");
        assert_eq!(ServerError::Io("broken pipe".into()).code(), "io_error");
        assert!(!ServerError::ShuttingDown.is_shed());
        assert!(!ServerError::FrameTooLarge { limit: 1 }.is_shed());
    }

    #[test]
    fn governor_errors_surface_through_algebra_wrapping() {
        let e = ServerError::Sql(SqlError::Algebra(mdj_algebra::AlgebraError::Core(
            CoreError::DeadlineExceeded,
        )));
        assert_eq!(e.code(), "deadline_exceeded");
        let e = ServerError::Sql(SqlError::Bind("x".into()));
        assert_eq!(e.code(), "bind_error");
    }
}
