//! Typed service errors and their wire codes.

use mdj_core::CoreError;
use mdj_sql::SqlError;
use std::fmt;

/// Everything the query service can report to a client. Each variant maps
/// to a stable wire `code` so clients can branch without parsing messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Malformed request (bad JSON, missing field, wrong type).
    BadRequest(String),
    /// The addressed session does not exist (or was closed).
    UnknownSession(u64),
    /// The addressed prepared statement does not exist in the session.
    UnknownStatement(u64),
    /// SQL-layer failure (lex/parse/compile/bind/execution).
    Sql(SqlError),
    /// Governor / admission failure (shedding, cancellation, budgets).
    Core(CoreError),
}

impl ServerError {
    /// The stable wire code for this error.
    pub fn code(&self) -> &'static str {
        match self {
            ServerError::BadRequest(_) => "bad_request",
            ServerError::UnknownSession(_) => "unknown_session",
            ServerError::UnknownStatement(_) => "unknown_statement",
            ServerError::Sql(SqlError::Lex { .. }) => "lex_error",
            ServerError::Sql(SqlError::Parse { .. }) => "parse_error",
            ServerError::Sql(SqlError::Compile(_)) => "compile_error",
            ServerError::Sql(SqlError::Bind(_)) => "bind_error",
            ServerError::Sql(SqlError::Algebra(e)) => match core_of(e) {
                Some(c) => core_code(c),
                None => "execution_error",
            },
            ServerError::Sql(SqlError::Agg(_)) => "execution_error",
            ServerError::Core(c) => core_code(c),
        }
    }

    /// True when the request was *shed* by admission control: the query
    /// never ran and the client may retry later.
    pub fn is_shed(&self) -> bool {
        matches!(self.code(), "pool_exhausted" | "queue_full")
    }
}

fn core_code(c: &CoreError) -> &'static str {
    match c {
        CoreError::Cancelled => "cancelled",
        CoreError::DeadlineExceeded => "deadline_exceeded",
        CoreError::BudgetExceeded { .. } => "budget_exceeded",
        CoreError::PoolExhausted { .. } => "pool_exhausted",
        CoreError::QueueFull { .. } => "queue_full",
        _ => "execution_error",
    }
}

/// Dig the originating `CoreError` out of an algebra error, if any.
fn core_of(e: &mdj_algebra::AlgebraError) -> Option<&CoreError> {
    match e {
        mdj_algebra::AlgebraError::Core(c) => Some(c),
        _ => None,
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::UnknownStatement(id) => write!(f, "unknown statement {id}"),
            ServerError::Sql(e) => write!(f, "{e}"),
            ServerError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SqlError> for ServerError {
    fn from(e: SqlError) -> Self {
        ServerError::Sql(e)
    }
}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_codes() {
        let pool = ServerError::Core(CoreError::PoolExhausted {
            needed: 10,
            available: 0,
            capacity: 10,
        });
        assert_eq!(pool.code(), "pool_exhausted");
        assert!(pool.is_shed());
        let queue = ServerError::Core(CoreError::QueueFull {
            waiting: 4,
            limit: 4,
        });
        assert_eq!(queue.code(), "queue_full");
        assert!(queue.is_shed());
        assert!(!ServerError::Core(CoreError::Cancelled).is_shed());
    }

    #[test]
    fn governor_errors_surface_through_algebra_wrapping() {
        let e = ServerError::Sql(SqlError::Algebra(mdj_algebra::AlgebraError::Core(
            CoreError::DeadlineExceeded,
        )));
        assert_eq!(e.code(), "deadline_exceeded");
        let e = ServerError::Sql(SqlError::Bind("x".into()));
        assert_eq!(e.code(), "bind_error");
    }
}
