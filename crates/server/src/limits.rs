//! Connection-level resource limits: concurrency cap, frame-size bound,
//! and per-socket read/idle timeouts.
//!
//! The unbounded `BufReader::lines` loop of the first server release let a
//! hostile client stream an endless line into a growing `String` — an OOM a
//! socket away. [`BoundedLineReader`] replaces it: it buffers at most
//! `max_frame_bytes` (+ one read chunk) per pending line and reports an
//! oversized frame as a typed [`Frame::TooLarge`] outcome instead of
//! allocating through it. Read timeouts installed via
//! `TcpStream::set_read_timeout` surface as [`Frame::TimedOut`], so a
//! stalled or half-open peer is shed with a stable error code rather than
//! pinning its thread forever.

use std::io::Read;
use std::time::Duration;

/// Per-connection policy threaded from [`Server`](crate::Server) into every
/// connection thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnLimits {
    /// Maximum concurrently served connections; the excess is shed with
    /// `server_busy` before any request is read.
    pub max_conns: usize,
    /// Maximum bytes in one request line; longer frames close the
    /// connection with `frame_too_large`.
    pub max_frame_bytes: usize,
    /// Maximum time a connection may sit without delivering a complete
    /// request before it is shed with `idle_timeout` (`None` = wait
    /// forever, the historical behaviour).
    pub read_timeout: Option<Duration>,
}

impl Default for ConnLimits {
    fn default() -> Self {
        ConnLimits {
            max_conns: 64,
            max_frame_bytes: 1 << 20,
            read_timeout: None,
        }
    }
}

/// One read outcome of a [`BoundedLineReader`]: either a complete request
/// line or the typed reason the connection must close.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped, `\r\n` tolerated).
    Line(String),
    /// The pending line grew past `max_frame_bytes` without a newline.
    TooLarge,
    /// The pending line is complete but not valid UTF-8.
    NotUtf8,
    /// Peer closed the connection cleanly.
    Eof,
    /// The socket's read timeout expired with no complete request.
    TimedOut,
    /// Hard transport failure.
    Io(String),
}

/// A line reader with a hard cap on buffered bytes per line.
#[derive(Debug)]
pub struct BoundedLineReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline (avoids rescans while a
    /// long line accumulates).
    scanned: usize,
    max: usize,
    eof: bool,
}

impl<R: Read> BoundedLineReader<R> {
    pub fn new(inner: R, max_frame_bytes: usize) -> Self {
        BoundedLineReader {
            inner,
            buf: Vec::new(),
            scanned: 0,
            max: max_frame_bytes,
            eof: false,
        }
    }

    fn take_line(&mut self, end: usize, consumed: usize) -> Frame {
        let rest = self.buf.split_off(consumed);
        let mut line = std::mem::replace(&mut self.buf, rest);
        self.scanned = 0;
        line.truncate(end);
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        match String::from_utf8(line) {
            Ok(s) => Frame::Line(s),
            Err(_) => Frame::NotUtf8,
        }
    }

    /// Block until one complete line (or a typed close reason) is
    /// available. After anything but [`Frame::Line`], the connection should
    /// be closed; the reader makes no attempt to resynchronize.
    pub fn next_frame(&mut self) -> Frame {
        loop {
            if let Some(off) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let idx = self.scanned + off;
                // The newline can land in the same read chunk that crosses
                // the cap; a complete line is still subject to it.
                if idx > self.max {
                    return Frame::TooLarge;
                }
                return self.take_line(idx, idx + 1);
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.max {
                return Frame::TooLarge;
            }
            if self.eof {
                if self.buf.is_empty() {
                    return Frame::Eof;
                }
                // Trailing unterminated data: serve it as a final line.
                let end = self.buf.len();
                return self.take_line(end, end);
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Frame::TimedOut
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Frame::Io(e.to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frames(input: &[u8], max: usize) -> Vec<Frame> {
        let mut r = BoundedLineReader::new(Cursor::new(input.to_vec()), max);
        let mut out = Vec::new();
        loop {
            let f = r.next_frame();
            let done = !matches!(f, Frame::Line(_));
            out.push(f);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn splits_lines_and_strips_crlf() {
        let got = frames(b"one\r\ntwo\nthree", 64);
        assert_eq!(
            got,
            vec![
                Frame::Line("one".into()),
                Frame::Line("two".into()),
                Frame::Line("three".into()),
                Frame::Eof,
            ]
        );
    }

    #[test]
    fn oversized_frame_is_rejected_without_buffering_it() {
        let mut input = vec![b'x'; 64 << 10];
        input.push(b'\n');
        let got = frames(&input, 1024);
        assert_eq!(got, vec![Frame::TooLarge]);
    }

    #[test]
    fn line_at_exactly_the_limit_passes() {
        let mut input = vec![b'x'; 1024];
        input.push(b'\n');
        let got = frames(&input, 1024);
        assert_eq!(got.len(), 2);
        assert!(matches!(&got[0], Frame::Line(s) if s.len() == 1024));
    }

    #[test]
    fn one_byte_past_the_limit_is_rejected_even_with_its_newline_buffered() {
        // The terminating newline arrives in the same chunk that crosses
        // the cap, so the newline scan sees a complete — oversized — line.
        let mut input = vec![b'x'; 1025];
        input.push(b'\n');
        assert_eq!(frames(&input, 1024), vec![Frame::TooLarge]);
    }

    #[test]
    fn invalid_utf8_is_typed() {
        let got = frames(b"ok\n\xff\xfe\n", 64);
        assert_eq!(got, vec![Frame::Line("ok".into()), Frame::NotUtf8]);
    }

    #[test]
    fn empty_input_is_eof() {
        assert_eq!(frames(b"", 64), vec![Frame::Eof]);
    }

    /// A reader that yields one line and then behaves like an expired
    /// `set_read_timeout` socket.
    struct Stall {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for Stall {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Err(std::io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn stalled_reader_reports_timeout() {
        let mut r = BoundedLineReader::new(
            Stall {
                data: b"hello\n".to_vec(),
                pos: 0,
            },
            64,
        );
        assert_eq!(r.next_frame(), Frame::Line("hello".into()));
        assert_eq!(r.next_frame(), Frame::TimedOut);
    }
}
