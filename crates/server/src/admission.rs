//! Admission control: a bounded queue in front of the shared memory pool.
//!
//! Every query reserves its *whole* memory budget from the global
//! [`MemoryPool`] before it starts (reservation-at-admission). An admitted
//! query can therefore never hit pool exhaustion mid-flight — overload is
//! decided up front and surfaces as one of two typed shedding errors:
//!
//! * [`CoreError::QueueFull`] — too many queries already waiting; shed
//!   immediately (back-pressure).
//! * [`CoreError::PoolExhausted`] — no bytes freed within the admission
//!   wait; shed after queuing.
//!
//! The reservation lives inside the query's [`MemoryTracker`] as an RAII
//! [`PoolGrant`](mdj_core::PoolGrant), so the bytes return to the pool
//! exactly when the tracker drops — the pool provably drains to zero once
//! all queries finish.

use mdj_core::governor::{MemoryPool, MemoryTracker};
use mdj_core::Result;
use std::sync::Arc;
use std::time::Duration;

/// Admission policy knobs plus the shared pool.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    pool: Arc<MemoryPool>,
    /// Budget charged to queries that don't ask for a specific one.
    default_budget: usize,
    /// How long an over-committed query may wait for bytes to free up.
    wait: Duration,
    /// Bound on the number of concurrently waiting queries.
    max_waiters: usize,
}

impl AdmissionController {
    pub fn new(
        pool: Arc<MemoryPool>,
        default_budget: usize,
        wait: Duration,
        max_waiters: usize,
    ) -> Self {
        AdmissionController {
            pool,
            default_budget,
            wait,
            max_waiters,
        }
    }

    pub fn pool(&self) -> &Arc<MemoryPool> {
        &self.pool
    }

    pub fn default_budget(&self) -> usize {
        self.default_budget
    }

    /// Admit one query: reserve `budget` (or the default) from the pool,
    /// waiting in the bounded queue if necessary, and return the tracker
    /// the query's `QueryCtx` should carry. Errors are the typed shedding
    /// errors described in the module docs.
    pub fn admit(&self, budget: Option<usize>) -> Result<MemoryTracker> {
        let bytes = budget.unwrap_or(self.default_budget);
        let grant = self
            .pool
            .reserve_timeout(bytes as u64, self.wait, self.max_waiters)?;
        Ok(MemoryTracker::with_grant(bytes, grant))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_core::CoreError;

    #[test]
    fn admits_within_capacity_and_sheds_beyond() {
        let pool = Arc::new(MemoryPool::new(1000));
        let ctrl = AdmissionController::new(pool.clone(), 400, Duration::from_millis(5), 1);
        let a = ctrl.admit(None).unwrap();
        let b = ctrl.admit(None).unwrap();
        // 800/1000 reserved; a third default query queues, times out, sheds.
        let shed = ctrl.admit(None).unwrap_err();
        assert!(matches!(shed, CoreError::PoolExhausted { .. }), "{shed}");
        drop(a);
        drop(b);
        assert_eq!(pool.reserved(), 0);
        // With space back, admission succeeds again.
        let c = ctrl.admit(Some(1000)).unwrap();
        assert_eq!(c.budget(), 1000);
    }

    #[test]
    fn queue_bound_sheds_immediately() {
        let pool = Arc::new(MemoryPool::new(100));
        let ctrl = AdmissionController::new(pool, 100, Duration::from_secs(5), 0);
        let _hold = ctrl.admit(None).unwrap();
        let start = std::time::Instant::now();
        let shed = ctrl.admit(None).unwrap_err();
        // Queue bound 0 → immediate QueueFull, not a 5 s wait.
        assert!(start.elapsed() < Duration::from_secs(1));
        assert!(matches!(shed, CoreError::QueueFull { .. }), "{shed}");
    }
}
