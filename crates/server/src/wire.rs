//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, UTF-8. Requests are JSON
//! objects with an `op` field:
//!
//! ```text
//! {"op":"open"}
//! {"op":"prepare","session":1,"sql":"select cust, sum(sale) from Sales where month = ? group by cust"}
//! {"op":"execute","session":1,"stmt":1,"args":[2],"tag":"q1","budget":1048576,"deadline_ms":5000}
//! {"op":"query","session":1,"sql":"select count(*) from Sales"}
//! {"op":"ingest","session":1,"table":"Sales","rows":[[1,2,"NY",9.5]]}
//! {"op":"cancel","session":1,"tag":"q1"}
//! {"op":"deallocate","session":1,"stmt":1}
//! {"op":"close","session":1}
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses always carry `ok`. Success: `{"ok":true,...}` with op-specific
//! fields (`session`, `stmt`/`params`, or `columns`/`rows`/`stats`).
//! Failure: `{"ok":false,"code":"pool_exhausted","error":"..."}` — `code`
//! is stable ([`ServerError::code`]), `error` is human-readable.
//!
//! Values map as: `Null`↔`null`, `Int`↔integer, `Float`↔float,
//! `Str`↔string, `Bool`↔bool, and the cube `ALL` pseudo-value encodes as
//! `{"all":true}` (it never appears in requests).

use crate::error::ServerError;
use crate::json::{parse, Json};
use crate::service::{ExecOptions, QueryOutcome, QueryService};
use mdj_storage::Value;
use std::time::Duration;

/// Decode one request line, dispatch it to the service, encode the response
/// line (without trailing newline).
pub fn handle_line(service: &QueryService, line: &str) -> String {
    match dispatch(service, line) {
        Ok(json) => json.encode(),
        Err(e) => error_line(&e),
    }
}

/// Encode one failure response line (without trailing newline). Also used
/// by the connection governor for errors raised outside `dispatch` —
/// shedding, frame, and timeout failures.
pub fn error_line(e: &ServerError) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("code", Json::Str(e.code().into())),
        ("error", Json::Str(e.to_string())),
    ])
    .encode()
}

fn dispatch(service: &QueryService, line: &str) -> Result<Json, ServerError> {
    let req = parse(line).map_err(ServerError::BadRequest)?;
    let op = req
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServerError::BadRequest("missing `op`".into()))?;
    match op {
        "ping" => Ok(Json::obj(vec![("ok", Json::Bool(true))])),
        "stats" => {
            let pool = service.pool();
            let recovery = service.recovery_report();
            let (ingest_batches, ingest_rows) = service.ingest_totals();
            let (paged_bytes, paged_pages, paged_evictions) = service.paged_totals();
            let mut fields = vec![
                ("ok", Json::Bool(true)),
                ("sessions", Json::Int(service.session_count() as i64)),
                ("pool_capacity", Json::Int(pool.capacity() as i64)),
                ("pool_reserved", Json::Int(pool.reserved() as i64)),
                ("pool_waiters", Json::Int(pool.waiters() as i64)),
                (
                    "running_queries",
                    Json::Int(service.running_query_count() as i64),
                ),
                ("draining", Json::Bool(service.shutdown().is_requested())),
                ("recovered_spill_files", Json::Int(recovery.removed as i64)),
                (
                    "recovered_spill_bytes",
                    Json::Int(recovery.bytes_removed as i64),
                ),
                ("ingest_batches", Json::Int(ingest_batches as i64)),
                ("ingest_rows", Json::Int(ingest_rows as i64)),
                ("paged_bytes_read", Json::Int(paged_bytes as i64)),
                ("paged_pages_read", Json::Int(paged_pages as i64)),
                ("paged_pool_evictions", Json::Int(paged_evictions as i64)),
            ];
            if let Some(cache) = service.engine().cuboid_cache() {
                let m = cache.metrics();
                fields.push(("cache_hits", Json::Int(m.hits as i64)));
                fields.push(("cache_rollup_hits", Json::Int(m.rollup_hits as i64)));
                fields.push(("cache_misses", Json::Int(m.misses as i64)));
                fields.push(("cache_invalidations", Json::Int(m.invalidations as i64)));
                fields.push(("cache_entries", Json::Int(m.entries as i64)));
                fields.push(("cache_bytes", Json::Int(m.bytes as i64)));
                fields.push(("cache_budget_bytes", Json::Int(m.budget_bytes as i64)));
            }
            Ok(Json::obj(fields))
        }
        "ingest" => {
            let table = str_field(&req, "table")?;
            let rows_json = req
                .get("rows")
                .and_then(Json::as_arr)
                .ok_or_else(|| ServerError::BadRequest("missing array `rows`".into()))?;
            let mut rows = Vec::with_capacity(rows_json.len());
            for row in rows_json {
                let vals = row
                    .as_arr()
                    .ok_or_else(|| ServerError::BadRequest("each row must be an array".into()))?
                    .iter()
                    .map(json_to_value)
                    .collect::<Result<Vec<Value>, _>>()?;
                rows.push(mdj_storage::Row::new(vals));
            }
            let report = service.ingest(session_of(&req)?, table, rows)?;
            Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("rows", Json::Int(report.rows as i64)),
                ("version", Json::Int(report.version as i64)),
                (
                    "cache_maintained",
                    Json::Int(report.cache_maintained as i64),
                ),
                (
                    "cache_invalidated",
                    Json::Int(report.cache_invalidated as i64),
                ),
            ]))
        }
        "shutdown" => {
            // Flip the drain flag and acknowledge; the owner of the
            // `Server` handle (mdjd's signal loop) observes the flag and
            // performs the actual drain + exit. The wire op cannot block on
            // the drain itself: this connection's thread is part of what is
            // being drained.
            service.shutdown().request();
            Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("draining", Json::Bool(true)),
            ]))
        }
        "open" => {
            let id = service.open_session();
            Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("session", Json::Int(id as i64)),
            ]))
        }
        "close" => {
            service.close_session(session_of(&req)?)?;
            Ok(Json::obj(vec![("ok", Json::Bool(true))]))
        }
        "prepare" => {
            let sql = str_field(&req, "sql")?;
            let (stmt, params) = service.prepare(session_of(&req)?, sql)?;
            Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("stmt", Json::Int(stmt as i64)),
                ("params", Json::Int(params as i64)),
            ]))
        }
        "deallocate" => {
            let stmt = int_field(&req, "stmt")? as u64;
            service.deallocate(session_of(&req)?, stmt)?;
            Ok(Json::obj(vec![("ok", Json::Bool(true))]))
        }
        "execute" => {
            let stmt = int_field(&req, "stmt")? as u64;
            let args = args_of(&req)?;
            let out = service.execute(session_of(&req)?, stmt, &args, opts_of(&req)?)?;
            Ok(outcome_json(out))
        }
        "query" => {
            let sql = str_field(&req, "sql")?;
            let out = service.query(session_of(&req)?, sql, opts_of(&req)?)?;
            Ok(outcome_json(out))
        }
        "cancel" => {
            let tag = str_field(&req, "tag")?;
            let found = service.cancel(session_of(&req)?, tag)?;
            Ok(Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("cancelled", Json::Bool(found)),
            ]))
        }
        other => Err(ServerError::BadRequest(format!("unknown op `{other}`"))),
    }
}

fn session_of(req: &Json) -> Result<u64, ServerError> {
    Ok(int_field(req, "session")? as u64)
}

fn int_field(req: &Json, key: &str) -> Result<i64, ServerError> {
    req.get(key)
        .and_then(Json::as_int)
        .ok_or_else(|| ServerError::BadRequest(format!("missing integer `{key}`")))
}

fn str_field<'a>(req: &'a Json, key: &str) -> Result<&'a str, ServerError> {
    req.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ServerError::BadRequest(format!("missing string `{key}`")))
}

fn args_of(req: &Json) -> Result<Vec<Value>, ServerError> {
    match req.get("args") {
        None => Ok(Vec::new()),
        Some(json) => json
            .as_arr()
            .ok_or_else(|| ServerError::BadRequest("`args` must be an array".into()))?
            .iter()
            .map(json_to_value)
            .collect(),
    }
}

fn opts_of(req: &Json) -> Result<ExecOptions, ServerError> {
    let budget = match req.get("budget") {
        None => None,
        Some(j) => Some(j.as_int().filter(|v| *v >= 0).ok_or_else(|| {
            ServerError::BadRequest("`budget` must be a non-negative integer".into())
        })? as usize),
    };
    let deadline = match req.get("deadline_ms") {
        None => None,
        Some(j) => Some(Duration::from_millis(
            j.as_int().filter(|v| *v >= 0).ok_or_else(|| {
                ServerError::BadRequest("`deadline_ms` must be a non-negative integer".into())
            })? as u64,
        )),
    };
    let tag = match req.get("tag") {
        None => None,
        Some(j) => Some(
            j.as_str()
                .ok_or_else(|| ServerError::BadRequest("`tag` must be a string".into()))?
                .to_string(),
        ),
    };
    Ok(ExecOptions {
        budget,
        deadline,
        tag,
    })
}

fn json_to_value(j: &Json) -> Result<Value, ServerError> {
    Ok(match j {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Int(v) => Value::Int(*v),
        Json::Float(v) => Value::Float(*v),
        Json::Str(s) => Value::str(s),
        Json::Arr(_) | Json::Obj(_) => {
            return Err(ServerError::BadRequest(
                "parameter values must be scalars".into(),
            ))
        }
    })
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::All => Json::obj(vec![("all", Json::Bool(true))]),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Float(*f),
        Value::Str(s) => Json::Str(s.to_string()),
        Value::Bool(b) => Json::Bool(*b),
    }
}

fn outcome_json(out: QueryOutcome) -> Json {
    let columns = Json::Arr(out.columns.iter().map(|c| Json::Str(c.clone())).collect());
    let rows = Json::Arr(
        out.rows
            .iter()
            .map(|r| Json::Arr(r.iter().map(value_to_json).collect()))
            .collect(),
    );
    let stats = Json::obj(vec![
        ("tuples_scanned", Json::Int(out.stats.tuples_scanned as i64)),
        ("updates", Json::Int(out.stats.updates as i64)),
        ("bytes_charged", Json::Int(out.stats.bytes_charged as i64)),
        ("degradations", Json::Int(out.stats.degradations as i64)),
        ("bytes_read", Json::Int(out.stats.bytes_read as i64)),
        ("pages_read", Json::Int(out.stats.pages_read as i64)),
        ("pool_evictions", Json::Int(out.stats.pool_evictions as i64)),
    ]);
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("columns", columns),
        ("rows", rows),
        ("stats", stats),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_core::EngineConfig;
    use mdj_storage::{DataType, Relation, Row, Schema};

    fn service() -> QueryService {
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Float)]);
        let rel = Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::Float(10.0)]),
                Row::from_values(vec![Value::Int(2), Value::Float(30.0)]),
            ],
        );
        let engine = EngineConfig::new().register_table("Sales", rel).build();
        QueryService::new(engine, crate::ServiceConfig::default())
    }

    fn ok_field(resp: &str, key: &str) -> Json {
        let json = parse(resp).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)), "{resp}");
        json.get(key).cloned().unwrap_or(Json::Null)
    }

    #[test]
    fn full_session_round_trip() {
        let svc = service();
        let resp = handle_line(&svc, r#"{"op":"open"}"#);
        let sid = ok_field(&resp, "session").as_int().unwrap();
        let resp = handle_line(
            &svc,
            &format!(
                r#"{{"op":"prepare","session":{sid},"sql":"select cust, sum(sale) from Sales where cust = ? group by cust"}}"#
            ),
        );
        let stmt = ok_field(&resp, "stmt").as_int().unwrap();
        let resp = handle_line(
            &svc,
            &format!(r#"{{"op":"execute","session":{sid},"stmt":{stmt},"args":[1]}}"#),
        );
        let rows = ok_field(&resp, "rows");
        assert_eq!(
            rows,
            Json::Arr(vec![Json::Arr(vec![Json::Int(1), Json::Float(10.0)])])
        );
        let resp = handle_line(&svc, &format!(r#"{{"op":"close","session":{sid}}}"#));
        assert!(parse(&resp).unwrap().get("ok") == Some(&Json::Bool(true)));
    }

    #[test]
    fn errors_carry_stable_codes() {
        let svc = service();
        let resp = handle_line(&svc, "not json");
        let json = parse(&resp).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(json.get("code").and_then(Json::as_str), Some("bad_request"));

        let resp = handle_line(
            &svc,
            r#"{"op":"query","session":999,"sql":"select 1 from T"}"#,
        );
        assert_eq!(
            parse(&resp).unwrap().get("code").and_then(Json::as_str),
            Some("unknown_session")
        );

        let resp = handle_line(&svc, r#"{"op":"open"}"#);
        let sid = ok_field(&resp, "session").as_int().unwrap();
        let resp = handle_line(
            &svc,
            &format!(r#"{{"op":"query","session":{sid},"sql":"selec nonsense"}}"#),
        );
        assert_eq!(
            parse(&resp).unwrap().get("code").and_then(Json::as_str),
            Some("parse_error")
        );
    }

    #[test]
    fn ping_and_stats() {
        let svc = service();
        let resp = handle_line(&svc, r#"{"op":"ping"}"#);
        assert_eq!(parse(&resp).unwrap().get("ok"), Some(&Json::Bool(true)));
        let resp = handle_line(&svc, r#"{"op":"stats"}"#);
        assert_eq!(ok_field(&resp, "pool_reserved"), Json::Int(0));
        assert_eq!(ok_field(&resp, "running_queries"), Json::Int(0));
        assert_eq!(ok_field(&resp, "draining"), Json::Bool(false));
        assert_eq!(ok_field(&resp, "recovered_spill_files"), Json::Int(0));
        // Paged-store counters are always present; an in-memory-only
        // service reports zero I/O.
        assert_eq!(ok_field(&resp, "paged_bytes_read"), Json::Int(0));
        assert_eq!(ok_field(&resp, "paged_pages_read"), Json::Int(0));
        assert_eq!(ok_field(&resp, "paged_pool_evictions"), Json::Int(0));
    }

    #[test]
    fn query_stats_carry_paged_counters() {
        let svc = service();
        let resp = handle_line(&svc, r#"{"op":"open"}"#);
        let sid = ok_field(&resp, "session").as_int().unwrap();
        let resp = handle_line(
            &svc,
            &format!(r#"{{"op":"query","session":{sid},"sql":"select count(*) from Sales"}}"#),
        );
        let stats = ok_field(&resp, "stats");
        // In-memory tables read no pages, but the fields are on the wire so
        // clients can observe paged execution without schema changes.
        assert_eq!(stats.get("bytes_read"), Some(&Json::Int(0)));
        assert_eq!(stats.get("pages_read"), Some(&Json::Int(0)));
        assert_eq!(stats.get("pool_evictions"), Some(&Json::Int(0)));
    }

    #[test]
    fn ingest_op_appends_rows_and_reports_cache_effects() {
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Int)]);
        let rel = Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::Int(10)]),
                Row::from_values(vec![Value::Int(2), Value::Int(30)]),
            ],
        );
        let engine = EngineConfig::new()
            .register_table("Sales", rel)
            .with_cuboid_cache(1 << 20)
            .build();
        let svc = QueryService::new(engine, crate::ServiceConfig::default());
        let resp = handle_line(&svc, r#"{"op":"open"}"#);
        let sid = ok_field(&resp, "session").as_int().unwrap();
        // Warm the cache with a canonical group-by cuboid.
        let q = format!(
            r#"{{"op":"query","session":{sid},"sql":"select cust, sum(sale) from Sales group by cust"}}"#
        );
        handle_line(&svc, &q);
        // Ingest: the sum/group-by entry is distributive → maintained.
        let resp = handle_line(
            &svc,
            &format!(r#"{{"op":"ingest","session":{sid},"table":"Sales","rows":[[1,5],[3,7]]}}"#),
        );
        assert_eq!(ok_field(&resp, "rows"), Json::Int(2));
        assert_eq!(ok_field(&resp, "version"), Json::Int(2));
        assert_eq!(ok_field(&resp, "cache_maintained"), Json::Int(1));
        assert_eq!(ok_field(&resp, "cache_invalidated"), Json::Int(0));
        // The maintained entry answers for the grown table.
        let resp = handle_line(&svc, &q);
        let rows = ok_field(&resp, "rows");
        let arr = rows.as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr.contains(&Json::Arr(vec![Json::Int(1), Json::Int(15)])));
        assert!(arr.contains(&Json::Arr(vec![Json::Int(3), Json::Int(7)])));
        // Stats surface the cache and ingest figures.
        let resp = handle_line(&svc, r#"{"op":"stats"}"#);
        assert_eq!(ok_field(&resp, "ingest_batches"), Json::Int(1));
        assert_eq!(ok_field(&resp, "ingest_rows"), Json::Int(2));
        assert_eq!(ok_field(&resp, "cache_hits"), Json::Int(1));
        assert_eq!(ok_field(&resp, "cache_entries"), Json::Int(1));
        // A bad batch is rejected atomically with a typed code.
        let resp = handle_line(
            &svc,
            &format!(r#"{{"op":"ingest","session":{sid},"table":"Sales","rows":[["oops"]]}}"#),
        );
        let json = parse(&resp).unwrap();
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn shutdown_op_flips_the_drain_flag_and_sheds_new_queries() {
        let svc = service();
        let resp = handle_line(&svc, r#"{"op":"open"}"#);
        let sid = ok_field(&resp, "session").as_int().unwrap();
        let resp = handle_line(&svc, r#"{"op":"shutdown"}"#);
        assert_eq!(ok_field(&resp, "draining"), Json::Bool(true));
        let resp = handle_line(&svc, r#"{"op":"stats"}"#);
        assert_eq!(ok_field(&resp, "draining"), Json::Bool(true));
        // New queries are shed with a stable code while draining.
        let resp = handle_line(
            &svc,
            &format!(r#"{{"op":"query","session":{sid},"sql":"select count(*) from Sales"}}"#),
        );
        assert_eq!(
            parse(&resp).unwrap().get("code").and_then(Json::as_str),
            Some("shutting_down")
        );
    }
}
