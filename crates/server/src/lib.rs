//! # mdj-server
//!
//! `mdjd`: a concurrent, multi-tenant query server over the MD-join engine.
//!
//! The paper positions the MD-join as the core operator of a decision-
//! support system serving many concurrent analysts; this crate supplies the
//! service layer that makes the repro multi-user:
//!
//! * [`service::QueryService`] — sessions, prepared `?`-parameterized
//!   statements, and governed execution over one shared
//!   [`EngineConfig`](mdj_core::EngineConfig);
//! * [`admission::AdmissionController`] — a bounded admission queue over a
//!   global [`MemoryPool`](mdj_core::MemoryPool), shedding overload with
//!   the typed `PoolExhausted` / `QueueFull` errors instead of aborting;
//! * [`server::Server`] — a thread-per-connection TCP front end speaking
//!   line-delimited JSON ([`wire`]), with [`json`] hand-rolled because the
//!   vendored serde is a stub;
//! * [`limits::ConnLimits`] — the connection governor: a concurrency cap
//!   (`server_busy`), a per-frame byte bound (`frame_too_large`), and
//!   per-socket read/idle timeouts (`idle_timeout`), each shed with a
//!   stable wire code;
//! * [`shutdown::ShutdownController`] — graceful drain on SIGTERM or the
//!   `shutdown` op: stop admitting, finish in-flight queries up to a
//!   deadline, cancel stragglers, and verify the memory pool is empty
//!   before exit.
//!
//! The service object is transport-agnostic: the concurrent-session stress
//! tests drive `QueryService` directly, in-process, and exercise exactly the
//! code the TCP path runs.

pub mod admission;
pub mod error;
pub mod json;
pub mod limits;
pub mod server;
pub mod service;
pub mod shutdown;
pub mod wire;

pub use admission::AdmissionController;
pub use error::ServerError;
pub use limits::{BoundedLineReader, ConnLimits, Frame};
pub use server::Server;
pub use service::{ExecOptions, QueryOutcome, QueryService, ServiceConfig};
pub use shutdown::{DrainReport, ShutdownController};
