//! The TCP front end: thread-per-connection, line-delimited JSON, governed
//! by [`ConnLimits`] and a graceful-shutdown controller.
//!
//! Each accepted connection gets its own OS thread reading request lines
//! and writing response lines (the [`wire`](crate::wire) protocol). All
//! connections share one [`QueryService`]; sessions are service-global, so
//! a `cancel` for a long-running query can arrive on a *different*
//! connection than the `execute` it targets — exactly how out-of-band
//! cancellation works in real wire protocols.
//!
//! ## Connection lifecycle
//!
//! ```text
//! accepted ──cap ok──▶ admitted ──frames──▶ active ──EOF/error/timeout──▶ closed
//!    │                                         │
//!    └─ over cap → server_busy, closed         └─ drain → queries finish or cancel
//! ```
//!
//! * **Admission**: past `max_conns` concurrent connections the socket is
//!   answered with one `server_busy` error line and closed — a typed shed,
//!   not a silent drop, and never a queue.
//! * **Frames**: request lines are read through a
//!   [`BoundedLineReader`](crate::limits::BoundedLineReader), so an
//!   oversized frame costs one `frame_too_large` line instead of an OOM,
//!   and a stalled peer is shed with `idle_timeout` when `read_timeout` is
//!   set.
//! * **Close**: sessions opened on a connection are closed (and their
//!   running queries cancelled) when the connection drops, so a dying
//!   client cannot leak sessions or leave queries running.
//! * **Shutdown**: once [`Server::shutdown`] (or the `shutdown` wire op +
//!   a signal loop, as in `mdjd`) requests a drain, new connections get one
//!   `shutting_down` line, in-flight queries finish up to the drain
//!   deadline, stragglers are cancelled, and the acceptor thread exits
//!   after the pool is verified drained.

use crate::error::ServerError;
use crate::limits::{BoundedLineReader, ConnLimits, Frame};
use crate::service::QueryService;
use crate::shutdown::DrainReport;
use crate::wire::{error_line, handle_line};
use std::io::Write;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How often the nonblocking acceptor polls for shutdown between accepts.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A running TCP server handle. [`shutdown`](Server::shutdown) drains it;
/// merely dropping the handle leaves the acceptor running (the process
/// exits instead), which is what short-lived tests rely on.
pub struct Server {
    local_addr: std::net::SocketAddr,
    service: Arc<QueryService>,
    active: Arc<AtomicUsize>,
    acceptor: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) with
    /// default [`ConnLimits`] and start accepting on a background thread.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<QueryService>,
    ) -> Result<Server, ServerError> {
        Self::bind_with(addr, service, ConnLimits::default())
    }

    /// Bind with an explicit connection-governor policy.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<QueryService>,
        limits: ConnLimits,
    ) -> Result<Server, ServerError> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServerError::Io(format!("bind: {e}")))?;
        // Nonblocking so the acceptor can observe a shutdown request
        // instead of parking in `accept` forever.
        listener
            .set_nonblocking(true)
            .map_err(|e| ServerError::Io(format!("set_nonblocking: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServerError::Io(format!("local_addr: {e}")))?;
        let active = Arc::new(AtomicUsize::new(0));
        let handle = {
            let service = service.clone();
            let active = active.clone();
            thread::Builder::new()
                .name("mdjd-accept".into())
                .spawn(move || accept_loop(listener, service, limits, active))
                .map_err(|e| ServerError::Io(format!("spawn acceptor: {e}")))?
        };
        Ok(Server {
            local_addr,
            service,
            active,
            acceptor: Mutex::new(Some(handle)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Connections currently admitted (post-cap, pre-close).
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Graceful shutdown: stop admitting queries and connections, let
    /// in-flight queries finish up to `drain`, cancel stragglers, verify
    /// the pool drained, and stop the acceptor. Idempotent.
    pub fn shutdown(&self, drain: Duration) -> DrainReport {
        self.service.shutdown().request();
        let report = self.service.drain(drain);
        self.service.shutdown().mark_stopped();
        let handle = self
            .acceptor
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        report
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<QueryService>,
    limits: ConnLimits,
    active: Arc<AtomicUsize>,
) {
    loop {
        if service.shutdown().is_stopped() {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => {
                // Transient accept failure (EMFILE, ECONNABORTED, ...):
                // back off briefly; the listener itself is still good.
                thread::sleep(ACCEPT_POLL);
                continue;
            }
        };
        // Some platforms hand the listener's nonblocking mode down to the
        // accepted socket; connection threads want blocking reads governed
        // by the read timeout instead.
        if stream.set_nonblocking(false).is_err() {
            continue;
        }
        // Injected accept fault: the connection vanishes between accept
        // and service, as a dying client's would.
        if service.fault_server_accept() {
            continue;
        }
        if service.shutdown().is_requested() {
            shed(stream, &ServerError::ShuttingDown);
            continue;
        }
        // Connection cap: admit-or-shed is one atomic increment; the
        // excess connection gets a typed error line, never a hang.
        if active.fetch_add(1, Ordering::AcqRel) >= limits.max_conns {
            active.fetch_sub(1, Ordering::AcqRel);
            shed(
                stream,
                &ServerError::ServerBusy {
                    limit: limits.max_conns,
                },
            );
            continue;
        }
        let service = service.clone();
        let limits = limits.clone();
        let guard = ConnGuard {
            active: active.clone(),
        };
        let spawned = thread::Builder::new()
            .name("mdjd-conn".into())
            .spawn(move || {
                let _guard = guard;
                handle_connection(stream, &service, &limits);
            });
        if spawned.is_err() {
            // Spawn failure sheds the connection; the guard moved into the
            // closure was never run, so rebalance here.
            active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Decrements the active-connection count when a connection thread exits,
/// no matter how.
struct ConnGuard {
    active: Arc<AtomicUsize>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Best-effort single error line to a connection being turned away.
fn shed(mut stream: TcpStream, err: &ServerError) {
    let _ = write_line(&mut stream, &error_line(err));
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

fn handle_connection(stream: TcpStream, service: &QueryService, limits: &ConnLimits) {
    if let Some(t) = limits.read_timeout {
        // A socket we cannot arm the timeout on would dodge the idle
        // governor; shed it instead of serving it untimed.
        if stream.set_read_timeout(Some(t)).is_err() {
            return;
        }
    }
    let peer_sessions = serve(stream, service, limits);
    // Connection gone: close every session it opened, cancelling in-flight
    // queries under them.
    for sid in peer_sessions {
        let _ = service.close_session(sid);
    }
}

/// Serve one connection until EOF, error, timeout, or an oversized frame;
/// returns the ids of sessions the connection opened and did not close
/// itself.
fn serve(stream: TcpStream, service: &QueryService, limits: &ConnLimits) -> Vec<u64> {
    let mut opened: Vec<u64> = Vec::new();
    let Ok(read_half) = stream.try_clone() else {
        return opened;
    };
    let mut writer = stream;
    let mut reader = BoundedLineReader::new(read_half, limits.max_frame_bytes);
    loop {
        // Injected read fault: the peer "vanishes" mid-protocol; close and
        // clean up exactly as a real half-open socket would force us to.
        if service.fault_server_read() {
            break;
        }
        let line = match reader.next_frame() {
            Frame::Line(line) => line,
            Frame::TooLarge => {
                let _ = write_line(
                    &mut writer,
                    &error_line(&ServerError::FrameTooLarge {
                        limit: limits.max_frame_bytes,
                    }),
                );
                break;
            }
            Frame::NotUtf8 => {
                let _ = write_line(
                    &mut writer,
                    &error_line(&ServerError::BadRequest("request line is not UTF-8".into())),
                );
                break;
            }
            Frame::TimedOut => {
                let _ = write_line(&mut writer, &error_line(&ServerError::IdleTimeout));
                break;
            }
            Frame::Eof | Frame::Io(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(service, &line);
        // Cheap protocol introspection to keep the per-connection session
        // list accurate without re-parsing: wire handlers are pure, so we
        // inspect request/response pairs here.
        if let Ok(req) = crate::json::parse(&line) {
            match req.get("op").and_then(crate::json::Json::as_str) {
                Some("open") => {
                    if let Ok(resp) = crate::json::parse(&response) {
                        if let Some(sid) = resp.get("session").and_then(crate::json::Json::as_int) {
                            opened.push(sid as u64);
                        }
                    }
                }
                Some("close") => {
                    if let Some(sid) = req.get("session").and_then(crate::json::Json::as_int) {
                        opened.retain(|s| *s != sid as u64);
                    }
                }
                _ => {}
            }
        }
        // Injected write fault: the response is lost as if the peer closed
        // mid-write; the connection tears down through the same path a
        // real broken pipe takes.
        if service.fault_server_write() {
            break;
        }
        if write_line(&mut writer, &response).is_err() {
            break;
        }
    }
    opened
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use mdj_core::EngineConfig;
    use mdj_storage::{DataType, Relation, Row, Schema, Value};
    use std::io::{BufRead, BufReader};

    fn boot_with(limits: ConnLimits) -> (Server, Arc<QueryService>) {
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Float)]);
        let rel = Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::Float(10.0)]),
                Row::from_values(vec![Value::Int(2), Value::Float(30.0)]),
            ],
        );
        let engine = EngineConfig::new().register_table("Sales", rel).build();
        let service = Arc::new(QueryService::new(engine, ServiceConfig::default()));
        let server = Server::bind_with("127.0.0.1:0", service.clone(), limits).unwrap();
        (server, service)
    }

    fn boot() -> (Server, Arc<QueryService>) {
        boot_with(ConnLimits::default())
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    }

    #[test]
    fn tcp_round_trip_and_session_cleanup_on_disconnect() {
        let (server, service) = boot();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        let resp = roundtrip(&mut conn, r#"{"op":"open"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let resp = roundtrip(
            &mut conn,
            r#"{"op":"query","session":1,"sql":"select cust, sum(sale) from Sales group by cust"}"#,
        );
        assert!(resp.contains("\"rows\":"), "{resp}");
        assert_eq!(service.session_count(), 1);
        drop(conn);
        // The connection thread notices EOF and closes the session.
        for _ in 0..100 {
            if service.session_count() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(service.session_count(), 0);
    }

    #[test]
    fn oversized_frame_is_rejected_with_a_typed_code() {
        let (server, service) = boot_with(ConnLimits {
            max_frame_bytes: 1024,
            ..ConnLimits::default()
        });
        let mut evil = TcpStream::connect(server.local_addr()).unwrap();
        let resp = roundtrip(&mut evil, &"x".repeat(8 << 10));
        assert!(resp.contains("\"code\":\"frame_too_large\""), "{resp}");
        // A concurrent well-behaved connection is unaffected.
        let mut good = TcpStream::connect(server.local_addr()).unwrap();
        let resp = roundtrip(&mut good, r#"{"op":"ping"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert_eq!(service.pool().reserved(), 0);
    }

    #[test]
    fn connection_cap_sheds_with_server_busy() {
        let (server, _service) = boot_with(ConnLimits {
            max_conns: 1,
            ..ConnLimits::default()
        });
        let mut first = TcpStream::connect(server.local_addr()).unwrap();
        let resp = roundtrip(&mut first, r#"{"op":"ping"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        // The second concurrent connection is shed before any request.
        let second = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(second.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"code\":\"server_busy\""), "{resp}");
        drop(first);
        // Once the first closes, capacity frees up again.
        for _ in 0..200 {
            if server.active_connections() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let mut third = TcpStream::connect(server.local_addr()).unwrap();
        let resp = roundtrip(&mut third, r#"{"op":"ping"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }

    #[test]
    fn idle_connection_is_shed_after_the_read_timeout() {
        let (server, service) = boot_with(ConnLimits {
            read_timeout: Some(Duration::from_millis(50)),
            ..ConnLimits::default()
        });
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        let resp = roundtrip(&mut conn, r#"{"op":"open"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert_eq!(service.session_count(), 1);
        // Stall: send nothing. The server sheds us and closes our session.
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"code\":\"idle_timeout\""), "{resp}");
        for _ in 0..100 {
            if service.session_count() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(service.session_count(), 0);
    }

    #[test]
    fn shutdown_drains_and_turns_new_connections_away() {
        let (server, service) = boot();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        let resp = roundtrip(&mut conn, r#"{"op":"ping"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let report = server.shutdown(Duration::from_millis(200));
        assert!(report.is_clean(), "{report:?}");
        // New connections are refused or reset once stopped; if one is
        // still accepted during teardown it gets `shutting_down`.
        if let Ok(late) = TcpStream::connect(server.local_addr()) {
            let mut reader = BufReader::new(late);
            let mut resp = String::new();
            if reader.read_line(&mut resp).is_ok() && !resp.is_empty() {
                assert!(resp.contains("\"code\":\"shutting_down\""), "{resp}");
            }
        }
        assert_eq!(service.pool().reserved(), 0);
    }

    #[test]
    fn bind_failure_is_a_typed_error() {
        let (server, _service) = boot();
        let engine = EngineConfig::new().build();
        let service = Arc::new(QueryService::new(engine, ServiceConfig::default()));
        let err = Server::bind(server.local_addr(), service)
            .err()
            .expect("rebinding a bound port must fail");
        assert_eq!(err.code(), "io_error");
    }
}
