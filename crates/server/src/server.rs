//! The TCP front end: thread-per-connection, line-delimited JSON.
//!
//! Each accepted connection gets its own OS thread reading request lines
//! and writing response lines (the [`wire`](crate::wire) protocol). All
//! connections share one [`QueryService`]; sessions are service-global, so
//! a `cancel` for a long-running query can arrive on a *different*
//! connection than the `execute` it targets — exactly how out-of-band
//! cancellation works in real wire protocols.
//!
//! Sessions opened on a connection are closed (and their running queries
//! cancelled) when the connection drops, so a dying client cannot leak
//! sessions or leave queries running.

use crate::service::QueryService;
use crate::wire::handle_line;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread;

/// A running TCP server. Dropping the handle does not stop the acceptor
/// thread (the process exits instead); tests connect, talk, disconnect.
pub struct Server {
    local_addr: std::net::SocketAddr,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// accepting connections on a background thread.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<QueryService>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        thread::Builder::new()
            .name("mdjd-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { continue };
                    let service = service.clone();
                    let _ = thread::Builder::new()
                        .name("mdjd-conn".into())
                        .spawn(move || handle_connection(stream, &service));
                }
            })?;
        Ok(Server { local_addr })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }
}

fn handle_connection(stream: TcpStream, service: &QueryService) {
    let peer_sessions = track_sessions(stream, service);
    // Connection gone: close every session it opened, cancelling in-flight
    // queries under them.
    for sid in peer_sessions {
        let _ = service.close_session(sid);
    }
}

/// Serve one connection until EOF/error; returns the ids of sessions the
/// connection opened and did not close itself.
fn track_sessions(stream: TcpStream, service: &QueryService) -> Vec<u64> {
    let mut opened: Vec<u64> = Vec::new();
    let Ok(read_half) = stream.try_clone() else {
        return opened;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(service, &line);
        // Cheap protocol introspection to keep the per-connection session
        // list accurate without re-parsing: wire handlers are pure, so we
        // inspect request/response pairs here.
        if let Ok(req) = crate::json::parse(&line) {
            match req.get("op").and_then(crate::json::Json::as_str) {
                Some("open") => {
                    if let Ok(resp) = crate::json::parse(&response) {
                        if let Some(sid) = resp.get("session").and_then(crate::json::Json::as_int) {
                            opened.push(sid as u64);
                        }
                    }
                }
                Some("close") => {
                    if let Some(sid) = req.get("session").and_then(crate::json::Json::as_int) {
                        opened.retain(|s| *s != sid as u64);
                    }
                }
                _ => {}
            }
        }
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
    opened
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use mdj_core::EngineConfig;
    use mdj_storage::{DataType, Relation, Row, Schema, Value};

    fn boot() -> (Server, Arc<QueryService>) {
        let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Float)]);
        let rel = Relation::from_rows(
            schema,
            vec![
                Row::from_values(vec![Value::Int(1), Value::Float(10.0)]),
                Row::from_values(vec![Value::Int(2), Value::Float(30.0)]),
            ],
        );
        let engine = EngineConfig::new().register_table("Sales", rel).build();
        let service = Arc::new(QueryService::new(engine, ServiceConfig::default()));
        let server = Server::bind("127.0.0.1:0", service.clone()).unwrap();
        (server, service)
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
        use std::io::{BufRead, BufReader, Write};
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    }

    #[test]
    fn tcp_round_trip_and_session_cleanup_on_disconnect() {
        let (server, service) = boot();
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        let resp = roundtrip(&mut conn, r#"{"op":"open"}"#);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let resp = roundtrip(
            &mut conn,
            r#"{"op":"query","session":1,"sql":"select cust, sum(sale) from Sales group by cust"}"#,
        );
        assert!(resp.contains("\"rows\":"), "{resp}");
        assert_eq!(service.session_count(), 1);
        drop(conn);
        // The connection thread notices EOF and closes the session.
        for _ in 0..100 {
            if service.session_count() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(service.session_count(), 0);
    }
}
