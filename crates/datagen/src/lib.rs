//! # mdj-datagen
//!
//! Seeded synthetic workload generators for the MD-join reproduction.
//!
//! The paper's running example tables are `Sales(cust, prod, day, month,
//! year, state, sale)` and `Payments(cust, day, month, year, amount)`
//! (Section 1 and Example 3.3). The authors evaluated on proprietary data; we
//! substitute seeded generators with controllable cardinalities and skew so
//! the benchmark harness can sweep the parameters that each optimization's
//! shape depends on (|R|, |B|, selectivity, dimension cardinalities).

pub mod config;
pub mod payments;
pub mod sales;
pub mod zipf;

pub use config::{PaymentsConfig, SalesConfig};
pub use payments::payments;
pub use sales::{sales, STATES};
pub use zipf::Zipf;
