//! A small Zipf(θ) sampler over `1..=n` via inverse-CDF lookup.
//!
//! Real sales data is skewed — a few products dominate. The benches use Zipf
//! skew to exercise the hash-probe and partitioning paths under realistic
//! key distributions. θ = 0 degenerates to uniform.

use rand::Rng;

/// Precomputed inverse-CDF Zipf sampler.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// cdf[i] = P(X <= i+1); monotone, last element 1.0.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `1..=n` with exponent `theta >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating-point drift.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Number of distinct values.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for c in counts {
            let rel = (c as f64 - 2000.0).abs() / 2000.0;
            assert!(rel < 0.15, "uniform bucket off: {c}");
        }
    }

    #[test]
    fn skewed_when_theta_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut first = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 1 {
                first += 1;
            }
        }
        // P(1) = 1/H_100 ≈ 0.192; allow slack.
        let p = first as f64 / n as f64;
        assert!(p > 0.15 && p < 0.25, "P(1) = {p}");
    }

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(7, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let s = z.sample(&mut rng);
            assert!((1..=7).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
