//! The `Sales` fact-table generator.

use crate::config::SalesConfig;
use crate::zipf::Zipf;
use mdj_storage::{DataType, Relation, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two-letter state codes used for the `state` dimension, listed with the
/// paper's tri-state area (Example 2.2) first so small `states` settings keep
/// NY/NJ/CT available.
pub const STATES: [&str; 50] = [
    "NY", "NJ", "CT", "CA", "IL", "TX", "FL", "PA", "OH", "GA", "NC", "MI", "WA", "AZ", "MA", "TN",
    "IN", "MO", "MD", "WI", "CO", "MN", "SC", "AL", "LA", "KY", "OR", "OK", "PR", "IA", "UT", "NV",
    "AR", "MS", "KS", "NM", "NE", "ID", "WV", "HI", "NH", "ME", "MT", "RI", "DE", "SD", "ND", "AK",
    "VT", "WY",
];

/// The `Sales` schema used across the reproduction:
/// `(cust, prod, day, month, year, state, sale)`.
pub fn sales_schema() -> Schema {
    Schema::from_pairs(&[
        ("cust", DataType::Int),
        ("prod", DataType::Int),
        ("day", DataType::Int),
        ("month", DataType::Int),
        ("year", DataType::Int),
        ("state", DataType::Str),
        ("sale", DataType::Float),
    ])
}

/// Generate a `Sales` relation. Deterministic given the config (seed
/// included): repeated calls produce identical relations.
pub fn sales(config: &SalesConfig) -> Relation {
    assert!(config.customers > 0, "need at least one customer");
    assert!(config.products > 0, "need at least one product");
    assert!(
        (1..=STATES.len()).contains(&config.states),
        "states must be in 1..=50"
    );
    assert!(config.year_min <= config.year_max, "bad year range");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let product_dist = Zipf::new(config.products, config.product_skew);
    let state_values: Vec<Value> = STATES[..config.states]
        .iter()
        .map(|s| Value::str(*s))
        .collect();

    let mut rel = Relation::empty(sales_schema());
    for _ in 0..config.rows {
        let cust = rng.gen_range(1..=config.customers as i64);
        let prod = product_dist.sample(&mut rng) as i64;
        let day = rng.gen_range(1..=28i64);
        let month = rng.gen_range(1..=12i64);
        let year = rng.gen_range(config.year_min..=config.year_max);
        let state = state_values[rng.gen_range(0..state_values.len())].clone();
        // Sale amounts: log-uniform-ish positive values, two decimals.
        let sale = (rng.gen_range(1.0f64..1000.0) * 100.0).round() / 100.0;
        rel.push_unchecked(Row::new(vec![
            Value::Int(cust),
            Value::Int(prod),
            Value::Int(day),
            Value::Int(month),
            Value::Int(year),
            state,
            Value::Float(sale),
        ]));
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let c = SalesConfig::default().with_rows(500);
        let a = sales(&c);
        let b = sales(&c);
        assert_eq!(a, b);
        let c2 = c.clone().with_seed(7);
        let d = sales(&c2);
        assert_ne!(a, d);
    }

    #[test]
    fn respects_cardinalities() {
        let c = SalesConfig::default()
            .with_rows(2000)
            .with_customers(5)
            .with_products(3)
            .with_states(2)
            .with_years(1997, 1997);
        let r = sales(&c);
        assert_eq!(r.len(), 2000);
        let custs = r.distinct_on(&["cust"]).unwrap();
        assert!(custs.len() <= 5);
        let prods = r.distinct_on(&["prod"]).unwrap();
        assert!(prods.len() <= 3);
        let states = r.distinct_on(&["state"]).unwrap();
        assert!(states.len() <= 2);
        for row in r.iter() {
            assert_eq!(row[4], Value::Int(1997));
            let m = row[3].as_int().unwrap();
            assert!((1..=12).contains(&m));
            assert!(row[6].as_float().unwrap() > 0.0);
        }
    }

    #[test]
    fn skew_concentrates_products() {
        let uniform = sales(&SalesConfig::default().with_rows(5000).with_products(100));
        let skewed = sales(
            &SalesConfig::default()
                .with_rows(5000)
                .with_products(100)
                .with_product_skew(1.2),
        );
        let count_prod1 = |r: &Relation| r.iter().filter(|row| row[1] == Value::Int(1)).count();
        assert!(count_prod1(&skewed) > 3 * count_prod1(&uniform).max(1));
    }

    #[test]
    fn tri_state_area_present_with_three_states() {
        let r = sales(&SalesConfig::default().with_rows(1000).with_states(3));
        let states: Vec<String> = r
            .distinct_on(&["state"])
            .unwrap()
            .iter()
            .map(|row| row[0].to_string())
            .collect();
        for s in ["NY", "NJ", "CT"] {
            assert!(states.contains(&s.to_string()), "missing {s}");
        }
    }
}
