//! Generator configurations.

/// Configuration for the `Sales` generator. Defaults mirror the paper's
/// examples: a handful of years around 1994–1999, US states, integer customer
/// and product ids.
#[derive(Debug, Clone)]
pub struct SalesConfig {
    /// Number of fact rows to generate.
    pub rows: usize,
    /// Distinct customers (`cust` ∈ 1..=customers).
    pub customers: usize,
    /// Distinct products (`prod` ∈ 1..=products).
    pub products: usize,
    /// Distinct states drawn from [`crate::sales::STATES`] (≤ 50).
    pub states: usize,
    /// Inclusive year range.
    pub year_min: i64,
    pub year_max: i64,
    /// Zipf exponent for product popularity (0 = uniform).
    pub product_skew: f64,
    /// PRNG seed: same config + seed ⇒ identical data.
    pub seed: u64,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            rows: 10_000,
            customers: 100,
            products: 50,
            states: 10,
            year_min: 1994,
            year_max: 1999,
            product_skew: 0.0,
            seed: 42,
        }
    }
}

impl SalesConfig {
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    pub fn with_customers(mut self, customers: usize) -> Self {
        self.customers = customers;
        self
    }

    pub fn with_products(mut self, products: usize) -> Self {
        self.products = products;
        self
    }

    pub fn with_states(mut self, states: usize) -> Self {
        self.states = states;
        self
    }

    pub fn with_years(mut self, min: i64, max: i64) -> Self {
        self.year_min = min;
        self.year_max = max;
        self
    }

    pub fn with_product_skew(mut self, theta: f64) -> Self {
        self.product_skew = theta;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Configuration for the `Payments` generator (Example 3.3's second fact
/// table).
#[derive(Debug, Clone)]
pub struct PaymentsConfig {
    pub rows: usize,
    pub customers: usize,
    pub year_min: i64,
    pub year_max: i64,
    pub seed: u64,
}

impl Default for PaymentsConfig {
    fn default() -> Self {
        PaymentsConfig {
            rows: 10_000,
            customers: 100,
            year_min: 1994,
            year_max: 1999,
            seed: 43,
        }
    }
}

impl PaymentsConfig {
    pub fn with_rows(mut self, rows: usize) -> Self {
        self.rows = rows;
        self
    }

    pub fn with_customers(mut self, customers: usize) -> Self {
        self.customers = customers;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = SalesConfig::default()
            .with_rows(5)
            .with_customers(2)
            .with_products(3)
            .with_states(4)
            .with_years(1990, 1991)
            .with_product_skew(1.0)
            .with_seed(7);
        assert_eq!(c.rows, 5);
        assert_eq!(c.customers, 2);
        assert_eq!(c.products, 3);
        assert_eq!(c.states, 4);
        assert_eq!((c.year_min, c.year_max), (1990, 1991));
        assert_eq!(c.product_skew, 1.0);
        assert_eq!(c.seed, 7);
    }
}
