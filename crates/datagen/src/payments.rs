//! The `Payments` fact-table generator (Example 3.3's second detail table).

use crate::config::PaymentsConfig;
use mdj_storage::{DataType, Relation, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `Payments(cust, day, month, year, amount)` — schema verbatim from
/// Example 3.3.
pub fn payments_schema() -> Schema {
    Schema::from_pairs(&[
        ("cust", DataType::Int),
        ("day", DataType::Int),
        ("month", DataType::Int),
        ("year", DataType::Int),
        ("amount", DataType::Float),
    ])
}

/// Generate a `Payments` relation, deterministic given the config.
pub fn payments(config: &PaymentsConfig) -> Relation {
    assert!(config.customers > 0, "need at least one customer");
    assert!(config.year_min <= config.year_max, "bad year range");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut rel = Relation::empty(payments_schema());
    for _ in 0..config.rows {
        let cust = rng.gen_range(1..=config.customers as i64);
        let day = rng.gen_range(1..=28i64);
        let month = rng.gen_range(1..=12i64);
        let year = rng.gen_range(config.year_min..=config.year_max);
        let amount = (rng.gen_range(1.0f64..2000.0) * 100.0).round() / 100.0;
        rel.push_unchecked(Row::new(vec![
            Value::Int(cust),
            Value::Int(day),
            Value::Int(month),
            Value::Int(year),
            Value::Float(amount),
        ]));
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let c = PaymentsConfig::default().with_rows(300);
        let a = payments(&c);
        assert_eq!(a.len(), 300);
        assert_eq!(a, payments(&c));
        assert_eq!(
            a.schema().names(),
            vec!["cust", "day", "month", "year", "amount"]
        );
    }

    #[test]
    fn customers_within_range() {
        let c = PaymentsConfig::default().with_rows(500).with_customers(7);
        let p = payments(&c);
        for row in p.iter() {
            let cust = row[0].as_int().unwrap();
            assert!((1..=7).contains(&cust));
        }
    }
}
