//! Overflow-unification properties: the scalar interpreter (`AggState`) and
//! the chunked/SIMD kernels (`KernelState`) must agree *exactly* on `i64`
//! overflow — same typed error on the same inputs, same bits when no prefix
//! overflows. Before this suite the kernels wrapped silently where the
//! scalar path would have panicked in debug builds.

use mdj_agg::builtins::{Count, Sum};
use mdj_agg::kernels::{KernelKind, CHUNK};
use mdj_agg::{AggError, Aggregate};
use mdj_storage::Value;
use proptest::prelude::*;

/// Fold `vals` through the scalar builtin, stopping at the first error.
fn scalar_sum(vals: &[Option<i64>]) -> Result<Value, AggError> {
    let mut s = Sum.init();
    for v in vals {
        let v = v.map_or(Value::Null, Value::Int);
        s.update(&v)?;
    }
    Ok(s.finalize())
}

/// Fold the same values through the chunked kernel in one batch call.
fn kernel_sum(vals: &[Option<i64>]) -> Result<Value, AggError> {
    let ints: Vec<i64> = vals.iter().map(|v| v.unwrap_or(0)).collect();
    let nulls: Vec<bool> = vals.iter().map(Option::is_none).collect();
    let sel: Vec<u32> = (0..vals.len() as u32).collect();
    let mut k = KernelKind::Sum.init();
    k.update_ints(&ints, &nulls, &sel)?;
    Ok(k.finalize())
}

/// Values biased hard toward the overflow boundary: ±i64::MAX, ±(i64::MAX-1),
/// halves of the range, small offsets, and NULLs.
fn edge_value() -> impl Strategy<Value = Option<i64>> {
    prop_oneof![
        3 => prop_oneof![
            Just(i64::MAX),
            Just(i64::MIN),
            Just(i64::MAX - 1),
            Just(i64::MIN + 1),
            Just(i64::MAX / 2),
            Just(i64::MIN / 2),
        ].prop_map(Some),
        2 => (-16i64..=16).prop_map(Some),
        1 => Just(None),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Serial and chunked sum agree on verdict (overflow error vs success)
    /// and, on success, on the exact finalized bits.
    #[test]
    fn sum_overflow_verdict_and_bits_match(vals in proptest::collection::vec(edge_value(), 0..(2 * CHUNK))) {
        let a = scalar_sum(&vals);
        let b = kernel_sum(&vals);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(AggError::Overflow { function: fa }), Err(AggError::Overflow { function: fb })) => {
                prop_assert_eq!(fa, fb);
            }
            (a, b) => prop_assert!(false, "verdicts diverged: scalar={a:?} kernel={b:?}"),
        }
    }

    /// Splitting the selection into arbitrary batch boundaries never changes
    /// the verdict or the bits (the guard's fast/checked split is invisible).
    #[test]
    fn sum_batch_splits_are_invisible(
        vals in proptest::collection::vec(edge_value(), 1..(2 * CHUNK)),
        split in 1usize..(2 * CHUNK),
    ) {
        let ints: Vec<i64> = vals.iter().map(|v| v.unwrap_or(0)).collect();
        let nulls: Vec<bool> = vals.iter().map(Option::is_none).collect();
        let sel: Vec<u32> = (0..vals.len() as u32).collect();
        let mut whole = KernelKind::Sum.init();
        let whole_res = whole.update_ints(&ints, &nulls, &sel);
        let mut split_state = KernelKind::Sum.init();
        let mut split_res = Ok(());
        for chunk in sel.chunks(split.min(sel.len())) {
            split_res = split_state.update_ints(&ints, &nulls, chunk);
            if split_res.is_err() {
                break;
            }
        }
        prop_assert_eq!(whole_res.is_err(), split_res.is_err());
        if whole_res.is_ok() {
            prop_assert_eq!(whole.finalize(), split_state.finalize());
        }
    }
}

#[test]
fn prefix_overflow_errors_even_when_total_is_in_range() {
    // [MAX, 1, -2] sums to MAX-1 but the prefix MAX+1 overflows: both paths
    // must reject it identically.
    let vals = vec![Some(i64::MAX), Some(1), Some(-2)];
    assert!(matches!(
        scalar_sum(&vals),
        Err(AggError::Overflow { function: "sum" })
    ));
    assert!(matches!(
        kernel_sum(&vals),
        Err(AggError::Overflow { function: "sum" })
    ));
}

#[test]
fn extreme_but_safe_walk_is_exact_on_both_paths() {
    // Prefixes touch MAX and 0 without ever leaving the range.
    let vals = vec![Some(i64::MAX), Some(-i64::MAX), Some(i64::MAX - 5), Some(5)];
    assert_eq!(scalar_sum(&vals).unwrap(), Value::Int(i64::MAX));
    assert_eq!(kernel_sum(&vals).unwrap(), Value::Int(i64::MAX));
}

#[test]
fn count_overflow_is_typed() {
    // Drive the kernel accumulator to the boundary directly: i64::MAX - 2
    // matched tuples, then 3 more overflows.
    let mut k = KernelKind::Count { star: true }.init();
    k.update_star(i64::MAX as u64 - 2).unwrap();
    assert!(matches!(
        k.update_star(3),
        Err(AggError::Overflow { function: "count" })
    ));
    // u64 run counts beyond i64 range are rejected up front.
    let mut k2 = KernelKind::Count { star: true }.init();
    assert!(matches!(
        k2.update_star(u64::MAX),
        Err(AggError::Overflow { function: "count" })
    ));
    assert_eq!(
        AggError::Overflow { function: "count" }.to_string(),
        "aggregate `count` overflowed 64-bit integer range"
    );
    // The ordinary path still counts (Count stays importable and typed).
    let mut c = Count { star: true }.init();
    c.update(&Value::Null).unwrap();
    assert_eq!(c.finalize(), Value::Int(1));
}
