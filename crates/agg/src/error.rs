//! Aggregate errors.

use std::fmt;

pub type Result<T, E = AggError> = std::result::Result<T, E>;

/// Errors from aggregate construction and state manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggError {
    /// Unknown aggregate function name.
    UnknownFunction(String),
    /// The aggregate received a value it cannot consume (e.g. `sum` over a
    /// string).
    BadInput { function: String, got: String },
    /// `merge` was called with a state of a different concrete type.
    MergeTypeMismatch { expected: &'static str },
    /// The aggregate spec string could not be parsed.
    BadSpec(String),
    /// Roll-up adaptation requested for a non-distributive aggregate
    /// (Theorem 4.5 covers distributive aggregates only).
    NotRollupable(String),
    /// `i64` accumulation overflowed (`sum`/`count`). Raised identically by
    /// the scalar interpreter and the chunked/SIMD kernels so the two paths
    /// cannot diverge on extreme inputs (wrap vs debug-panic).
    Overflow { function: &'static str },
}

impl fmt::Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::UnknownFunction(name) => write!(f, "unknown aggregate function `{name}`"),
            AggError::BadInput { function, got } => {
                write!(f, "aggregate `{function}` cannot consume a {got} value")
            }
            AggError::MergeTypeMismatch { expected } => {
                write!(f, "cannot merge aggregate states: expected {expected}")
            }
            AggError::BadSpec(s) => write!(f, "cannot parse aggregate spec `{s}`"),
            AggError::NotRollupable(name) => write!(
                f,
                "aggregate `{name}` is not distributive; Theorem 4.5 roll-up does not apply"
            ),
            AggError::Overflow { function } => {
                write!(f, "aggregate `{function}` overflowed 64-bit integer range")
            }
        }
    }
}

impl std::error::Error for AggError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_function() {
        assert!(AggError::UnknownFunction("xyz".into())
            .to_string()
            .contains("xyz"));
        assert!(AggError::NotRollupable("median".into())
            .to_string()
            .contains("median"));
    }
}
