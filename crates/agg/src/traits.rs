//! The `Aggregate` / `AggState` traits: the UDAF surface of the framework.

use crate::error::Result;
use mdj_storage::{DataType, Value};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// Gray et al.'s aggregate classification, as used throughout Section 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggClass {
    /// Partial results over a partition combine exactly into the total with
    /// the same function (count, sum, min, max).
    Distributive,
    /// A bounded intermediate state combines exactly (avg via (sum, count)).
    Algebraic,
    /// State is unbounded in general (median, mode, count-distinct).
    Holistic,
}

/// Per-group mutable state of one aggregate: the "scratchpad" of the UDAF
/// literature the paper cites.
pub trait AggState: fmt::Debug + Send {
    /// Fold one detail value into the state. NULL handling is per-aggregate
    /// (SQL rules: every builtin except `count(*)` skips NULL).
    fn update(&mut self, v: &Value) -> Result<()>;

    /// Combine another state of the same concrete type into `self`
    /// (Theorem 4.1: partition-parallel partial states are merged).
    fn merge(&mut self, other: &dyn AggState) -> Result<()>;

    /// Report the aggregate's current value. Empty-input semantics follow SQL
    /// (`count` → 0, everything else → NULL), which gives the MD-join its
    /// outer-join behaviour: base rows matching no detail tuple still appear,
    /// with NULL aggregates.
    fn finalize(&self) -> Value;

    /// Downcasting hook for `merge`.
    fn as_any(&self) -> &dyn Any;

    /// Bytes of heap memory held by this state *beyond* the fixed per-state
    /// estimate the governor charges up front. Holistic states (median, mode,
    /// count-distinct) override this so executors can meter actual growth
    /// against the memory budget; bounded states keep the default `0`.
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// An aggregate function (factory for [`AggState`]s). Implement this trait to
/// add a user-defined aggregate; register it in a [`crate::Registry`].
pub trait Aggregate: fmt::Debug + Send + Sync {
    /// Canonical lower-case name (`"sum"`, `"avg"`, …).
    fn name(&self) -> &str;

    /// Classification, which gates Theorem 4.5 (distributive only) and lets a
    /// planner reason about memory (holistic states are unbounded).
    fn class(&self) -> AggClass;

    /// Fresh state for a new group.
    fn init(&self) -> Box<dyn AggState>;

    /// Output type given the input column type.
    fn output_type(&self, input: DataType) -> DataType;

    /// Theorem 4.5 adaptation: the function `l'` applied over this aggregate's
    /// *finalized output column* when rolling a finer cuboid up into a coarser
    /// one ("a count in l becomes a sum in l'"). `None` for non-distributive
    /// aggregates.
    fn rollup_name(&self) -> Option<&'static str> {
        None
    }

    /// The typed kernel this aggregate maps to in the vectorized executor, or
    /// `None` to use the scalar [`AggState`] fallback. Only the builtins
    /// override this; the default keeps user-defined aggregates (even ones
    /// registered under a builtin's name) on the always-correct scalar path.
    fn kernel(&self) -> Option<crate::kernels::KernelKind> {
        None
    }
}

/// Shared handle to an aggregate function.
pub type AggRef = Arc<dyn Aggregate>;

/// Helper for implementing `merge`: downcast `other` to `T` or fail.
pub fn downcast_state<'a, T: 'static>(
    other: &'a dyn AggState,
    expected: &'static str,
) -> Result<&'a T> {
    other
        .as_any()
        .downcast_ref::<T>()
        .ok_or(crate::AggError::MergeTypeMismatch { expected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::{Count, Sum};

    #[test]
    fn downcast_state_rejects_wrong_type() {
        let sum_state = Sum.init();
        let count_state = Count { star: true }.init();
        let err = downcast_state::<crate::builtins::SumState>(count_state.as_ref(), "SumState");
        assert!(err.is_err());
        let ok = downcast_state::<crate::builtins::SumState>(sum_state.as_ref(), "SumState");
        assert!(ok.is_ok());
    }
}
