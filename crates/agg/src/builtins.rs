//! Built-in aggregate functions: the distributive and algebraic core.

use crate::error::{AggError, Result};
use crate::kernels::KernelKind;
use crate::traits::{downcast_state, AggClass, AggState, Aggregate};
use mdj_storage::{DataType, Value};
use std::any::Any;

fn bad_input(function: &str, v: &Value) -> AggError {
    AggError::BadInput {
        function: function.to_string(),
        got: v.type_name().to_string(),
    }
}

/// Checked `i64` accumulation shared by `sum`/`count` updates and merges:
/// overflow is a typed error, never a wrap (release) or panic (debug), so the
/// scalar interpreter agrees with the chunked kernels on extreme inputs.
#[inline]
pub(crate) fn checked_acc(function: &'static str, acc: i64, v: i64) -> Result<i64> {
    acc.checked_add(v).ok_or(AggError::Overflow { function })
}

// ---------------------------------------------------------------- count

/// `count(*)` (counts every matching tuple) or `count(col)` (counts non-NULL
/// values). Distributive; rolls up as `sum` (Theorem 4.5's worked example).
#[derive(Debug, Clone, Copy)]
pub struct Count {
    /// True for `count(*)`.
    pub star: bool,
}

#[derive(Debug, Default)]
pub struct CountState {
    star: bool,
    n: i64,
}

impl AggState for CountState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if self.star || !v.is_null() {
            self.n = checked_acc("count", self.n, 1)?;
        }
        Ok(())
    }

    fn merge(&mut self, other: &dyn AggState) -> Result<()> {
        let o = downcast_state::<CountState>(other, "CountState")?;
        self.n = checked_acc("count", self.n, o.n)?;
        Ok(())
    }

    fn finalize(&self) -> Value {
        Value::Int(self.n)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Aggregate for Count {
    fn name(&self) -> &str {
        if self.star {
            "count(*)"
        } else {
            "count"
        }
    }

    fn class(&self) -> AggClass {
        AggClass::Distributive
    }

    fn init(&self) -> Box<dyn AggState> {
        Box::new(CountState {
            star: self.star,
            n: 0,
        })
    }

    fn output_type(&self, _input: DataType) -> DataType {
        DataType::Int
    }

    fn rollup_name(&self) -> Option<&'static str> {
        Some("sum")
    }

    fn kernel(&self) -> Option<KernelKind> {
        Some(KernelKind::Count { star: self.star })
    }
}

// ---------------------------------------------------------------- sum

/// `sum(col)`. Integer inputs keep an exact integer total until a float
/// appears. Empty input → NULL (SQL semantics: preserves the MD-join's
/// outer-join behaviour).
#[derive(Debug, Clone, Copy)]
pub struct Sum;

#[derive(Debug, Default)]
pub struct SumState {
    int_sum: i64,
    float_sum: f64,
    any_float: bool,
    seen: u64,
}

impl AggState for SumState {
    fn update(&mut self, v: &Value) -> Result<()> {
        match v {
            Value::Null => Ok(()),
            Value::Int(i) => {
                self.int_sum = checked_acc("sum", self.int_sum, *i)?;
                self.seen += 1;
                Ok(())
            }
            Value::Float(f) => {
                self.float_sum += f;
                self.any_float = true;
                self.seen += 1;
                Ok(())
            }
            other => Err(bad_input("sum", other)),
        }
    }

    fn merge(&mut self, other: &dyn AggState) -> Result<()> {
        let o = downcast_state::<SumState>(other, "SumState")?;
        self.int_sum = checked_acc("sum", self.int_sum, o.int_sum)?;
        self.float_sum += o.float_sum;
        self.any_float |= o.any_float;
        self.seen += o.seen;
        Ok(())
    }

    fn finalize(&self) -> Value {
        if self.seen == 0 {
            Value::Null
        } else if self.any_float {
            Value::Float(self.int_sum as f64 + self.float_sum)
        } else {
            Value::Int(self.int_sum)
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Aggregate for Sum {
    fn name(&self) -> &str {
        "sum"
    }

    fn class(&self) -> AggClass {
        AggClass::Distributive
    }

    fn init(&self) -> Box<dyn AggState> {
        Box::<SumState>::default()
    }

    fn output_type(&self, input: DataType) -> DataType {
        input
    }

    fn rollup_name(&self) -> Option<&'static str> {
        Some("sum")
    }

    fn kernel(&self) -> Option<KernelKind> {
        Some(KernelKind::Sum)
    }
}

// ---------------------------------------------------------------- avg

/// `avg(col)`. Algebraic: state is (sum, count).
#[derive(Debug, Clone, Copy)]
pub struct Avg;

#[derive(Debug, Default)]
pub struct AvgState {
    sum: f64,
    n: u64,
}

impl AggState for AvgState {
    fn update(&mut self, v: &Value) -> Result<()> {
        match v {
            Value::Null => Ok(()),
            _ => {
                let f = v.as_float().ok_or_else(|| bad_input("avg", v))?;
                self.sum += f;
                self.n += 1;
                Ok(())
            }
        }
    }

    fn merge(&mut self, other: &dyn AggState) -> Result<()> {
        let o = downcast_state::<AvgState>(other, "AvgState")?;
        self.sum += o.sum;
        self.n += o.n;
        Ok(())
    }

    fn finalize(&self) -> Value {
        if self.n == 0 {
            Value::Null
        } else {
            Value::Float(self.sum / self.n as f64)
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Aggregate for Avg {
    fn name(&self) -> &str {
        "avg"
    }

    fn class(&self) -> AggClass {
        AggClass::Algebraic
    }

    fn init(&self) -> Box<dyn AggState> {
        Box::<AvgState>::default()
    }

    fn output_type(&self, _input: DataType) -> DataType {
        DataType::Float
    }

    fn kernel(&self) -> Option<KernelKind> {
        Some(KernelKind::Avg)
    }
}

// ---------------------------------------------------------------- min / max

/// `min(col)` / `max(col)` over the total order of [`Value`] (numerics compare
/// numerically across Int/Float). Distributive.
#[derive(Debug, Clone, Copy)]
pub struct MinMax {
    /// True for `max`, false for `min`.
    pub is_max: bool,
}

#[derive(Debug)]
pub struct MinMaxState {
    is_max: bool,
    best: Option<Value>,
}

impl AggState for MinMaxState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        let better = match &self.best {
            None => true,
            Some(cur) => {
                if self.is_max {
                    v > cur
                } else {
                    v < cur
                }
            }
        };
        if better {
            self.best = Some(v.clone());
        }
        Ok(())
    }

    fn merge(&mut self, other: &dyn AggState) -> Result<()> {
        let o = downcast_state::<MinMaxState>(other, "MinMaxState")?;
        if let Some(v) = &o.best {
            self.update(v)?;
        }
        Ok(())
    }

    fn finalize(&self) -> Value {
        self.best.clone().unwrap_or(Value::Null)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Aggregate for MinMax {
    fn name(&self) -> &str {
        if self.is_max {
            "max"
        } else {
            "min"
        }
    }

    fn class(&self) -> AggClass {
        AggClass::Distributive
    }

    fn init(&self) -> Box<dyn AggState> {
        Box::new(MinMaxState {
            is_max: self.is_max,
            best: None,
        })
    }

    fn output_type(&self, input: DataType) -> DataType {
        input
    }

    fn rollup_name(&self) -> Option<&'static str> {
        Some(if self.is_max { "max" } else { "min" })
    }

    fn kernel(&self) -> Option<KernelKind> {
        Some(if self.is_max {
            KernelKind::Max
        } else {
            KernelKind::Min
        })
    }
}

// ---------------------------------------------------------------- first / last

/// `first(col)` / `last(col)`: the first / most recent non-NULL value in
/// *scan order*. Order-dependent by design (useful with sorted detail
/// relations, e.g. PIPESORT pipelines); merge concatenates in partition
/// order, which matches the partitioned evaluators' chunk order.
#[derive(Debug, Clone, Copy)]
pub struct FirstLast {
    /// True for `last`, false for `first`.
    pub is_last: bool,
}

#[derive(Debug)]
pub struct FirstLastState {
    is_last: bool,
    value: Option<Value>,
}

impl AggState for FirstLastState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        if self.is_last || self.value.is_none() {
            self.value = Some(v.clone());
        }
        Ok(())
    }

    fn merge(&mut self, other: &dyn AggState) -> Result<()> {
        let o = downcast_state::<FirstLastState>(other, "FirstLastState")?;
        if let Some(v) = &o.value {
            if self.is_last || self.value.is_none() {
                self.value = Some(v.clone());
            }
        }
        Ok(())
    }

    fn finalize(&self) -> Value {
        self.value.clone().unwrap_or(Value::Null)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Aggregate for FirstLast {
    fn name(&self) -> &str {
        if self.is_last {
            "last"
        } else {
            "first"
        }
    }

    fn class(&self) -> AggClass {
        AggClass::Distributive
    }

    fn init(&self) -> Box<dyn AggState> {
        Box::new(FirstLastState {
            is_last: self.is_last,
            value: None,
        })
    }

    fn output_type(&self, input: DataType) -> DataType {
        input
    }
}

// ---------------------------------------------------------------- variance / stddev

/// Population variance / standard deviation. Algebraic via the mergeable
/// (count, mean, M2) formulation (Chan–Golub–LeVeque).
#[derive(Debug, Clone, Copy)]
pub struct Variance {
    /// True → report sqrt (stddev_pop); false → report variance_pop.
    pub sqrt: bool,
}

#[derive(Debug, Default)]
pub struct VarianceState {
    sqrt: bool,
    n: u64,
    mean: f64,
    m2: f64,
}

impl AggState for VarianceState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        let x = v.as_float().ok_or_else(|| bad_input("var", v))?;
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        Ok(())
    }

    fn merge(&mut self, other: &dyn AggState) -> Result<()> {
        let o = downcast_state::<VarianceState>(other, "VarianceState")?;
        if o.n == 0 {
            return Ok(());
        }
        if self.n == 0 {
            self.n = o.n;
            self.mean = o.mean;
            self.m2 = o.m2;
            return Ok(());
        }
        let (na, nb) = (self.n as f64, o.n as f64);
        let delta = o.mean - self.mean;
        let n = na + nb;
        self.m2 += o.m2 + delta * delta * na * nb / n;
        self.mean += delta * nb / n;
        self.n += o.n;
        Ok(())
    }

    fn finalize(&self) -> Value {
        if self.n == 0 {
            return Value::Null;
        }
        let var = self.m2 / self.n as f64;
        Value::Float(if self.sqrt { var.sqrt() } else { var })
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Aggregate for Variance {
    fn name(&self) -> &str {
        if self.sqrt {
            "stddev"
        } else {
            "var"
        }
    }

    fn class(&self) -> AggClass {
        AggClass::Algebraic
    }

    fn init(&self) -> Box<dyn AggState> {
        Box::new(VarianceState {
            sqrt: self.sqrt,
            ..Default::default()
        })
    }

    fn output_type(&self, _input: DataType) -> DataType {
        DataType::Float
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(agg: &dyn Aggregate, vals: &[Value]) -> Value {
        let mut s = agg.init();
        for v in vals {
            s.update(v).unwrap();
        }
        s.finalize()
    }

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn count_star_vs_count_col() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(&Count { star: true }, &vals), Value::Int(3));
        assert_eq!(run(&Count { star: false }, &vals), Value::Int(2));
    }

    #[test]
    fn sum_stays_integer_until_float() {
        assert_eq!(run(&Sum, &ints(&[1, 2, 3])), Value::Int(6));
        let vals = vec![Value::Int(1), Value::Float(0.5)];
        assert_eq!(run(&Sum, &vals), Value::Float(1.5));
    }

    #[test]
    fn sum_of_empty_or_all_null_is_null() {
        assert_eq!(run(&Sum, &[]), Value::Null);
        assert_eq!(run(&Sum, &[Value::Null, Value::Null]), Value::Null);
    }

    #[test]
    fn sum_rejects_strings() {
        let mut s = Sum.init();
        assert!(s.update(&Value::str("x")).is_err());
    }

    #[test]
    fn avg_ignores_nulls() {
        let vals = vec![Value::Int(2), Value::Null, Value::Int(4)];
        assert_eq!(run(&Avg, &vals), Value::Float(3.0));
        assert_eq!(run(&Avg, &[]), Value::Null);
    }

    #[test]
    fn min_max_over_mixed_numerics_and_strings() {
        let vals = vec![Value::Int(3), Value::Float(2.5), Value::Int(7)];
        assert_eq!(run(&MinMax { is_max: false }, &vals), Value::Float(2.5));
        assert_eq!(run(&MinMax { is_max: true }, &vals), Value::Int(7));
        let names = vec![Value::str("NY"), Value::str("CA"), Value::str("NJ")];
        assert_eq!(run(&MinMax { is_max: false }, &names), Value::str("CA"));
    }

    #[test]
    fn variance_and_stddev() {
        let vals = ints(&[2, 4, 4, 4, 5, 5, 7, 9]);
        assert_eq!(run(&Variance { sqrt: false }, &vals), Value::Float(4.0));
        assert_eq!(run(&Variance { sqrt: true }, &vals), Value::Float(2.0));
    }

    #[test]
    fn first_last_follow_scan_order() {
        let vals = vec![
            Value::Null,
            Value::Int(7),
            Value::Int(9),
            Value::Null,
            Value::Int(3),
        ];
        assert_eq!(run(&FirstLast { is_last: false }, &vals), Value::Int(7));
        assert_eq!(run(&FirstLast { is_last: true }, &vals), Value::Int(3));
        assert_eq!(run(&FirstLast { is_last: false }, &[]), Value::Null);
    }

    #[test]
    fn first_last_merge_respects_partition_order() {
        let mut a = FirstLast { is_last: true }.init();
        a.update(&Value::Int(1)).unwrap();
        let mut b = FirstLast { is_last: true }.init();
        b.update(&Value::Int(2)).unwrap();
        a.merge(b.as_ref()).unwrap();
        assert_eq!(a.finalize(), Value::Int(2));
        let mut a = FirstLast { is_last: false }.init();
        a.update(&Value::Int(1)).unwrap();
        let mut b = FirstLast { is_last: false }.init();
        b.update(&Value::Int(2)).unwrap();
        a.merge(b.as_ref()).unwrap();
        assert_eq!(a.finalize(), Value::Int(1));
        // Empty-left merge adopts the right value.
        let mut a = FirstLast { is_last: false }.init();
        let mut b = FirstLast { is_last: false }.init();
        b.update(&Value::Int(5)).unwrap();
        a.merge(b.as_ref()).unwrap();
        assert_eq!(a.finalize(), Value::Int(5));
    }

    #[test]
    fn merge_equals_sequential_for_each_builtin() {
        let aggs: Vec<Box<dyn Aggregate>> = vec![
            Box::new(Count { star: false }),
            Box::new(Sum),
            Box::new(Avg),
            Box::new(MinMax { is_max: false }),
            Box::new(MinMax { is_max: true }),
            Box::new(Variance { sqrt: false }),
        ];
        let left = ints(&[1, 5, 3]);
        let right = ints(&[10, 2]);
        for agg in &aggs {
            let mut a = agg.init();
            for v in &left {
                a.update(v).unwrap();
            }
            let mut b = agg.init();
            for v in &right {
                b.update(v).unwrap();
            }
            a.merge(b.as_ref()).unwrap();
            let all: Vec<Value> = left.iter().chain(&right).cloned().collect();
            let expect = run(agg.as_ref(), &all);
            let got = a.finalize();
            match (&expect, &got) {
                (Value::Float(x), Value::Float(y)) => {
                    assert!((x - y).abs() < 1e-9, "{}: {x} vs {y}", agg.name())
                }
                _ => assert_eq!(expect, got, "{}", agg.name()),
            }
        }
    }

    #[test]
    fn merge_into_empty_state() {
        let mut a = Variance { sqrt: false }.init();
        let mut b = Variance { sqrt: false }.init();
        for v in ints(&[1, 2, 3]) {
            b.update(&v).unwrap();
        }
        a.merge(b.as_ref()).unwrap();
        let expect = run(&Variance { sqrt: false }, &ints(&[1, 2, 3]));
        assert_eq!(a.finalize(), expect);
    }

    #[test]
    fn rollup_names() {
        assert_eq!(Count { star: true }.rollup_name(), Some("sum"));
        assert_eq!(Sum.rollup_name(), Some("sum"));
        assert_eq!(MinMax { is_max: true }.rollup_name(), Some("max"));
        assert_eq!(Avg.rollup_name(), None);
    }

    #[test]
    fn merge_wrong_type_fails() {
        let mut a = Sum.init();
        let b = Avg.init();
        assert!(a.merge(b.as_ref()).is_err());
    }
}
