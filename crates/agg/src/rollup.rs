//! Theorem 4.5's aggregate adaptation `l → l'`.
//!
//! When a coarser cuboid is computed from a finer cuboid instead of from the
//! detail table, each distributive aggregate `f(c)` in `l` is replaced by an
//! aggregate over the finer cuboid's *output column*: "a count in l becomes a
//! sum in l'", a sum stays a sum, min stays min, max stays max. Aggregates
//! without a roll-up form (avg, holistic) make the transformation
//! inapplicable, which is exactly the theorem's "list of distributive
//! aggregates" precondition.

use crate::error::{AggError, Result};
use crate::registry::Registry;
use crate::spec::{AggInput, AggSpec};

/// Whether every aggregate in `l` has a roll-up form (Theorem 4.5
/// precondition).
pub fn is_rollupable(specs: &[AggSpec], registry: &Registry) -> bool {
    specs.iter().all(|s| {
        matches!(
            registry.get(&s.function).map(|a| a.rollup_name()),
            Ok(Some(_))
        )
    })
}

/// Compute `l'`: for each spec `f(c) [as out]`, produce
/// `rollup_f(out) as out`, reading the finer cuboid's output column and
/// writing the same output column name, so the coarser cuboid's schema is
/// identical to a direct computation.
pub fn rollup_specs(specs: &[AggSpec], registry: &Registry) -> Result<Vec<AggSpec>> {
    specs
        .iter()
        .map(|s| {
            let agg = registry.get(&s.function)?;
            let rollup = agg
                .rollup_name()
                .ok_or_else(|| AggError::NotRollupable(s.function.clone()))?;
            let out = s.output_name();
            Ok(AggSpec::on_column(rollup, out.clone()).with_alias(out))
        })
        .collect()
}

/// Sanity check used by tests and the optimizer: a rolled-up spec list always
/// reads the columns the original list writes.
pub fn rollup_reads_match_writes(original: &[AggSpec], rolled: &[AggSpec]) -> bool {
    original.len() == rolled.len()
        && original.iter().zip(rolled).all(|(o, r)| {
            r.input == AggInput::Column(o.output_name()) && r.output_name() == o.output_name()
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_becomes_sum() {
        let reg = Registry::standard();
        let l = vec![AggSpec::count_star(), AggSpec::on_column("sum", "sale")];
        let l2 = rollup_specs(&l, &reg).unwrap();
        assert_eq!(l2[0].function, "sum");
        assert_eq!(l2[0].input, AggInput::Column("count_star".into()));
        assert_eq!(l2[0].output_name(), "count_star");
        assert_eq!(l2[1].function, "sum");
        assert_eq!(l2[1].input, AggInput::Column("sum_sale".into()));
        assert!(rollup_reads_match_writes(&l, &l2));
    }

    #[test]
    fn min_max_roll_up_as_themselves() {
        let reg = Registry::standard();
        let l = vec![
            AggSpec::on_column("min", "sale"),
            AggSpec::on_column("max", "sale"),
        ];
        let l2 = rollup_specs(&l, &reg).unwrap();
        assert_eq!(l2[0].function, "min");
        assert_eq!(l2[1].function, "max");
    }

    #[test]
    fn avg_and_holistic_are_rejected() {
        let reg = Registry::standard();
        for func in ["avg", "median", "mode", "count_distinct"] {
            let l = vec![AggSpec::on_column(func, "sale")];
            assert!(!is_rollupable(&l, &reg), "{func}");
            assert!(matches!(
                rollup_specs(&l, &reg),
                Err(AggError::NotRollupable(_))
            ));
        }
    }

    #[test]
    fn aliased_specs_keep_their_alias_through_rollup() {
        let reg = Registry::standard();
        let l = vec![AggSpec::on_column("sum", "sale").with_alias("total")];
        let l2 = rollup_specs(&l, &reg).unwrap();
        assert_eq!(l2[0].input, AggInput::Column("total".into()));
        assert_eq!(l2[0].output_name(), "total");
    }

    #[test]
    fn double_rollup_is_stable() {
        // Rolling up twice (three-level cuboid chain) keeps reading/writing
        // the same column names.
        let reg = Registry::standard();
        let l = vec![AggSpec::count_star()];
        let l2 = rollup_specs(&l, &reg).unwrap();
        let l3 = rollup_specs(&l2, &reg).unwrap();
        assert_eq!(l2, l3);
    }
}
