//! Aggregate-function registry: name → implementation, with UDAF support.

use crate::builtins::{Avg, Count, FirstLast, MinMax, Sum, Variance};
use crate::error::{AggError, Result};
use crate::holistic::{ApproxMedian, CountDistinct, Median, Mode};
use crate::traits::AggRef;
use std::collections::HashMap;
use std::sync::Arc;

/// A registry of aggregate functions. Clone-cheap (functions are shared).
///
/// `Registry::standard()` holds the builtins; user-defined aggregates
/// (the UDAF path of [JM98, WZ00a] the paper discusses) are added with
/// [`Registry::register`].
#[derive(Debug, Clone)]
pub struct Registry {
    by_name: HashMap<String, AggRef>,
}

impl Registry {
    /// An empty registry.
    pub fn empty() -> Self {
        Registry {
            by_name: HashMap::new(),
        }
    }

    /// The standard registry: count, count(*), sum, avg, min, max, var,
    /// stddev, first, last, median, approx_median, mode, count_distinct.
    pub fn standard() -> Self {
        let mut r = Registry::empty();
        r.register(Arc::new(Count { star: false }));
        r.register_as("count(*)", Arc::new(Count { star: true }));
        r.register(Arc::new(Sum));
        r.register(Arc::new(Avg));
        r.register(Arc::new(MinMax { is_max: false }));
        r.register(Arc::new(MinMax { is_max: true }));
        r.register(Arc::new(Variance { sqrt: false }));
        r.register(Arc::new(Variance { sqrt: true }));
        r.register(Arc::new(FirstLast { is_last: false }));
        r.register(Arc::new(FirstLast { is_last: true }));
        r.register(Arc::new(Median));
        r.register(Arc::new(ApproxMedian::default()));
        r.register(Arc::new(Mode));
        r.register(Arc::new(CountDistinct));
        r
    }

    /// Register under the aggregate's own name (lower-cased).
    pub fn register(&mut self, agg: AggRef) {
        let name = agg.name().to_ascii_lowercase();
        self.by_name.insert(name, agg);
    }

    /// Register under an explicit name.
    pub fn register_as(&mut self, name: &str, agg: AggRef) {
        self.by_name.insert(name.to_ascii_lowercase(), agg);
    }

    /// Look up by name (case-insensitive).
    pub fn get(&self, name: &str) -> Result<AggRef> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| AggError::UnknownFunction(name.to_string()))
    }

    /// Whether a name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(&name.to_ascii_lowercase())
    }

    /// Registered names (sorted).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.by_name.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{AggClass, AggState, Aggregate};
    use mdj_storage::{DataType, Value};
    use std::any::Any;

    #[test]
    fn standard_registry_has_builtins() {
        let r = Registry::standard();
        for name in [
            "count",
            "count(*)",
            "sum",
            "avg",
            "min",
            "max",
            "var",
            "stddev",
            "first",
            "last",
            "median",
            "approx_median",
            "mode",
            "count_distinct",
        ] {
            assert!(r.contains(name), "missing {name}");
        }
        assert!(!r.contains("nope"));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let r = Registry::standard();
        assert!(r.get("SUM").is_ok());
        assert!(r.get("Avg").is_ok());
        assert!(matches!(r.get("bogus"), Err(AggError::UnknownFunction(_))));
    }

    /// A toy UDAF: product of values.
    #[derive(Debug)]
    struct Product;

    #[derive(Debug)]
    struct ProductState(f64, u64);

    impl AggState for ProductState {
        fn update(&mut self, v: &Value) -> crate::Result<()> {
            if let Some(f) = v.as_float() {
                self.0 *= f;
                self.1 += 1;
            }
            Ok(())
        }
        fn merge(&mut self, other: &dyn AggState) -> crate::Result<()> {
            let o = crate::traits::downcast_state::<ProductState>(other, "ProductState")?;
            self.0 *= o.0;
            self.1 += o.1;
            Ok(())
        }
        fn finalize(&self) -> Value {
            if self.1 == 0 {
                Value::Null
            } else {
                Value::Float(self.0)
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    impl Aggregate for Product {
        fn name(&self) -> &str {
            "product"
        }
        fn class(&self) -> AggClass {
            AggClass::Distributive
        }
        fn init(&self) -> Box<dyn AggState> {
            Box::new(ProductState(1.0, 0))
        }
        fn output_type(&self, _input: DataType) -> DataType {
            DataType::Float
        }
    }

    #[test]
    fn udaf_registration_and_use() {
        let mut r = Registry::standard();
        r.register(Arc::new(Product));
        let agg = r.get("product").unwrap();
        let mut s = agg.init();
        for v in [Value::Int(2), Value::Int(3), Value::Int(4)] {
            s.update(&v).unwrap();
        }
        assert_eq!(s.finalize(), Value::Float(24.0));
    }
}
