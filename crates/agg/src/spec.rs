//! Aggregate specifications: the elements of the MD-join's `l` list.
//!
//! An [`AggSpec`] names a function, its input column (or `*`), and an output
//! alias. Definition 3.1 names output columns `fᵢ_R_cᵢ`; we default to the
//! identifier-friendly `{func}_{column}` (e.g. `sum_sale`, `count_star`) and
//! let queries override with an alias, which series of MD-joins need to keep
//! same-function columns distinct (e.g. `avg_sale_ny` vs `avg_sale_nj` in
//! Example 2.2).

use crate::error::{AggError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What an aggregate consumes from each matching detail tuple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggInput {
    /// `count(*)`-style: every matching tuple, no column read.
    Star,
    /// A named detail column.
    Column(String),
}

impl AggInput {
    pub fn column(&self) -> Option<&str> {
        match self {
            AggInput::Star => None,
            AggInput::Column(c) => Some(c),
        }
    }
}

/// One element of the MD-join's aggregate list `l`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AggSpec {
    /// Function name resolved against a [`crate::Registry`].
    pub function: String,
    pub input: AggInput,
    /// Output column name override.
    pub alias: Option<String>,
}

impl AggSpec {
    pub fn new(function: impl Into<String>, input: AggInput) -> Self {
        AggSpec {
            function: function.into(),
            input,
            alias: None,
        }
    }

    /// `sum(sale)`-style convenience constructor.
    pub fn on_column(function: impl Into<String>, column: impl Into<String>) -> Self {
        AggSpec::new(function, AggInput::Column(column.into()))
    }

    /// `count(*)` convenience constructor.
    pub fn count_star() -> Self {
        AggSpec::new("count(*)", AggInput::Star)
    }

    /// Set the output alias.
    pub fn with_alias(mut self, alias: impl Into<String>) -> Self {
        self.alias = Some(alias.into());
        self
    }

    /// The output column name: the alias if set, otherwise `{func}_{col}`
    /// with the column's unqualified base name (`count_star` for `*`).
    pub fn output_name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        let func = self
            .function
            .trim_end_matches("(*)")
            .replace(['(', ')', '*'], "");
        match &self.input {
            AggInput::Star => format!("{func}_star"),
            AggInput::Column(c) => {
                let base = c.rsplit_once('.').map(|(_, b)| b).unwrap_or(c);
                format!("{func}_{base}")
            }
        }
    }

    /// Parse `func(col)`, `func(*)`, optionally `… as alias`
    /// (case-insensitive `as`).
    pub fn parse(s: &str) -> Result<AggSpec> {
        let s = s.trim();
        let (call, alias) = match split_as(s) {
            Some((c, a)) => (c.trim(), Some(a.trim().to_string())),
            None => (s, None),
        };
        let open = call.find('(').ok_or_else(|| AggError::BadSpec(s.into()))?;
        if !call.ends_with(')') {
            return Err(AggError::BadSpec(s.into()));
        }
        let func = call[..open].trim();
        let arg = call[open + 1..call.len() - 1].trim();
        if func.is_empty() {
            return Err(AggError::BadSpec(s.into()));
        }
        let (function, input) = if arg == "*" {
            (format!("{}(*)", func.to_ascii_lowercase()), AggInput::Star)
        } else if arg.is_empty() {
            return Err(AggError::BadSpec(s.into()));
        } else {
            (func.to_ascii_lowercase(), AggInput::Column(arg.to_string()))
        };
        Ok(AggSpec {
            function,
            input,
            alias,
        })
    }
}

/// Split `expr as alias` at a top-level, case-insensitive ` as `.
fn split_as(s: &str) -> Option<(&str, &str)> {
    let lower = s.to_ascii_lowercase();
    let mut depth = 0usize;
    let bytes = lower.as_bytes();
    let mut i = 0;
    while i + 4 <= bytes.len() {
        match bytes[i] {
            b'(' => depth += 1,
            b')' => depth = depth.saturating_sub(1),
            b' ' if depth == 0 && lower[i..].starts_with(" as ") => {
                return Some((&s[..i], &s[i + 4..]));
            }
            _ => {}
        }
        i += 1;
    }
    None
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let func = self.function.trim_end_matches("(*)");
        match &self.input {
            AggInput::Star => write!(f, "{func}(*)")?,
            AggInput::Column(c) => write!(f, "{func}({c})")?,
        }
        if let Some(a) = &self.alias {
            write!(f, " as {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_names() {
        assert_eq!(AggSpec::on_column("sum", "sale").output_name(), "sum_sale");
        assert_eq!(AggSpec::count_star().output_name(), "count_star");
        assert_eq!(
            AggSpec::on_column("avg", "Sales.sale").output_name(),
            "avg_sale"
        );
        assert_eq!(
            AggSpec::on_column("sum", "sale")
                .with_alias("total")
                .output_name(),
            "total"
        );
    }

    #[test]
    fn parse_simple_and_star() {
        assert_eq!(
            AggSpec::parse("sum(sale)").unwrap(),
            AggSpec::on_column("sum", "sale")
        );
        assert_eq!(AggSpec::parse("count(*)").unwrap(), AggSpec::count_star());
        assert_eq!(
            AggSpec::parse("AVG(Sales.sale)").unwrap(),
            AggSpec::on_column("avg", "Sales.sale")
        );
    }

    #[test]
    fn parse_with_alias() {
        let s = AggSpec::parse("avg(sale) as avg_ny").unwrap();
        assert_eq!(s.alias.as_deref(), Some("avg_ny"));
        assert_eq!(s.output_name(), "avg_ny");
        let s = AggSpec::parse("count(*) AS n").unwrap();
        assert_eq!(s.output_name(), "n");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["sum", "sum()", "(sale)", "sum(sale", "sum sale)"] {
            assert!(AggSpec::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn display_roundtrips() {
        for s in ["sum(sale)", "count(*)", "avg(sale) as a"] {
            let spec = AggSpec::parse(s).unwrap();
            assert_eq!(AggSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }
}
