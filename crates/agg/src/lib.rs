//! # mdj-agg
//!
//! Aggregate-function framework for the MD-join.
//!
//! Definition 3.1 parameterizes the MD-join with a list `l` of aggregate
//! functions over detail columns. Algorithm 3.1 (and its partitioned/parallel
//! variants from Theorem 4.1) requires aggregates with *state* that can be
//! initialized, updated one value at a time, merged across partitions, and
//! finalized — the classic UDAF shape the paper cites from [JM98, WZ00a].
//!
//! Aggregates are classified per Gray et al.:
//!
//! * **Distributive** (count, sum, min, max): partial states combine exactly;
//!   these are the aggregates Theorem 4.5's roll-up covers.
//! * **Algebraic** (avg, variance, stddev, approximate median): a fixed-size
//!   intermediate state combines exactly.
//! * **Holistic** (median, mode, count-distinct): state is unbounded
//!   (footnote 2 of the paper); supported by Algorithm 3.1 but excluded from
//!   the roll-up transformation. The paper notes holistic aggregates can be
//!   made algebraic by approximation \[MRL98\] — see
//!   [`holistic::ApproxMedian`].

pub mod builtins;
pub mod error;
pub mod holistic;
pub mod kernels;
pub mod registry;
pub mod rollup;
pub mod spec;
pub mod traits;

pub use error::{AggError, Result};
pub use kernels::{KernelKind, KernelState};
pub use registry::Registry;
pub use spec::{AggInput, AggSpec};
pub use traits::{AggClass, AggState, Aggregate};
