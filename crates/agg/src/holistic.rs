//! Holistic aggregates (unbounded state) and their algebraic approximations.
//!
//! Footnote 2 of the paper: Algorithm 3.1 as given works for distributive and
//! algebraic aggregates; holistic aggregates need state whose size depends on
//! the data, and "some holistic aggregates can be made algebraic by using
//! approximation, e.g. approximate medians \[MRL98\]". We provide both exact
//! holistic implementations and an MRL-style approximate median with bounded
//! state.

use crate::error::{AggError, Result};
use crate::traits::{downcast_state, AggClass, AggState, Aggregate};
use mdj_storage::{DataType, Value};
use std::any::Any;
use std::collections::HashMap;

fn bad_input(function: &str, v: &Value) -> AggError {
    AggError::BadInput {
        function: function.to_string(),
        got: v.type_name().to_string(),
    }
}

// ---------------------------------------------------------------- median (exact)

/// Exact median: buffers every non-NULL numeric value. Holistic. Even-sized
/// inputs report the mean of the two middle values.
#[derive(Debug, Clone, Copy)]
pub struct Median;

#[derive(Debug, Default)]
pub struct MedianState {
    vals: Vec<f64>,
}

impl AggState for MedianState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        self.vals
            .push(v.as_float().ok_or_else(|| bad_input("median", v))?);
        Ok(())
    }

    fn merge(&mut self, other: &dyn AggState) -> Result<()> {
        let o = downcast_state::<MedianState>(other, "MedianState")?;
        self.vals.extend_from_slice(&o.vals);
        Ok(())
    }

    fn finalize(&self) -> Value {
        if self.vals.is_empty() {
            return Value::Null;
        }
        let mut v = self.vals.clone();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let m = if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        };
        Value::Float(m)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn heap_bytes(&self) -> usize {
        self.vals.capacity() * std::mem::size_of::<f64>()
    }
}

impl Aggregate for Median {
    fn name(&self) -> &str {
        "median"
    }

    fn class(&self) -> AggClass {
        AggClass::Holistic
    }

    fn init(&self) -> Box<dyn AggState> {
        Box::<MedianState>::default()
    }

    fn output_type(&self, _input: DataType) -> DataType {
        DataType::Float
    }
}

// ---------------------------------------------------------------- approx median

/// Approximate median with bounded state, in the spirit of the approximate
/// quantile literature the paper cites \[MRL98\]: the state is a uniform
/// reservoir sample of the stream (deterministic xorshift PRNG, so results
/// are reproducible run-to-run), and the reported value is the sample
/// median. Sampling error is O(1/√k), independent of arrival order. State is
/// O(k), so the aggregate is algebraic and usable where holistic state is
/// unacceptable.
#[derive(Debug, Clone, Copy)]
pub struct ApproxMedian {
    /// Reservoir capacity (state bound). 1024 is a good default.
    pub capacity: usize,
}

impl Default for ApproxMedian {
    fn default() -> Self {
        ApproxMedian { capacity: 1024 }
    }
}

/// Minimal xorshift64* PRNG: deterministic, dependency-free, plenty for
/// reservoir sampling.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new() -> Self {
        XorShift(0x9E37_79B9_7F4A_7C15)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[derive(Debug)]
pub struct ApproxMedianState {
    capacity: usize,
    reservoir: Vec<f64>,
    seen: u64,
    rng: XorShift,
}

impl AggState for ApproxMedianState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        let x = v.as_float().ok_or_else(|| bad_input("approx_median", v))?;
        self.seen += 1;
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(x);
        } else {
            // Algorithm R: replace a random slot with probability k/seen.
            let j = self.rng.below(self.seen);
            if (j as usize) < self.capacity {
                self.reservoir[j as usize] = x;
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: &dyn AggState) -> Result<()> {
        let o = downcast_state::<ApproxMedianState>(other, "ApproxMedianState")?;
        if o.seen == 0 {
            return Ok(());
        }
        if self.seen == 0 {
            self.reservoir = o.reservoir.clone();
            self.seen = o.seen;
            return Ok(());
        }
        // Merge two reservoirs into one of the same capacity: fill each slot
        // from A with probability seenA/(seenA+seenB), else from B, drawing
        // without replacement.
        let mut a = self.reservoir.clone();
        let mut b = o.reservoir.clone();
        let (na, nb) = (self.seen, o.seen);
        let mut merged = Vec::with_capacity(self.capacity);
        while merged.len() < self.capacity && (!a.is_empty() || !b.is_empty()) {
            let from_a = if a.is_empty() {
                false
            } else if b.is_empty() {
                true
            } else {
                self.rng.below(na + nb) < na
            };
            let src = if from_a { &mut a } else { &mut b };
            let i = self.rng.below(src.len() as u64) as usize;
            merged.push(src.swap_remove(i));
        }
        self.reservoir = merged;
        self.seen += o.seen;
        Ok(())
    }

    fn finalize(&self) -> Value {
        if self.reservoir.is_empty() {
            return Value::Null;
        }
        let mut v = self.reservoir.clone();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let m = if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        };
        Value::Float(m)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn heap_bytes(&self) -> usize {
        // Bounded by `capacity`, but still real memory the estimate misses.
        self.reservoir.capacity() * std::mem::size_of::<f64>()
    }
}

impl Aggregate for ApproxMedian {
    fn name(&self) -> &str {
        "approx_median"
    }

    fn class(&self) -> AggClass {
        AggClass::Algebraic
    }

    fn init(&self) -> Box<dyn AggState> {
        Box::new(ApproxMedianState {
            capacity: self.capacity.max(2),
            reservoir: Vec::new(),
            seen: 0,
            rng: XorShift::new(),
        })
    }

    fn output_type(&self, _input: DataType) -> DataType {
        DataType::Float
    }
}

// ---------------------------------------------------------------- mode

/// Most-frequent value (`mode`), one of the paper's motivating "aggregate
/// functions more complex than the standard set". Holistic. Ties break toward
/// the smaller value (total order) for determinism.
#[derive(Debug, Clone, Copy)]
pub struct Mode;

#[derive(Debug, Default)]
pub struct ModeState {
    counts: HashMap<Value, u64>,
}

impl AggState for ModeState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if !v.is_null() {
            *self.counts.entry(v.clone()).or_insert(0) += 1;
        }
        Ok(())
    }

    fn merge(&mut self, other: &dyn AggState) -> Result<()> {
        let o = downcast_state::<ModeState>(other, "ModeState")?;
        for (v, c) in &o.counts {
            *self.counts.entry(v.clone()).or_insert(0) += c;
        }
        Ok(())
    }

    fn finalize(&self) -> Value {
        self.counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(v, _)| v.clone())
            .unwrap_or(Value::Null)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn heap_bytes(&self) -> usize {
        // Bucket slot (value + count) plus hash-table control overhead.
        self.counts.capacity() * (std::mem::size_of::<(Value, u64)>() + 16)
    }
}

impl Aggregate for Mode {
    fn name(&self) -> &str {
        "mode"
    }

    fn class(&self) -> AggClass {
        AggClass::Holistic
    }

    fn init(&self) -> Box<dyn AggState> {
        Box::<ModeState>::default()
    }

    fn output_type(&self, input: DataType) -> DataType {
        input
    }
}

// ---------------------------------------------------------------- count distinct

/// `count_distinct(col)`. Holistic (keeps the distinct set).
#[derive(Debug, Clone, Copy)]
pub struct CountDistinct;

#[derive(Debug, Default)]
pub struct CountDistinctState {
    seen: std::collections::HashSet<Value>,
}

impl AggState for CountDistinctState {
    fn update(&mut self, v: &Value) -> Result<()> {
        if !v.is_null() {
            self.seen.insert(v.clone());
        }
        Ok(())
    }

    fn merge(&mut self, other: &dyn AggState) -> Result<()> {
        let o = downcast_state::<CountDistinctState>(other, "CountDistinctState")?;
        self.seen.extend(o.seen.iter().cloned());
        Ok(())
    }

    fn finalize(&self) -> Value {
        Value::Int(self.seen.len() as i64)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn heap_bytes(&self) -> usize {
        self.seen.capacity() * (std::mem::size_of::<Value>() + 16)
    }
}

impl Aggregate for CountDistinct {
    fn name(&self) -> &str {
        "count_distinct"
    }

    fn class(&self) -> AggClass {
        AggClass::Holistic
    }

    fn init(&self) -> Box<dyn AggState> {
        Box::<CountDistinctState>::default()
    }

    fn output_type(&self, _input: DataType) -> DataType {
        DataType::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(agg: &dyn Aggregate, vals: &[Value]) -> Value {
        let mut s = agg.init();
        for v in vals {
            s.update(v).unwrap();
        }
        s.finalize()
    }

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(run(&Median, &ints(&[5, 1, 3])), Value::Float(3.0));
        assert_eq!(run(&Median, &ints(&[4, 1, 3, 2])), Value::Float(2.5));
        assert_eq!(run(&Median, &[]), Value::Null);
    }

    #[test]
    fn median_merge_matches_concat() {
        let mut a = Median.init();
        for v in ints(&[1, 9, 5]) {
            a.update(&v).unwrap();
        }
        let mut b = Median.init();
        for v in ints(&[3, 7]) {
            b.update(&v).unwrap();
        }
        a.merge(b.as_ref()).unwrap();
        assert_eq!(a.finalize(), Value::Float(5.0));
    }

    #[test]
    fn approx_median_is_close_on_uniform_data() {
        let agg = ApproxMedian { capacity: 64 };
        let mut s = agg.init();
        for i in 0..10_000i64 {
            s.update(&Value::Int(i)).unwrap();
        }
        let got = s.finalize().as_float().unwrap();
        let true_median = 4999.5;
        let rel = (got - true_median).abs() / 10_000.0;
        assert!(rel < 0.15, "approx median {got} too far from {true_median}");
    }

    #[test]
    fn approx_median_exact_when_under_capacity() {
        let agg = ApproxMedian { capacity: 1024 };
        let mut s = agg.init();
        for v in ints(&[10, 20, 30]) {
            s.update(&v).unwrap();
        }
        assert_eq!(s.finalize(), Value::Float(20.0));
    }

    #[test]
    fn mode_picks_most_frequent_with_deterministic_ties() {
        let vals = ints(&[1, 2, 2, 3, 3]);
        // 2 and 3 tie; smaller wins.
        assert_eq!(run(&Mode, &vals), Value::Int(2));
        assert_eq!(run(&Mode, &ints(&[7, 7, 1])), Value::Int(7));
        assert_eq!(run(&Mode, &[]), Value::Null);
    }

    #[test]
    fn mode_works_on_strings() {
        let vals = vec![Value::str("NY"), Value::str("NY"), Value::str("CA")];
        assert_eq!(run(&Mode, &vals), Value::str("NY"));
    }

    #[test]
    fn count_distinct_dedups_across_merge() {
        let mut a = CountDistinct.init();
        for v in ints(&[1, 2, 2]) {
            a.update(&v).unwrap();
        }
        let mut b = CountDistinct.init();
        for v in ints(&[2, 3]) {
            b.update(&v).unwrap();
        }
        a.merge(b.as_ref()).unwrap();
        assert_eq!(a.finalize(), Value::Int(3));
    }

    #[test]
    fn heap_bytes_grows_with_data() {
        for agg in [&Median as &dyn Aggregate, &Mode, &CountDistinct] {
            let mut s = agg.init();
            assert_eq!(s.heap_bytes(), 0, "{}", agg.name());
            for i in 0..1000i64 {
                s.update(&Value::Int(i)).unwrap();
            }
            assert!(s.heap_bytes() >= 1000 * 8, "{}", agg.name());
        }
        // Bounded states report 0 (default impl).
        let mut c = crate::builtins::Sum.init();
        c.update(&Value::Int(1)).unwrap();
        assert_eq!(c.heap_bytes(), 0);
    }

    #[test]
    fn holistic_classification() {
        assert_eq!(Median.class(), AggClass::Holistic);
        assert_eq!(Mode.class(), AggClass::Holistic);
        assert_eq!(CountDistinct.class(), AggClass::Holistic);
        assert_eq!(ApproxMedian::default().class(), AggClass::Algebraic);
    }
}
