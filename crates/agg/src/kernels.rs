//! Typed aggregate kernels for the vectorized executor.
//!
//! The scalar path folds every matching detail value through a
//! `Box<dyn AggState>::update(&Value)` virtual call. For the distributive /
//! algebraic core (`count`, `sum`, `min`, `max`, `avg`) the same accumulation
//! can run over native `i64`/`f64` slices with one dispatch per *run* of
//! matched tuples instead of one per value. A [`KernelState`] replicates the
//! corresponding builtin state machine bit-for-bit — same integer/float sum
//! split, same NULL handling, same `BadInput` errors, same finalize — so the
//! vectorized executor's output is row-identical to the scalar one.
//!
//! Coverage is declared by the aggregate itself via
//! [`Aggregate::kernel`](crate::Aggregate::kernel): the builtins override it,
//! everything else (holistic, user-defined) returns `None` and keeps the
//! `AggState` fallback. Detection is per *instance*, not per name, so a UDAF
//! registered under the name `"sum"` is never mistaken for the builtin.

use crate::error::{AggError, Result};
use mdj_storage::Value;

fn bad_input(function: &str, v: &Value) -> AggError {
    AggError::BadInput {
        function: function.to_string(),
        got: v.type_name().to_string(),
    }
}

/// Which typed kernel an aggregate maps to. Returned by
/// [`Aggregate::kernel`](crate::Aggregate::kernel) for the covered builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// `count(*)` / `count(col)`.
    Count {
        /// True for `count(*)` (counts NULLs too).
        star: bool,
    },
    Sum,
    Avg,
    Min,
    Max,
}

impl KernelKind {
    /// Fresh accumulator for this kernel.
    pub fn init(&self) -> KernelState {
        match self {
            KernelKind::Count { star } => KernelState::Count { star: *star, n: 0 },
            KernelKind::Sum => KernelState::Sum {
                int_sum: 0,
                float_sum: 0.0,
                any_float: false,
                seen: 0,
            },
            KernelKind::Avg => KernelState::Avg { sum: 0.0, n: 0 },
            KernelKind::Min => KernelState::MinMax {
                is_max: false,
                best: None,
            },
            KernelKind::Max => KernelState::MinMax {
                is_max: true,
                best: None,
            },
        }
    }
}

/// Accumulator state of one kernel-covered aggregate for one base row.
///
/// The variants carry exactly the fields of the corresponding builtin states
/// (`CountState`, `SumState`, `AvgState`, `MinMaxState`) so every update path
/// — batched or per-value — produces the same finalized [`Value`].
#[derive(Debug, Clone)]
pub enum KernelState {
    Count {
        star: bool,
        n: i64,
    },
    Sum {
        int_sum: i64,
        float_sum: f64,
        any_float: bool,
        seen: u64,
    },
    Avg {
        sum: f64,
        n: u64,
    },
    MinMax {
        is_max: bool,
        best: Option<Value>,
    },
}

impl KernelState {
    /// Fold a selection of an `i64` column: `sel` indexes into `vals`/`nulls`
    /// (parallel slices), `nulls[i]` true meaning the slot is SQL NULL. One
    /// call covers a whole (base-row, column) run.
    pub fn update_ints(&mut self, vals: &[i64], nulls: &[bool], sel: &[u32]) {
        match self {
            KernelState::Count { star, n } => {
                if *star {
                    *n += sel.len() as i64;
                } else {
                    *n += sel.iter().filter(|&&i| !nulls[i as usize]).count() as i64;
                }
            }
            KernelState::Sum { int_sum, seen, .. } => {
                for &i in sel {
                    let i = i as usize;
                    if !nulls[i] {
                        *int_sum = int_sum.wrapping_add(vals[i]);
                        *seen += 1;
                    }
                }
            }
            KernelState::Avg { sum, n } => {
                for &i in sel {
                    let i = i as usize;
                    if !nulls[i] {
                        *sum += vals[i] as f64;
                        *n += 1;
                    }
                }
            }
            KernelState::MinMax { is_max, best } => {
                // Sequential fold with the builtin's strict comparison (keep
                // the first of equals), restricted to i64 — identical to
                // feeding the run value-by-value.
                let mut ext: Option<i64> = None;
                for &i in sel {
                    let i = i as usize;
                    if nulls[i] {
                        continue;
                    }
                    let v = vals[i];
                    ext = Some(match ext {
                        None => v,
                        Some(cur) => {
                            if (*is_max && v > cur) || (!*is_max && v < cur) {
                                v
                            } else {
                                cur
                            }
                        }
                    });
                }
                if let Some(v) = ext {
                    Self::minmax_consider(best, *is_max, Value::Int(v));
                }
            }
        }
    }

    /// Fold a selection of an `f64` column (see [`Self::update_ints`]).
    pub fn update_floats(&mut self, vals: &[f64], nulls: &[bool], sel: &[u32]) {
        match self {
            KernelState::Count { star, n } => {
                if *star {
                    *n += sel.len() as i64;
                } else {
                    *n += sel.iter().filter(|&&i| !nulls[i as usize]).count() as i64;
                }
            }
            KernelState::Sum {
                float_sum,
                any_float,
                seen,
                ..
            } => {
                for &i in sel {
                    let i = i as usize;
                    if !nulls[i] {
                        *float_sum += vals[i];
                        *any_float = true;
                        *seen += 1;
                    }
                }
            }
            KernelState::Avg { sum, n } => {
                for &i in sel {
                    let i = i as usize;
                    if !nulls[i] {
                        *sum += vals[i];
                        *n += 1;
                    }
                }
            }
            KernelState::MinMax { is_max, best } => {
                let mut ext: Option<f64> = None;
                for &i in sel {
                    let i = i as usize;
                    if nulls[i] {
                        continue;
                    }
                    let v = vals[i];
                    ext = Some(match ext {
                        None => v,
                        Some(cur) => {
                            let ord = v.total_cmp(&cur);
                            if (*is_max && ord.is_gt()) || (!*is_max && ord.is_lt()) {
                                v
                            } else {
                                cur
                            }
                        }
                    });
                }
                if let Some(v) = ext {
                    Self::minmax_consider(best, *is_max, Value::Float(v));
                }
            }
        }
    }

    /// Count a run of `n` matching tuples for `count(*)` (no column input).
    pub fn update_star(&mut self, count: u64) {
        if let KernelState::Count { n, .. } = self {
            *n += count as i64;
        }
    }

    /// Scalar fallback: fold one [`Value`], exactly like the builtin
    /// `AggState::update`. Used for batches whose column shape has no typed
    /// representation (mixed types, `ALL`, booleans).
    pub fn update_value(&mut self, v: &Value) -> Result<()> {
        match self {
            KernelState::Count { star, n } => {
                if *star || !v.is_null() {
                    *n += 1;
                }
                Ok(())
            }
            KernelState::Sum {
                int_sum,
                float_sum,
                any_float,
                seen,
            } => match v {
                Value::Null => Ok(()),
                Value::Int(i) => {
                    *int_sum = int_sum.wrapping_add(*i);
                    *seen += 1;
                    Ok(())
                }
                Value::Float(f) => {
                    *float_sum += f;
                    *any_float = true;
                    *seen += 1;
                    Ok(())
                }
                other => Err(bad_input("sum", other)),
            },
            KernelState::Avg { sum, n } => match v {
                Value::Null => Ok(()),
                _ => {
                    let f = v.as_float().ok_or_else(|| bad_input("avg", v))?;
                    *sum += f;
                    *n += 1;
                    Ok(())
                }
            },
            KernelState::MinMax { is_max, best } => {
                if !v.is_null() {
                    Self::minmax_consider(best, *is_max, v.clone());
                }
                Ok(())
            }
        }
    }

    fn minmax_consider(best: &mut Option<Value>, is_max: bool, v: Value) {
        let better = match best {
            None => true,
            Some(cur) => {
                if is_max {
                    v > *cur
                } else {
                    v < *cur
                }
            }
        };
        if better {
            *best = Some(v);
        }
    }

    /// Report the aggregate value, with the builtin's empty-input semantics
    /// (`count` → 0, everything else → NULL).
    pub fn finalize(&self) -> Value {
        match self {
            KernelState::Count { n, .. } => Value::Int(*n),
            KernelState::Sum {
                int_sum,
                float_sum,
                any_float,
                seen,
            } => {
                if *seen == 0 {
                    Value::Null
                } else if *any_float {
                    Value::Float(*int_sum as f64 + *float_sum)
                } else {
                    Value::Int(*int_sum)
                }
            }
            KernelState::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *n as f64)
                }
            }
            KernelState::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::{Avg, Count, MinMax, Sum};
    use crate::traits::Aggregate;

    fn builtins_and_kernels() -> Vec<(Box<dyn Aggregate>, KernelKind)> {
        vec![
            (
                Box::new(Count { star: true }) as Box<dyn Aggregate>,
                KernelKind::Count { star: true },
            ),
            (
                Box::new(Count { star: false }),
                KernelKind::Count { star: false },
            ),
            (Box::new(Sum), KernelKind::Sum),
            (Box::new(Avg), KernelKind::Avg),
            (Box::new(MinMax { is_max: false }), KernelKind::Min),
            (Box::new(MinMax { is_max: true }), KernelKind::Max),
        ]
    }

    fn mixed_values() -> Vec<Value> {
        vec![
            Value::Int(4),
            Value::Null,
            Value::Float(2.5),
            Value::Int(-7),
            Value::Float(2.5),
            Value::Null,
            Value::Int(i64::MAX),
            Value::Int(1),
        ]
    }

    #[test]
    fn update_value_matches_builtin_state_machine() {
        for (agg, kind) in builtins_and_kernels() {
            let mut boxed = agg.init();
            let mut kernel = kind.init();
            for v in mixed_values() {
                boxed.update(&v).unwrap();
                kernel.update_value(&v).unwrap();
            }
            assert_eq!(boxed.finalize(), kernel.finalize(), "{}", agg.name());
        }
    }

    #[test]
    fn update_ints_matches_per_value_path() {
        let vals: Vec<i64> = vec![3, 0, -5, i64::MAX, 3, 9];
        let nulls = vec![false, true, false, false, false, true];
        let sel: Vec<u32> = (0..vals.len() as u32).collect();
        for (agg, kind) in builtins_and_kernels() {
            let mut boxed = agg.init();
            for (&v, &is_null) in vals.iter().zip(&nulls) {
                let v = if is_null { Value::Null } else { Value::Int(v) };
                boxed.update(&v).unwrap();
            }
            let mut kernel = kind.init();
            kernel.update_ints(&vals, &nulls, &sel);
            assert_eq!(boxed.finalize(), kernel.finalize(), "{}", agg.name());
        }
    }

    #[test]
    fn update_floats_matches_per_value_path() {
        let vals: Vec<f64> = vec![1.5, 0.0, -0.0, f64::NAN, 2.25, 1.5];
        let nulls = vec![false, false, false, false, true, false];
        let sel: Vec<u32> = (0..vals.len() as u32).collect();
        for (agg, kind) in builtins_and_kernels() {
            let mut boxed = agg.init();
            for (&v, &is_null) in vals.iter().zip(&nulls) {
                let v = if is_null {
                    Value::Null
                } else {
                    Value::Float(v)
                };
                boxed.update(&v).unwrap();
            }
            let mut kernel = kind.init();
            kernel.update_floats(&vals, &nulls, &sel);
            // Bit-identical, including NaN / signed-zero handling.
            assert_eq!(boxed.finalize(), kernel.finalize(), "{}", agg.name());
        }
    }

    #[test]
    fn batched_runs_match_one_big_run() {
        // Splitting a selection into several runs must accumulate identically.
        let vals: Vec<i64> = (0..100).map(|i| (i * 7) % 23 - 11).collect();
        let nulls = vec![false; 100];
        let sel: Vec<u32> = (0..100).collect();
        for (_, kind) in builtins_and_kernels() {
            let mut whole = kind.init();
            whole.update_ints(&vals, &nulls, &sel);
            let mut split = kind.init();
            for chunk in sel.chunks(7) {
                split.update_ints(&vals, &nulls, chunk);
            }
            assert_eq!(whole.finalize(), split.finalize());
        }
    }

    #[test]
    fn sum_and_avg_reject_strings_like_the_builtins() {
        let mut s = KernelKind::Sum.init();
        let err = s.update_value(&Value::str("x")).unwrap_err();
        assert!(matches!(err, AggError::BadInput { .. }));
        let mut a = KernelKind::Avg.init();
        assert!(a.update_value(&Value::str("x")).is_err());
        // count accepts anything.
        let mut c = KernelKind::Count { star: false }.init();
        c.update_value(&Value::str("x")).unwrap();
        c.update_value(&Value::All).unwrap();
        assert_eq!(c.finalize(), Value::Int(2));
    }

    #[test]
    fn empty_semantics() {
        assert_eq!(
            KernelKind::Count { star: true }.init().finalize(),
            Value::Int(0)
        );
        assert_eq!(KernelKind::Sum.init().finalize(), Value::Null);
        assert_eq!(KernelKind::Avg.init().finalize(), Value::Null);
        assert_eq!(KernelKind::Min.init().finalize(), Value::Null);
    }
}
