//! Typed aggregate kernels for the vectorized executor.
//!
//! The scalar path folds every matching detail value through a
//! `Box<dyn AggState>::update(&Value)` virtual call. For the distributive /
//! algebraic core (`count`, `sum`, `min`, `max`, `avg`) the same accumulation
//! can run over native `i64`/`f64` slices with one dispatch per *run* of
//! matched tuples instead of one per value. A [`KernelState`] replicates the
//! corresponding builtin state machine bit-for-bit — same integer/float sum
//! split, same NULL handling, same `BadInput` errors, same finalize — so the
//! vectorized executor's output is row-identical to the scalar one.
//!
//! # Loop shape
//!
//! The batch entry points ([`KernelState::update_ints`] /
//! [`KernelState::update_floats`]) are *chunked and branch-free*: the
//! selection is walked in fixed [`CHUNK`]-slot strides, each stride gathered
//! into a stack buffer with NULLs substituted arithmetically (no data-
//! dependent branches), and the stride then reduced. Reductions that are
//! reassociative (`i64` wrapping sums, counts, min/max) go through
//! [`reduce`], which autovectorizes and — with the `simd` cargo feature on
//! `x86_64` — dispatches to AVX2 intrinsics behind a runtime
//! `is_x86_feature_detected!` check with a scalar fallback.
//!
//! # Accumulation-order guarantee
//!
//! `f64` sums are **not** reassociated: the masked stride is folded
//! sequentially in selection order, so float accumulation order — and hence
//! every output bit — is identical to the per-value path. Masking a NULL slot
//! to `+0.0` is bit-safe: the accumulator starts at `+0.0` and can never
//! become `-0.0` (`x + 0.0` only yields `-0.0` when both operands are
//! `-0.0`), and quiet-NaN payloads survive `+ 0.0`. Min/max reductions over
//! `total_cmp` (and over `i64`) are tie-free — equal keys are bit-identical —
//! so any reduction order, including SIMD, finalizes the same bits.
//!
//! Coverage is declared by the aggregate itself via
//! [`Aggregate::kernel`](crate::Aggregate::kernel): the builtins override it,
//! everything else (holistic, user-defined) returns `None` and keeps the
//! `AggState` fallback. Detection is per *instance*, not per name, so a UDAF
//! registered under the name `"sum"` is never mistaken for the builtin.

use crate::builtins::checked_acc;
use crate::error::{AggError, Result};
use mdj_storage::Value;

/// Fixed gather-stride width for the batch update loops. Small enough to
/// live on the stack, large enough that the gather and reduction phases
/// amortize loop overhead and vectorize cleanly.
pub const CHUNK: usize = 64;

fn bad_input(function: &str, v: &Value) -> AggError {
    AggError::BadInput {
        function: function.to_string(),
        got: v.type_name().to_string(),
    }
}

/// Gather one selection stride of an `i64` column into `buf`, substituting
/// `null_sub` for SQL-NULL slots with arithmetic masking (branch-free).
/// Returns the number of non-NULL slots gathered.
#[inline]
fn gather_ints(
    vals: &[i64],
    nulls: &[bool],
    sel: &[u32],
    null_sub: i64,
    buf: &mut [i64; CHUNK],
) -> u64 {
    let mut kept = 0u64;
    for (slot, &i) in buf.iter_mut().zip(sel) {
        let i = i as usize;
        let keep = !nulls[i] as i64; // 0 or 1, no branch
        let mask = keep.wrapping_neg(); // 0 or all-ones
        *slot = (vals[i] & mask) | (null_sub & !mask);
        kept += keep as u64;
    }
    kept
}

/// Gather one selection stride of an `f64` column as raw bits, masking
/// SQL-NULL slots to `null_sub` (branch-free). Returns the non-NULL count.
#[inline]
fn gather_float_bits(
    vals: &[f64],
    nulls: &[bool],
    sel: &[u32],
    null_sub: u64,
    buf: &mut [u64; CHUNK],
) -> u64 {
    let mut kept = 0u64;
    for (slot, &i) in buf.iter_mut().zip(sel) {
        let i = i as usize;
        let keep = !nulls[i] as u64;
        let mask = keep.wrapping_neg();
        *slot = (vals[i].to_bits() & mask) | (null_sub & !mask);
        kept += keep;
    }
    kept
}

/// Monotone key: `a.total_cmp(&b)` agrees with `u64` order of
/// `f64_total_key(a.to_bits())` vs `f64_total_key(b.to_bits())`. Equal keys
/// are bit-identical floats, so min/max over keys is tie-free.
#[inline(always)]
fn f64_total_key(bits: u64) -> u64 {
    bits ^ ((((bits as i64) >> 63) as u64) | 0x8000_0000_0000_0000)
}

/// Inverse of [`f64_total_key`].
#[inline(always)]
fn f64_from_total_key(key: u64) -> f64 {
    let m = ((key as i64) >> 63) as u64; // all-ones iff original sign bit was 0
    f64::from_bits(key ^ ((m & 0x8000_0000_0000_0000) | !m))
}

/// Reassociative stride reductions. Scalar bodies are plain folds that
/// autovectorize; with the `simd` feature on `x86_64` they dispatch to AVX2
/// behind a runtime CPU check (scalar fallback otherwise). All callers rely
/// only on the *result*, which is order-independent for these operations.
pub mod reduce {
    /// Wrapping sum of `i64` lanes (order-free by modular arithmetic).
    pub fn sum_i64(v: &[i64]) -> i64 {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support verified at runtime on this CPU.
            return unsafe { x86::sum_i64(v) };
        }
        v.iter().fold(0i64, |a, &x| a.wrapping_add(x))
    }

    /// Maximum `i64` lane, folding from the identity `i64::MIN`.
    pub fn max_i64(v: &[i64]) -> i64 {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support verified at runtime on this CPU.
            return unsafe { x86::max_i64(v) };
        }
        v.iter().fold(i64::MIN, |a, &x| a.max(x))
    }

    /// Minimum `i64` lane, folding from the identity `i64::MAX`.
    pub fn min_i64(v: &[i64]) -> i64 {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support verified at runtime on this CPU.
            return unsafe { x86::min_i64(v) };
        }
        v.iter().fold(i64::MAX, |a, &x| a.min(x))
    }

    /// Maximum `u64` lane, folding from the identity `0`.
    pub fn max_u64(v: &[u64]) -> u64 {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support verified at runtime on this CPU.
            return unsafe { x86::max_u64(v) };
        }
        v.iter().fold(0u64, |a, &x| a.max(x))
    }

    /// Minimum `u64` lane, folding from the identity `u64::MAX`.
    pub fn min_u64(v: &[u64]) -> u64 {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support verified at runtime on this CPU.
            return unsafe { x86::min_u64(v) };
        }
        v.iter().fold(u64::MAX, |a, &x| a.min(x))
    }

    /// AVX2 lane reductions. AVX2 has no 64-bit min/max instruction, so
    /// min/max are built from `cmpgt_epi64` + byte blends; unsigned compares
    /// bias both operands by `i64::MIN` first. Every function handles the
    /// `chunks_exact` remainder with the scalar fold.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    mod x86 {
        use core::arch::x86_64::*;

        #[inline]
        fn lanes(acc: __m256i) -> [i64; 4] {
            let mut out = [0i64; 4];
            // SAFETY: `out` is 32 writable bytes; storeu is unaligned-safe.
            unsafe { _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, acc) };
            out
        }

        #[inline]
        fn load(c: &[i64]) -> __m256i {
            debug_assert_eq!(c.len(), 4);
            // SAFETY: `c` spans 4 readable i64s; loadu is unaligned-safe.
            unsafe { _mm256_loadu_si256(c.as_ptr() as *const __m256i) }
        }

        #[target_feature(enable = "avx2")]
        pub fn sum_i64(v: &[i64]) -> i64 {
            let mut acc = _mm256_setzero_si256();
            let mut chunks = v.chunks_exact(4);
            for c in chunks.by_ref() {
                acc = _mm256_add_epi64(acc, load(c));
            }
            let l = lanes(acc);
            let head = l[0]
                .wrapping_add(l[1])
                .wrapping_add(l[2])
                .wrapping_add(l[3]);
            chunks
                .remainder()
                .iter()
                .fold(head, |a, &x| a.wrapping_add(x))
        }

        #[target_feature(enable = "avx2")]
        fn fold_minmax(v: &[i64], identity: i64, bias: i64, want_max: bool) -> i64 {
            let biasv = _mm256_set1_epi64x(bias);
            let mut acc = _mm256_set1_epi64x(identity);
            let mut chunks = v.chunks_exact(4);
            for c in chunks.by_ref() {
                let x = load(c);
                // Signed compare in the biased domain covers both i64
                // (bias = 0) and u64 (bias = i64::MIN) orderings.
                let xb = _mm256_xor_si256(x, biasv);
                let accb = _mm256_xor_si256(acc, biasv);
                let take = if want_max {
                    _mm256_cmpgt_epi64(xb, accb)
                } else {
                    _mm256_cmpgt_epi64(accb, xb)
                };
                acc = _mm256_blendv_epi8(acc, x, take);
            }
            let l = lanes(acc);
            let better = |a: i64, b: i64| {
                let (ab, bb) = (a ^ bias, b ^ bias);
                if want_max == (ab > bb) && ab != bb {
                    a
                } else {
                    b
                }
            };
            let head = better(l[0], better(l[1], better(l[2], l[3])));
            chunks.remainder().iter().fold(head, |a, &x| better(x, a))
        }

        #[target_feature(enable = "avx2")]
        pub fn max_i64(v: &[i64]) -> i64 {
            fold_minmax(v, i64::MIN, 0, true)
        }

        #[target_feature(enable = "avx2")]
        pub fn min_i64(v: &[i64]) -> i64 {
            fold_minmax(v, i64::MAX, 0, false)
        }

        #[target_feature(enable = "avx2")]
        pub fn max_u64(v: &[u64]) -> u64 {
            fold_minmax(bytemuck(v), 0u64 as i64, i64::MIN, true) as u64
        }

        #[target_feature(enable = "avx2")]
        pub fn min_u64(v: &[u64]) -> u64 {
            fold_minmax(bytemuck(v), u64::MAX as i64, i64::MIN, false) as u64
        }

        #[inline]
        fn bytemuck(v: &[u64]) -> &[i64] {
            // SAFETY: u64 and i64 have identical size/alignment; the biased
            // compare in `fold_minmax` reinterprets the bits anyway.
            unsafe { core::slice::from_raw_parts(v.as_ptr() as *const i64, v.len()) }
        }
    }
}

/// Which typed kernel an aggregate maps to. Returned by
/// [`Aggregate::kernel`](crate::Aggregate::kernel) for the covered builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// `count(*)` / `count(col)`.
    Count {
        /// True for `count(*)` (counts NULLs too).
        star: bool,
    },
    Sum,
    Avg,
    Min,
    Max,
}

impl KernelKind {
    /// Fresh accumulator for this kernel.
    pub fn init(&self) -> KernelState {
        match self {
            KernelKind::Count { star } => KernelState::Count { star: *star, n: 0 },
            KernelKind::Sum => KernelState::Sum {
                int_sum: 0,
                float_sum: 0.0,
                any_float: false,
                seen: 0,
            },
            KernelKind::Avg => KernelState::Avg { sum: 0.0, n: 0 },
            KernelKind::Min => KernelState::MinMax {
                is_max: false,
                best: None,
            },
            KernelKind::Max => KernelState::MinMax {
                is_max: true,
                best: None,
            },
        }
    }
}

/// Accumulator state of one kernel-covered aggregate for one base row.
///
/// The variants carry exactly the fields of the corresponding builtin states
/// (`CountState`, `SumState`, `AvgState`, `MinMaxState`) so every update path
/// — batched or per-value — produces the same finalized [`Value`].
#[derive(Debug, Clone)]
pub enum KernelState {
    Count {
        star: bool,
        n: i64,
    },
    Sum {
        int_sum: i64,
        float_sum: f64,
        any_float: bool,
        seen: u64,
    },
    Avg {
        sum: f64,
        n: u64,
    },
    MinMax {
        is_max: bool,
        best: Option<Value>,
    },
}

impl KernelState {
    /// Fold a selection of an `i64` column: `sel` indexes into `vals`/`nulls`
    /// (parallel slices), `nulls[i]` true meaning the slot is SQL NULL. One
    /// call covers a whole (base-row, column) run.
    ///
    /// `sum`/`count` report `i64` overflow as [`AggError::Overflow`], at
    /// exactly the value where the scalar interpreter's checked accumulation
    /// would: strides that provably cannot overflow any prefix take the
    /// branch-free reassociated reduction, everything else falls back to a
    /// sequential checked fold in selection order.
    pub fn update_ints(&mut self, vals: &[i64], nulls: &[bool], sel: &[u32]) -> Result<()> {
        match self {
            KernelState::Count { star, n } => {
                let add = if *star {
                    sel.len() as i64
                } else {
                    sel.iter().map(|&i| !nulls[i as usize] as i64).sum::<i64>()
                };
                *n = checked_acc("count", *n, add)?;
            }
            KernelState::Sum { int_sum, seen, .. } => {
                let mut buf = [0i64; CHUNK];
                for stride in sel.chunks(CHUNK) {
                    let kept = gather_ints(vals, nulls, stride, 0, &mut buf);
                    let lanes = &buf[..stride.len()];
                    // O(1) headroom guard: every prefix sum of the stride is
                    // bounded by len·max|lane|, so if the accumulator ± that
                    // span stays in range, no accumulation order can
                    // overflow and the reassociated (SIMD) wrapping
                    // reduction is exact.
                    let big = reduce::max_i64(lanes)
                        .unsigned_abs()
                        .max(reduce::min_i64(lanes).unsigned_abs());
                    let span = lanes.len() as i128 * big as i128;
                    let acc = *int_sum as i128;
                    if acc - span >= i64::MIN as i128 && acc + span <= i64::MAX as i128 {
                        *int_sum = int_sum.wrapping_add(reduce::sum_i64(lanes));
                    } else {
                        // Checked fold in selection order: errors on the
                        // same prefix the per-value path would (e.g.
                        // [MAX, 1, -2] must fail despite an in-range total).
                        let mut acc = *int_sum;
                        for &x in lanes {
                            acc = checked_acc("sum", acc, x)?;
                        }
                        *int_sum = acc;
                    }
                    *seen += kept;
                }
            }
            KernelState::Avg { sum, n } => {
                // Sequential masked fold: float accumulation order must stay
                // identical to the per-value path (see module docs).
                let mut buf = [0u64; CHUNK];
                for stride in sel.chunks(CHUNK) {
                    let mut kept = 0u64;
                    for (slot, &i) in buf.iter_mut().zip(stride) {
                        let i = i as usize;
                        let keep = !nulls[i] as u64;
                        *slot = (vals[i] as f64).to_bits() & keep.wrapping_neg();
                        kept += keep;
                    }
                    for &bits in &buf[..stride.len()] {
                        *sum += f64::from_bits(bits);
                    }
                    *n += kept;
                }
            }
            KernelState::MinMax { is_max, best } => {
                // NULL slots are substituted with the reduction identity, so
                // the tie-free min/max over the stride is exact.
                let sub = if *is_max { i64::MIN } else { i64::MAX };
                let mut buf = [0i64; CHUNK];
                let mut ext: Option<i64> = None;
                for stride in sel.chunks(CHUNK) {
                    let kept = gather_ints(vals, nulls, stride, sub, &mut buf);
                    if kept == 0 {
                        continue;
                    }
                    let run = if *is_max {
                        reduce::max_i64(&buf[..stride.len()])
                    } else {
                        reduce::min_i64(&buf[..stride.len()])
                    };
                    ext = Some(match ext {
                        None => run,
                        Some(cur) if *is_max => cur.max(run),
                        Some(cur) => cur.min(run),
                    });
                }
                if let Some(v) = ext {
                    Self::minmax_consider(best, *is_max, Value::Int(v));
                }
            }
        }
        Ok(())
    }

    /// Fold a selection of an `f64` column (see [`Self::update_ints`]).
    pub fn update_floats(&mut self, vals: &[f64], nulls: &[bool], sel: &[u32]) -> Result<()> {
        match self {
            KernelState::Count { star, n } => {
                let add = if *star {
                    sel.len() as i64
                } else {
                    sel.iter().map(|&i| !nulls[i as usize] as i64).sum::<i64>()
                };
                *n = checked_acc("count", *n, add)?;
            }
            KernelState::Sum {
                float_sum,
                any_float,
                seen,
                ..
            } => {
                // Gather (vectorizes) then sequential masked fold (preserves
                // float accumulation order bit-for-bit; +0.0 padding is
                // bit-safe per the module docs).
                let mut buf = [0u64; CHUNK];
                for stride in sel.chunks(CHUNK) {
                    let kept = gather_float_bits(vals, nulls, stride, 0, &mut buf);
                    for &bits in &buf[..stride.len()] {
                        *float_sum += f64::from_bits(bits);
                    }
                    *any_float |= kept > 0;
                    *seen += kept;
                }
            }
            KernelState::Avg { sum, n } => {
                let mut buf = [0u64; CHUNK];
                for stride in sel.chunks(CHUNK) {
                    let kept = gather_float_bits(vals, nulls, stride, 0, &mut buf);
                    for &bits in &buf[..stride.len()] {
                        *sum += f64::from_bits(bits);
                    }
                    *n += kept;
                }
            }
            KernelState::MinMax { is_max, best } => {
                // total_cmp order ⇔ unsigned order of the monotone key, and
                // equal keys are bit-identical floats, so the reduction is
                // tie-free and any order (incl. SIMD) yields the same bits.
                let sub = if *is_max { 0u64 } else { u64::MAX };
                let mut buf = [0u64; CHUNK];
                let mut ext: Option<u64> = None;
                for stride in sel.chunks(CHUNK) {
                    let mut kept = 0u64;
                    for (slot, &i) in buf.iter_mut().zip(stride) {
                        let i = i as usize;
                        let keep = !nulls[i] as u64;
                        let mask = keep.wrapping_neg();
                        *slot = (f64_total_key(vals[i].to_bits()) & mask) | (sub & !mask);
                        kept += keep;
                    }
                    if kept == 0 {
                        continue;
                    }
                    let run = if *is_max {
                        reduce::max_u64(&buf[..stride.len()])
                    } else {
                        reduce::min_u64(&buf[..stride.len()])
                    };
                    ext = Some(match ext {
                        None => run,
                        Some(cur) if *is_max => cur.max(run),
                        Some(cur) => cur.min(run),
                    });
                }
                if let Some(key) = ext {
                    Self::minmax_consider(best, *is_max, Value::Float(f64_from_total_key(key)));
                }
            }
        }
        Ok(())
    }

    /// Count a run of `n` matching tuples for `count(*)` (no column input).
    pub fn update_star(&mut self, count: u64) -> Result<()> {
        if let KernelState::Count { n, .. } = self {
            let add = i64::try_from(count).map_err(|_| AggError::Overflow { function: "count" })?;
            *n = checked_acc("count", *n, add)?;
        }
        Ok(())
    }

    /// Scalar fallback: fold one [`Value`], exactly like the builtin
    /// `AggState::update`. Used for batches whose column shape has no typed
    /// representation (mixed types, `ALL`, booleans).
    pub fn update_value(&mut self, v: &Value) -> Result<()> {
        match self {
            KernelState::Count { star, n } => {
                if *star || !v.is_null() {
                    *n = checked_acc("count", *n, 1)?;
                }
                Ok(())
            }
            KernelState::Sum {
                int_sum,
                float_sum,
                any_float,
                seen,
            } => match v {
                Value::Null => Ok(()),
                Value::Int(i) => {
                    *int_sum = checked_acc("sum", *int_sum, *i)?;
                    *seen += 1;
                    Ok(())
                }
                Value::Float(f) => {
                    *float_sum += f;
                    *any_float = true;
                    *seen += 1;
                    Ok(())
                }
                other => Err(bad_input("sum", other)),
            },
            KernelState::Avg { sum, n } => match v {
                Value::Null => Ok(()),
                _ => {
                    let f = v.as_float().ok_or_else(|| bad_input("avg", v))?;
                    *sum += f;
                    *n += 1;
                    Ok(())
                }
            },
            KernelState::MinMax { is_max, best } => {
                if !v.is_null() {
                    Self::minmax_consider(best, *is_max, v.clone());
                }
                Ok(())
            }
        }
    }

    fn minmax_consider(best: &mut Option<Value>, is_max: bool, v: Value) {
        let better = match best {
            None => true,
            Some(cur) => {
                if is_max {
                    v > *cur
                } else {
                    v < *cur
                }
            }
        };
        if better {
            *best = Some(v);
        }
    }

    /// Report the aggregate value, with the builtin's empty-input semantics
    /// (`count` → 0, everything else → NULL).
    pub fn finalize(&self) -> Value {
        match self {
            KernelState::Count { n, .. } => Value::Int(*n),
            KernelState::Sum {
                int_sum,
                float_sum,
                any_float,
                seen,
            } => {
                if *seen == 0 {
                    Value::Null
                } else if *any_float {
                    Value::Float(*int_sum as f64 + *float_sum)
                } else {
                    Value::Int(*int_sum)
                }
            }
            KernelState::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *n as f64)
                }
            }
            KernelState::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::{Avg, Count, MinMax, Sum};
    use crate::traits::Aggregate;

    fn builtins_and_kernels() -> Vec<(Box<dyn Aggregate>, KernelKind)> {
        vec![
            (
                Box::new(Count { star: true }) as Box<dyn Aggregate>,
                KernelKind::Count { star: true },
            ),
            (
                Box::new(Count { star: false }),
                KernelKind::Count { star: false },
            ),
            (Box::new(Sum), KernelKind::Sum),
            (Box::new(Avg), KernelKind::Avg),
            (Box::new(MinMax { is_max: false }), KernelKind::Min),
            (Box::new(MinMax { is_max: true }), KernelKind::Max),
        ]
    }

    fn mixed_values() -> Vec<Value> {
        vec![
            Value::Int(4),
            Value::Null,
            Value::Float(2.5),
            Value::Int(-7),
            Value::Float(2.5),
            Value::Null,
            Value::Int(i64::MAX),
            Value::Int(1),
        ]
    }

    #[test]
    fn update_value_matches_builtin_state_machine() {
        for (agg, kind) in builtins_and_kernels() {
            let mut boxed = agg.init();
            let mut kernel = kind.init();
            for v in mixed_values() {
                boxed.update(&v).unwrap();
                kernel.update_value(&v).unwrap();
            }
            assert_eq!(boxed.finalize(), kernel.finalize(), "{}", agg.name());
        }
    }

    /// Fold ints through the scalar path, stopping at the first error (the
    /// executor aborts there too).
    fn scalar_fold(agg: &dyn Aggregate, vals: &[i64], nulls: &[bool]) -> Result<Value> {
        let mut boxed = agg.init();
        for (&v, &is_null) in vals.iter().zip(nulls) {
            let v = if is_null { Value::Null } else { Value::Int(v) };
            boxed.update(&v)?;
        }
        Ok(boxed.finalize())
    }

    #[test]
    fn update_ints_matches_per_value_path() {
        // `i64::MAX` makes the sum overflow mid-scan: both paths must agree
        // on the typed error, and on the bits for every other aggregate.
        let vals: Vec<i64> = vec![3, 0, -5, i64::MAX, 3, 9];
        let nulls = vec![false, true, false, false, false, true];
        let sel: Vec<u32> = (0..vals.len() as u32).collect();
        for (agg, kind) in builtins_and_kernels() {
            let scalar = scalar_fold(agg.as_ref(), &vals, &nulls);
            let mut kernel = kind.init();
            let batched = kernel
                .update_ints(&vals, &nulls, &sel)
                .map(|()| kernel.finalize());
            assert_eq!(scalar, batched, "{}", agg.name());
        }
        // Same walk with the extreme pulled back in range: value parity.
        let safe: Vec<i64> = vec![3, 0, -5, i64::MAX / 2, 3, 9];
        for (agg, kind) in builtins_and_kernels() {
            let scalar = scalar_fold(agg.as_ref(), &safe, &nulls).unwrap();
            let mut kernel = kind.init();
            kernel.update_ints(&safe, &nulls, &sel).unwrap();
            assert_eq!(scalar, kernel.finalize(), "{}", agg.name());
        }
    }

    #[test]
    fn update_floats_matches_per_value_path() {
        let vals: Vec<f64> = vec![1.5, 0.0, -0.0, f64::NAN, 2.25, 1.5];
        let nulls = vec![false, false, false, false, true, false];
        let sel: Vec<u32> = (0..vals.len() as u32).collect();
        for (agg, kind) in builtins_and_kernels() {
            let mut boxed = agg.init();
            for (&v, &is_null) in vals.iter().zip(&nulls) {
                let v = if is_null {
                    Value::Null
                } else {
                    Value::Float(v)
                };
                boxed.update(&v).unwrap();
            }
            let mut kernel = kind.init();
            kernel.update_floats(&vals, &nulls, &sel).unwrap();
            // Bit-identical, including NaN / signed-zero handling.
            assert_eq!(boxed.finalize(), kernel.finalize(), "{}", agg.name());
        }
    }

    #[test]
    fn batched_runs_match_one_big_run() {
        // Splitting a selection into several runs must accumulate identically.
        let vals: Vec<i64> = (0..100).map(|i| (i * 7) % 23 - 11).collect();
        let nulls = vec![false; 100];
        let sel: Vec<u32> = (0..100).collect();
        for (_, kind) in builtins_and_kernels() {
            let mut whole = kind.init();
            whole.update_ints(&vals, &nulls, &sel).unwrap();
            let mut split = kind.init();
            for chunk in sel.chunks(7) {
                split.update_ints(&vals, &nulls, chunk).unwrap();
            }
            assert_eq!(whole.finalize(), split.finalize());
        }
    }

    #[test]
    fn long_null_heavy_selections_match_per_value_path() {
        // Cross the CHUNK boundary with NULL-heavy, extreme-valued data so the
        // masked gather / identity-substitution machinery is exercised on
        // every stride shape (full, partial, all-NULL).
        let n = 3 * CHUNK + 17;
        let ivals: Vec<i64> = (0..n)
            .map(|i| match i % 5 {
                0 => i64::MIN,
                1 => i64::MAX,
                2 => -(i as i64),
                _ => i as i64 * 31,
            })
            .collect();
        let fvals: Vec<f64> = (0..n)
            .map(|i| match i % 7 {
                0 => f64::NAN,
                1 => -0.0,
                2 => f64::NEG_INFINITY,
                3 => f64::INFINITY,
                _ => (i as f64) * -0.75,
            })
            .collect();
        let nulls: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let sel: Vec<u32> = (0..n as u32).collect();
        for (agg, kind) in builtins_and_kernels() {
            // The extreme int walk overflows `sum` mid-scan: compare verdicts
            // (typed error included), not just values.
            let scalar_i = scalar_fold(agg.as_ref(), &ivals, &nulls);
            let mut ki = kind.init();
            let kernel_i = ki.update_ints(&ivals, &nulls, &sel).map(|()| ki.finalize());
            assert_eq!(scalar_i, kernel_i, "ints {}", agg.name());
            let mut boxed_f = agg.init();
            for i in 0..n {
                let vf = if nulls[i] {
                    Value::Null
                } else {
                    Value::Float(fvals[i])
                };
                boxed_f.update(&vf).unwrap();
            }
            let mut kf = kind.init();
            kf.update_floats(&fvals, &nulls, &sel).unwrap();
            let (a, b) = (boxed_f.finalize(), kf.finalize());
            match (&a, &b) {
                // NaN != NaN under PartialEq; require bit identity instead.
                (Value::Float(x), Value::Float(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "floats {}", agg.name())
                }
                _ => assert_eq!(a, b, "floats {}", agg.name()),
            }
        }
    }

    #[test]
    fn all_null_selection_leaves_state_untouched() {
        let vals = vec![7i64; CHUNK + 3];
        let nulls = vec![true; CHUNK + 3];
        let sel: Vec<u32> = (0..vals.len() as u32).collect();
        for (_, kind) in builtins_and_kernels() {
            let mut k = kind.init();
            k.update_ints(&vals, &nulls, &sel).unwrap();
            let expected = match kind {
                // count(*) counts NULLs too.
                KernelKind::Count { star: true } => Value::Int(sel.len() as i64),
                KernelKind::Count { star: false } => Value::Int(0),
                _ => Value::Null,
            };
            assert_eq!(k.finalize(), expected);
        }
    }

    #[test]
    fn total_key_is_monotone_and_invertible() {
        let samples = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            1.5,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
        ];
        for &a in &samples {
            assert_eq!(
                f64_from_total_key(f64_total_key(a.to_bits())).to_bits(),
                a.to_bits()
            );
            for &b in &samples {
                let ord = a.total_cmp(&b);
                let key_ord = f64_total_key(a.to_bits()).cmp(&f64_total_key(b.to_bits()));
                assert_eq!(ord, key_ord, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn reductions_match_scalar_folds() {
        // With `--features simd` on AVX2 hardware this pins the intrinsic
        // path against the scalar fold; without it, it pins the fold itself.
        let iv: Vec<i64> = (0..219i64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64))
            .collect();
        let uv: Vec<u64> = iv.iter().map(|&x| x as u64).collect();
        assert_eq!(
            reduce::sum_i64(&iv),
            iv.iter().fold(0i64, |a, &x| a.wrapping_add(x))
        );
        assert_eq!(reduce::max_i64(&iv), iv.iter().copied().max().unwrap());
        assert_eq!(reduce::min_i64(&iv), iv.iter().copied().min().unwrap());
        assert_eq!(reduce::max_u64(&uv), uv.iter().copied().max().unwrap());
        assert_eq!(reduce::min_u64(&uv), uv.iter().copied().min().unwrap());
        assert_eq!(reduce::sum_i64(&[]), 0);
        assert_eq!(reduce::max_i64(&[]), i64::MIN);
        assert_eq!(reduce::min_u64(&[]), u64::MAX);
    }

    #[test]
    fn sum_and_avg_reject_strings_like_the_builtins() {
        let mut s = KernelKind::Sum.init();
        let err = s.update_value(&Value::str("x")).unwrap_err();
        assert!(matches!(err, AggError::BadInput { .. }));
        let mut a = KernelKind::Avg.init();
        assert!(a.update_value(&Value::str("x")).is_err());
        // count accepts anything.
        let mut c = KernelKind::Count { star: false }.init();
        c.update_value(&Value::str("x")).unwrap();
        c.update_value(&Value::All).unwrap();
        assert_eq!(c.finalize(), Value::Int(2));
    }

    #[test]
    fn empty_semantics() {
        assert_eq!(
            KernelKind::Count { star: true }.init().finalize(),
            Value::Int(0)
        );
        assert_eq!(KernelKind::Sum.init().finalize(), Value::Null);
        assert_eq!(KernelKind::Avg.init().finalize(), Value::Null);
        assert_eq!(KernelKind::Min.init().finalize(), Value::Null);
    }
}
