//! Parsed-query AST (pre-resolution).

use mdj_storage::Value;

/// An unresolved expression: references are plain or qualified names whose
/// meaning (base column, detail column, grouping-variable column, or prior
//  aggregate) is decided during compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum PExpr {
    /// Bare identifier (`prod`).
    Ident(String),
    /// Qualified identifier (`X.sale`, `Sales.month`).
    Qualified(String, String),
    Lit(Value),
    /// Positional `?` placeholder (0-based), bound at execute time by
    /// [`PreparedStatement::bind`](crate::prepare::PreparedStatement::bind).
    Param(usize),
    /// Aggregate call in an expression position (`avg(X.sale)`).
    AggCall {
        func: String,
        scope: Option<String>,
        /// `None` = `*`.
        column: Option<String>,
    },
    Binary {
        op: String,
        lhs: Box<PExpr>,
        rhs: Box<PExpr>,
    },
    Not(Box<PExpr>),
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Plain column (must be a grouping attribute).
    Column(String),
    /// Aggregate: `avg(sale)`, `count(*)`, `count(Z.*)`, `avg(X.sale)`.
    Agg {
        func: String,
        /// Grouping-variable scope (`Z` in `count(Z.*)`); `None` = the group
        /// itself.
        scope: Option<String>,
        /// `None` = `*`.
        column: Option<String>,
        alias: Option<String>,
    },
}

impl SelectItem {
    /// The output column name this item produces.
    pub fn output_name(&self) -> String {
        match self {
            SelectItem::Column(c) => c.clone(),
            SelectItem::Agg {
                func,
                scope,
                column,
                alias,
            } => {
                if let Some(a) = alias {
                    return a.clone();
                }
                let col = column.as_deref().unwrap_or("star");
                match scope {
                    Some(s) => format!("{func}_{s}_{col}"),
                    None => format!("{func}_{col}"),
                }
            }
        }
    }
}

/// A grouping variable (EMF-SQL `SUCH THAT` clause).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingVar {
    pub name: String,
    pub condition: PExpr,
}

/// The base-table-defining clause.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupClause {
    /// No grouping: a global aggregate (one group).
    None,
    /// `GROUP BY attrs [; vars SUCH THAT conds]`.
    GroupBy {
        attrs: Vec<String>,
        vars: Vec<GroupingVar>,
    },
    /// `ANALYZE BY shape(attrs)`.
    AnalyzeBy { shape: Shape, attrs: Vec<String> },
}

/// The `ANALYZE BY` shapes of Section 5.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    Group,
    Cube,
    Rollup,
    Unpivot,
    GroupingSets(Vec<Vec<String>>),
    /// An externally supplied base table (Example 2.4).
    Table(String),
}

/// One ORDER BY key: output column name plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub column: String,
    pub descending: bool,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub select: Vec<SelectItem>,
    pub from: String,
    pub where_clause: Option<PExpr>,
    pub group: GroupClause,
    pub having: Option<PExpr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
    /// Number of positional `?` placeholders the query contains.
    pub params: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_item_names() {
        assert_eq!(SelectItem::Column("prod".into()).output_name(), "prod");
        let a = SelectItem::Agg {
            func: "count".into(),
            scope: Some("Z".into()),
            column: None,
            alias: None,
        };
        assert_eq!(a.output_name(), "count_Z_star");
        let a = SelectItem::Agg {
            func: "avg".into(),
            scope: None,
            column: Some("sale".into()),
            alias: Some("a".into()),
        };
        assert_eq!(a.output_name(), "a");
    }
}
