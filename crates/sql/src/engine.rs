//! The end-to-end engine: parse → compile → optimize → execute → project.

use crate::ast::Query;
use crate::compile::{compile, CompiledQuery};
use crate::error::Result;
use crate::parser::parse;
use crate::prepare::PreparedStatement;
use mdj_algebra::{execute, explain::explain, optimize, Plan};
use mdj_core::ExecContext;
use mdj_storage::{Catalog, Relation, Value};

/// A SQL engine bound to a catalog and an execution context.
#[derive(Debug, Default)]
pub struct SqlEngine {
    pub catalog: Catalog,
    pub ctx: ExecContext,
}

impl SqlEngine {
    pub fn new(catalog: Catalog) -> Self {
        SqlEngine {
            catalog,
            ctx: ExecContext::new(),
        }
    }

    pub fn with_context(catalog: Catalog, ctx: ExecContext) -> Self {
        SqlEngine { catalog, ctx }
    }

    /// Register a relation under `name`.
    pub fn register(&mut self, name: impl Into<String>, relation: Relation) {
        self.catalog.register(name, relation);
    }

    /// Compile a query without executing it (for EXPLAIN-style inspection).
    pub fn compile(&self, sql: &str) -> Result<CompiledQuery> {
        let q = parse(sql)?;
        self.compile_ast(&q)
    }

    fn compile_ast(&self, q: &Query) -> Result<CompiledQuery> {
        if self.ctx.fault_should_fail_planner() {
            return Err(crate::error::SqlError::Compile(
                "injected fault: compile".into(),
            ));
        }
        compile(q, &self.catalog, self.ctx.registry())
    }

    /// Injected planner fault at the parse site: fails with a typed parse
    /// error before the lexer runs. Constant-false without an armed
    /// fault injector.
    fn fault_parse(&self) -> Result<()> {
        if self.ctx.fault_should_fail_planner() {
            return Err(crate::error::SqlError::Parse {
                near: "<fault-injection>".into(),
                message: "injected fault: parse".into(),
            });
        }
        Ok(())
    }

    /// Parse `sql` (which may contain positional `?` placeholders) into a
    /// reusable prepared statement. Parsing happens once; each
    /// [`execute_prepared`](Self::execute_prepared) call binds values and
    /// re-plans against the current catalog.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement> {
        PreparedStatement::parse(sql)
    }

    /// Bind `params` to a prepared statement and run it end to end.
    pub fn execute_prepared(&self, stmt: &PreparedStatement, params: &[Value]) -> Result<Relation> {
        self.fault_parse()?;
        let q = stmt.bind(params)?;
        self.run_query(&q)
    }

    /// Compile, optimize, and return the physical plan text.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let compiled = self.compile(sql)?;
        let optimized = optimize(compiled.plan, &self.catalog, self.ctx.registry())?;
        Ok(explain(&optimized))
    }

    /// Run a query end to end. `ANALYZE BY` cuboid-family queries take the
    /// fast physical path (per-cuboid hash probes, or Theorem 4.5 roll-up
    /// chains when every aggregate is distributive) instead of the generic
    /// wildcard-θ plan.
    pub fn query(&self, sql: &str) -> Result<Relation> {
        self.fault_parse()?;
        let q = parse(sql)?;
        self.run_query(&q)
    }

    /// Shared execution path: compile an AST, pick the fast cuboid path or
    /// the generic optimized plan, and present the result.
    fn run_query(&self, q: &Query) -> Result<Relation> {
        let compiled = self.compile_ast(q)?;
        if let Some(fast) = &compiled.fast_cube {
            let source = execute(&fast.source, &self.catalog, &self.ctx)?;
            let dims: Vec<&str> = fast.dims.iter().map(String::as_str).collect();
            let spec = mdj_cube::CubeSpec::new(&dims, fast.aggs.clone());
            let use_rollup_chain = fast.shape == mdj_cube::sets::SetShape::Cube
                && mdj_agg::rollup::is_rollupable(&fast.aggs, self.ctx.registry());
            let out = if use_rollup_chain {
                mdj_cube::rollup_chain::cube_rollup_chain(&source, &spec, &self.ctx)
                    .map_err(mdj_algebra::AlgebraError::from)?
            } else {
                let masks = mdj_cube::sets::shape_masks(dims.len(), &fast.shape);
                mdj_cube::sets::sets_agg(&source, &spec, &masks, &self.ctx)
                    .map_err(mdj_algebra::AlgebraError::from)?
            };
            return self.present(out, &compiled);
        }
        if self.ctx.fault_should_fail_planner() {
            return Err(
                mdj_algebra::AlgebraError::Core(mdj_core::CoreError::Internal(
                    "injected fault: optimize".into(),
                ))
                .into(),
            );
        }
        let optimized = optimize(compiled.plan.clone(), &self.catalog, self.ctx.registry())?;
        self.finish(optimized, &compiled)
    }

    /// Run a query *without* the optimizer (ablation / debugging).
    pub fn query_unoptimized(&self, sql: &str) -> Result<Relation> {
        let compiled = self.compile(sql)?;
        let plan = compiled.plan.clone();
        self.finish(plan, &compiled)
    }

    fn finish(&self, plan: Plan, compiled: &CompiledQuery) -> Result<Relation> {
        let out = execute(&plan, &self.catalog, &self.ctx)?;
        self.present(out, compiled)
    }

    /// Apply HAVING, the select-list projection, ORDER BY, and LIMIT.
    fn present(&self, mut out: Relation, compiled: &CompiledQuery) -> Result<Relation> {
        if let Some(having) = &compiled.having {
            let bound = having
                .bind(None, Some(out.schema()))
                .map_err(mdj_algebra::AlgebraError::from)?;
            let mut kept = Relation::empty(out.schema().clone());
            for row in out.iter() {
                if bound
                    .eval_bool(&[], row.values())
                    .map_err(mdj_algebra::AlgebraError::from)?
                {
                    kept.push_unchecked(row.clone());
                }
            }
            out = kept;
        }
        let names: Vec<&str> = compiled.output_cols.iter().map(String::as_str).collect();
        let mut out = out
            .project(&names)
            .map_err(mdj_algebra::AlgebraError::from)?;
        if !compiled.order_by.is_empty() {
            let keys: Vec<(usize, bool)> = compiled
                .order_by
                .iter()
                .map(|k| {
                    out.schema()
                        .index_of(&k.column)
                        .map(|i| (i, k.descending))
                        .map_err(|e| crate::SqlError::from(mdj_algebra::AlgebraError::from(e)))
                })
                .collect::<Result<_>>()?;
            out.rows_mut().sort_by(|a, b| {
                for &(i, desc) in &keys {
                    let ord = a[i].cmp(&b[i]);
                    let ord = if desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = compiled.limit {
            out.rows_mut().truncate(n);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdj_storage::{DataType, Row, Schema, Value};

    fn engine() -> SqlEngine {
        let schema = Schema::from_pairs(&[
            ("cust", DataType::Int),
            ("prod", DataType::Int),
            ("month", DataType::Int),
            ("year", DataType::Int),
            ("state", DataType::Str),
            ("sale", DataType::Float),
        ]);
        let mk = |c: i64, p: i64, m: i64, y: i64, st: &str, s: f64| {
            Row::from_values(vec![
                Value::Int(c),
                Value::Int(p),
                Value::Int(m),
                Value::Int(y),
                Value::str(st),
                Value::Float(s),
            ])
        };
        let sales = Relation::from_rows(
            schema,
            vec![
                mk(1, 10, 1, 1997, "NY", 10.0),
                mk(1, 10, 2, 1997, "NY", 30.0),
                mk(1, 10, 3, 1997, "NJ", 20.0),
                mk(2, 10, 2, 1997, "CT", 50.0),
                mk(2, 20, 2, 1997, "NY", 40.0),
            ],
        );
        let mut e = SqlEngine::new(Catalog::new());
        e.register("Sales", sales);
        e
    }

    #[test]
    fn group_by_query() {
        let out = engine()
            .query("select cust, sum(sale), count(*) from Sales group by cust")
            .unwrap();
        assert_eq!(out.schema().names(), vec!["cust", "sum_sale", "count_star"]);
        let c1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(c1[1], Value::Float(60.0));
        assert_eq!(c1[2], Value::Int(3));
    }

    #[test]
    fn where_filters_detail() {
        let out = engine()
            .query("select cust, count(*) from Sales where state = 'NY' group by cust")
            .unwrap();
        // Base table is built from the filtered source: only customers with
        // NY purchases appear.
        assert_eq!(out.len(), 2);
        let c1 = out.rows().iter().find(|r| r[0] == Value::Int(1)).unwrap();
        assert_eq!(c1[1], Value::Int(2));
    }

    #[test]
    fn analyze_by_cube_query() {
        let out = engine()
            .query("select prod, month, sum(sale) from Sales analyze by cube(prod, month)")
            .unwrap();
        let apex = out
            .rows()
            .iter()
            .find(|r| r[0].is_all() && r[1].is_all())
            .unwrap();
        assert_eq!(apex[2], Value::Float(150.0));
    }

    #[test]
    fn analyze_by_grouping_sets_marginals() {
        let out = engine()
            .query(
                "select prod, month, sum(sale) from Sales \
                 analyze by grouping sets ((prod), (month))",
            )
            .unwrap();
        // Marginals only: 2 prods + 3 months = 5 rows.
        assert_eq!(out.len(), 5);
        for row in out.iter() {
            let all_count = row.values()[..2].iter().filter(|v| v.is_all()).count();
            assert_eq!(all_count, 1);
        }
    }

    #[test]
    fn tri_state_grouping_variables() {
        let out = engine()
            .query(
                "select cust, avg(X.sale) as avg_ny, avg(Y.sale) as avg_nj, avg(Z.sale) as avg_ct \
                 from Sales group by cust ; X, Y, Z \
                 such that X.cust = cust and X.state = 'NY', \
                           Y.cust = cust and Y.state = 'NJ', \
                           Z.cust = cust and Z.state = 'CT'",
            )
            .unwrap();
        assert_eq!(
            out.schema().names(),
            vec!["cust", "avg_ny", "avg_nj", "avg_ct"]
        );
        let c2 = out.rows().iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(c2[1], Value::Float(40.0));
        assert_eq!(c2[2], Value::Null); // outer-join semantics
        assert_eq!(c2[3], Value::Float(50.0));
    }

    #[test]
    fn count_above_group_average() {
        let out = engine()
            .query(
                "select cust, count(Z.*) from Sales group by cust ; Z \
                 such that Z.cust = cust and Z.sale > avg(sale)",
            )
            .unwrap();
        // cust 1: avg 20, above: 30 → 1. cust 2: avg 45, above: 50 → 1.
        for row in out.iter() {
            assert_eq!(row[1], Value::Int(1));
        }
    }

    #[test]
    fn having_filters_groups() {
        let out = engine()
            .query("select cust, sum(sale) from Sales group by cust having sum(sale) > 80")
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(2));
    }

    #[test]
    fn global_aggregate() {
        let out = engine()
            .query("select count(*), max(sale) from Sales")
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(5));
        assert_eq!(out.rows()[0][1], Value::Float(50.0));
    }

    #[test]
    fn external_base_table_example_2_4() {
        let mut e = engine();
        // Representative cube points supplied externally.
        let schema = Schema::from_pairs(&[("prod", DataType::Int), ("month", DataType::Int)]);
        let t = Relation::from_rows(
            schema,
            vec![
                Row::new(vec![Value::Int(10), Value::All]),
                Row::new(vec![Value::All, Value::Int(2)]),
            ],
        );
        e.register("T", t);
        let out = e
            .query("select prod, month, sum(sale) from Sales analyze by T(prod, month)")
            .unwrap();
        assert_eq!(out.len(), 2);
        let p10 = out.rows().iter().find(|r| r[0] == Value::Int(10)).unwrap();
        assert_eq!(p10[2], Value::Float(110.0));
        let m2 = out.rows().iter().find(|r| r[1] == Value::Int(2)).unwrap();
        assert_eq!(m2[2], Value::Float(120.0));
    }

    #[test]
    fn explain_returns_plan_text() {
        let s = engine()
            .explain("select cust, avg(sale) from Sales group by cust")
            .unwrap();
        assert!(s.contains("MDJoin"));
    }

    #[test]
    fn optimized_equals_unoptimized() {
        let e = engine();
        let sql = "select cust, avg(X.sale) as a, avg(Y.sale) as b from Sales \
                   group by cust ; X, Y \
                   such that X.cust = cust and X.state = 'NY', \
                             Y.cust = cust and Y.state = 'NJ'";
        let a = e.query(sql).unwrap();
        let b = e.query_unoptimized(sql).unwrap();
        assert!(a.same_multiset(&b));
    }

    #[test]
    fn fast_cube_path_matches_generic_plan() {
        let e = engine();
        for sql in [
            "select prod, month, sum(sale), count(*) from Sales analyze by cube(prod, month)",
            "select prod, month, sum(sale) from Sales analyze by rollup(prod, month)",
            "select prod, month, sum(sale) from Sales analyze by unpivot(prod, month)",
            "select prod, month, sum(sale) from Sales analyze by grouping sets ((prod), (month))",
            // Holistic aggregate: rollup-chain is inapplicable, per-cuboid
            // expansion must kick in.
            "select prod, month, median(sale) from Sales analyze by cube(prod, month)",
            // WHERE must filter the fast path's source too.
            "select prod, month, sum(sale) from Sales where state = 'NY' analyze by cube(prod, month)",
        ] {
            let fast = e.query(sql).unwrap();
            let generic = e.query_unoptimized(sql).unwrap();
            assert!(fast.same_multiset(&generic), "{sql}\n{fast}\nvs\n{generic}");
        }
    }

    #[test]
    fn fast_cube_not_used_for_external_tables() {
        let e = engine();
        let compiled = e
            .compile("select prod, sum(sale) from Sales analyze by cube(prod, month)")
            .unwrap();
        assert!(compiled.fast_cube.is_some());
        let compiled = e
            .compile("select cust, sum(sale) from Sales group by cust")
            .unwrap();
        assert!(compiled.fast_cube.is_none());
    }

    #[test]
    fn order_by_and_limit() {
        let out = engine()
            .query("select cust, sum(sale) from Sales group by cust order by sum_sale desc")
            .unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(2)); // 90 > 60
        let out = engine()
            .query(
                "select prod, month, sum(sale) from Sales analyze by cube(prod, month) \
                 order by sum_sale desc limit 1",
            )
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][2], Value::Float(150.0)); // the apex
    }

    #[test]
    fn order_by_multiple_keys_and_asc() {
        let out = engine()
            .query(
                "select cust, month, count(*) from Sales group by cust, month \
                    order by cust asc, month desc",
            )
            .unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(1));
        assert_eq!(out.rows()[0][1], Value::Int(3)); // cust 1's months desc
    }

    #[test]
    fn order_by_unknown_column_rejected() {
        let err = engine().query("select cust, sum(sale) from Sales group by cust order by bogus");
        assert!(err.is_err());
    }

    #[test]
    fn unknown_table_is_an_error() {
        let e = engine();
        assert!(e.query("select count(*) from Nope").is_err());
    }

    #[test]
    fn prepared_statement_rebinds_per_execution() {
        let e = engine();
        let stmt = e
            .prepare("select cust, sum(sale) from Sales where month = ? group by cust")
            .unwrap();
        assert_eq!(stmt.param_count(), 1);
        let feb = e.execute_prepared(&stmt, &[Value::Int(2)]).unwrap();
        let inline = e
            .query("select cust, sum(sale) from Sales where month = 2 group by cust")
            .unwrap();
        assert!(feb.same_multiset(&inline));
        let mar = e.execute_prepared(&stmt, &[Value::Int(3)]).unwrap();
        assert_eq!(mar.len(), 1);
        assert_eq!(mar.rows()[0][1], Value::Float(20.0));
    }

    #[test]
    fn prepared_statement_params_reach_grouping_variables() {
        let e = engine();
        let stmt = e
            .prepare(
                "select cust, count(Z.*) from Sales group by cust ; Z \
                 such that Z.cust = cust and Z.sale > ?",
            )
            .unwrap();
        let out = e.execute_prepared(&stmt, &[Value::Float(25.0)]).unwrap();
        let inline = e
            .query(
                "select cust, count(Z.*) from Sales group by cust ; Z \
                 such that Z.cust = cust and Z.sale > 25.0",
            )
            .unwrap();
        assert!(out.same_multiset(&inline));
    }

    #[test]
    fn unbound_placeholder_rejected_by_direct_query() {
        let e = engine();
        let err = e
            .query("select count(*) from Sales where sale > ?")
            .unwrap_err();
        assert!(matches!(err, crate::SqlError::Bind(_)), "{err}");
    }

    #[test]
    fn wrong_bind_arity_rejected() {
        let e = engine();
        let stmt = e
            .prepare("select count(*) from Sales where sale > ?")
            .unwrap();
        assert!(e.execute_prepared(&stmt, &[]).is_err());
    }
}
