//! Prepared statements: parse once, bind positional `?` parameters per
//! execution.
//!
//! A [`PreparedStatement`] holds the parsed AST of a query containing
//! `?` placeholders. [`bind`](PreparedStatement::bind) substitutes literal
//! values for the placeholders — a pure AST-to-AST rewrite — producing a
//! parameter-free [`Query`] that compiles through the ordinary pipeline.
//! This keeps parameters out of the plan and executor layers entirely:
//! the server re-plans per execution but never re-parses, and a statement
//! is immutable and shareable across queries of one session.

use crate::ast::{GroupClause, GroupingVar, PExpr, Query};
use crate::error::{Result, SqlError};
use crate::parser::parse;
use mdj_storage::Value;

/// A parsed, parameterized query awaiting per-execution bind values.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedStatement {
    query: Query,
}

impl PreparedStatement {
    /// Parse `sql` into a prepared statement. The statement may contain any
    /// number of `?` placeholders (including zero, in which case
    /// [`bind`](Self::bind) with `&[]` reproduces the plain query).
    pub fn parse(sql: &str) -> Result<Self> {
        Ok(PreparedStatement { query: parse(sql)? })
    }

    /// Number of `?` placeholders, in textual order.
    pub fn param_count(&self) -> usize {
        self.query.params
    }

    /// The underlying parsed query (placeholders intact).
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Substitute `values[i]` for placeholder `?i`, yielding an executable
    /// parameter-free query. Arity must match exactly.
    pub fn bind(&self, values: &[Value]) -> Result<Query> {
        if values.len() != self.query.params {
            return Err(SqlError::Bind(format!(
                "statement takes {} parameter(s) but {} value(s) were bound",
                self.query.params,
                values.len()
            )));
        }
        let mut q = self.query.clone();
        if let Some(w) = &mut q.where_clause {
            substitute(w, values)?;
        }
        if let GroupClause::GroupBy { vars, .. } = &mut q.group {
            for GroupingVar { condition, .. } in vars {
                substitute(condition, values)?;
            }
        }
        if let Some(h) = &mut q.having {
            substitute(h, values)?;
        }
        Ok(q)
    }
}

/// Replace every `PExpr::Param(i)` in `e` with `Lit(values[i])`.
fn substitute(e: &mut PExpr, values: &[Value]) -> Result<()> {
    match e {
        PExpr::Param(i) => {
            let v = values
                .get(*i)
                .ok_or_else(|| SqlError::Bind(format!("parameter ?{} out of range", *i + 1)))?;
            *e = PExpr::Lit(v.clone());
            Ok(())
        }
        PExpr::Binary { lhs, rhs, .. } => {
            substitute(lhs, values)?;
            substitute(rhs, values)
        }
        PExpr::Not(inner) => substitute(inner, values),
        PExpr::Ident(_) | PExpr::Qualified(..) | PExpr::Lit(_) | PExpr::AggCall { .. } => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_substitutes_in_textual_order() {
        let stmt = PreparedStatement::parse(
            "select cust, sum(sale) from Sales where month = ? group by cust having sum(sale) > ?",
        )
        .unwrap();
        assert_eq!(stmt.param_count(), 2);
        let q = stmt.bind(&[Value::Int(2), Value::Float(10.0)]).unwrap();
        let w = format!("{:?}", q.where_clause.unwrap());
        assert!(w.contains("Int(2)"), "{w}");
        let h = format!("{:?}", q.having.unwrap());
        assert!(h.contains("Float(10.0)"), "{h}");
    }

    #[test]
    fn bind_reaches_grouping_variable_conditions() {
        let stmt = PreparedStatement::parse(
            "select cust, count(Z.*) from Sales group by cust ; Z \
             such that Z.cust = cust and Z.sale > ?",
        )
        .unwrap();
        assert_eq!(stmt.param_count(), 1);
        let q = stmt.bind(&[Value::Float(25.0)]).unwrap();
        match q.group {
            GroupClause::GroupBy { vars, .. } => {
                let c = format!("{:?}", vars[0].condition);
                assert!(c.contains("Float(25.0)"), "{c}");
                assert!(!c.contains("Param"), "{c}");
            }
            _ => panic!("wrong clause"),
        }
    }

    #[test]
    fn arity_mismatch_is_a_bind_error() {
        let stmt = PreparedStatement::parse("select count(*) from Sales where sale > ?").unwrap();
        assert!(matches!(stmt.bind(&[]), Err(SqlError::Bind(_))));
        assert!(matches!(
            stmt.bind(&[Value::Int(1), Value::Int(2)]),
            Err(SqlError::Bind(_))
        ));
    }

    #[test]
    fn zero_param_statement_binds_empty() {
        let stmt = PreparedStatement::parse("select count(*) from Sales").unwrap();
        assert_eq!(stmt.param_count(), 0);
        assert!(stmt.bind(&[]).is_ok());
    }
}
