//! # mdj-sql
//!
//! The query-language surface the paper proposes in Section 5, compiled to
//! MD-join algebra plans.
//!
//! Two extensions over plain `SELECT … FROM … [WHERE …] GROUP BY …`:
//!
//! * **`ANALYZE BY`** — replaces `GROUP BY`/`CUBE BY` with a clause whose
//!   first argument is *any* base-table-producing operation:
//!   `analyze by cube(prod, month, state)`, `analyze by rollup(…)`,
//!   `analyze by unpivot(…)`, `analyze by grouping sets((a),(b,c))`,
//!   `analyze by group(…)`, or `analyze by T(prod, month, state)` for an
//!   externally supplied base table `T` (Example 2.4).
//!
//! * **Grouping variables** (EMF-SQL \[Cha99\], the paper's Section 5 example):
//!   `GROUP BY attrs ; X, Y, Z SUCH THAT <cond>, <cond>, <cond>` declares
//!   per-group subsets of the detail table; the select list and later
//!   conditions may aggregate them (`count(Z.*)`, `avg(X.sale)`). Each
//!   grouping variable compiles to one MD-join; independent variables are
//!   coalesced into a single scan by the optimizer.
//!
//! ```
//! use mdj_sql::SqlEngine;
//! use mdj_storage::{Catalog, Relation, Row, Schema, DataType, Value};
//!
//! let schema = Schema::from_pairs(&[("cust", DataType::Int), ("sale", DataType::Float)]);
//! let sales = Relation::from_rows(schema, vec![
//!     Row::new(vec![Value::Int(1), Value::Float(10.0)]),
//!     Row::new(vec![Value::Int(1), Value::Float(20.0)]),
//! ]);
//! let mut catalog = Catalog::new();
//! catalog.register("Sales", sales);
//! let engine = SqlEngine::new(catalog);
//! let out = engine.query("select cust, avg(sale) from Sales group by cust").unwrap();
//! assert_eq!(out.rows()[0][1], Value::Float(15.0));
//! ```

pub mod ast;
pub mod compile;
pub mod engine;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod prepare;

pub use engine::SqlEngine;
pub use error::{Result, SqlError};
pub use prepare::PreparedStatement;
