//! Recursive-descent parser for the extended SQL surface.

use crate::ast::{GroupClause, GroupingVar, OrderKey, PExpr, Query, SelectItem, Shape};
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, Token};
use mdj_storage::Value;

/// Parse one query.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Count of `?` placeholders seen so far; each gets the next 0-based
    /// position in textual order.
    params: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(SqlError::Parse {
            near: format!("{:?}", self.peek()),
            message: message.into(),
        })
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Token::Keyword(k) if k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Token::Sym(s) if s == sym) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            self.err(format!("expected `{sym}`"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.advance();
                Ok(name)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            self.err("trailing input after query")
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let group = self.group_clause()?;
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let mut keys = vec![self.order_key()?];
            while self.eat_sym(",") {
                keys.push(self.order_key()?);
            }
            keys
        } else {
            Vec::new()
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                Token::Int(n) if n >= 0 => Some(n as usize),
                _ => return self.err("LIMIT expects a non-negative integer"),
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            where_clause,
            group,
            having,
            order_by,
            limit,
            params: self.params,
        })
    }

    fn order_key(&mut self) -> Result<OrderKey> {
        let column = self.ident()?;
        let descending = if self.eat_keyword("DESC") {
            true
        } else {
            self.eat_keyword("ASC");
            false
        };
        Ok(OrderKey { column, descending })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = vec![self.select_item()?];
        while self.eat_sym(",") {
            items.push(self.select_item()?);
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let name = self.ident()?;
        if self.eat_sym("(") {
            // Aggregate call.
            let (scope, column) = self.agg_arg()?;
            self.expect_sym(")")?;
            let alias = if self.eat_keyword("AS") {
                Some(self.ident()?)
            } else {
                None
            };
            Ok(SelectItem::Agg {
                func: name.to_ascii_lowercase(),
                scope,
                column,
                alias,
            })
        } else {
            Ok(SelectItem::Column(name))
        }
    }

    /// The argument of an aggregate call: `*`, `col`, `V.*`, or `V.col`.
    fn agg_arg(&mut self) -> Result<(Option<String>, Option<String>)> {
        if self.eat_sym("*") {
            return Ok((None, None));
        }
        let first = self.ident()?;
        if self.eat_sym(".") {
            if self.eat_sym("*") {
                Ok((Some(first), None))
            } else {
                let col = self.ident()?;
                Ok((Some(first), Some(col)))
            }
        } else {
            Ok((None, Some(first)))
        }
    }

    fn group_clause(&mut self) -> Result<GroupClause> {
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            let attrs = self.ident_list()?;
            let vars = if self.eat_sym(";") {
                self.grouping_vars()?
            } else {
                Vec::new()
            };
            return Ok(GroupClause::GroupBy { attrs, vars });
        }
        if self.eat_keyword("ANALYZE") {
            self.expect_keyword("BY")?;
            return self.analyze_shape();
        }
        Ok(GroupClause::None)
    }

    fn ident_list(&mut self) -> Result<Vec<String>> {
        let mut names = vec![self.ident()?];
        while matches!(self.peek(), Token::Sym(s) if s == ",") {
            // A comma might end the attr list if followed by the vars clause;
            // attr lists end at `;`, so commas always continue the list here.
            self.advance();
            names.push(self.ident()?);
        }
        Ok(names)
    }

    fn grouping_vars(&mut self) -> Result<Vec<GroupingVar>> {
        let names = self.ident_list()?;
        self.expect_keyword("SUCH")?;
        self.expect_keyword("THAT")?;
        let mut conds = vec![self.expr()?];
        while self.eat_sym(",") {
            conds.push(self.expr()?);
        }
        if conds.len() != names.len() {
            return self.err(format!(
                "{} grouping variables but {} SUCH THAT conditions",
                names.len(),
                conds.len()
            ));
        }
        Ok(names
            .into_iter()
            .zip(conds)
            .map(|(name, condition)| GroupingVar { name, condition })
            .collect())
    }

    fn analyze_shape(&mut self) -> Result<GroupClause> {
        // GROUPING SETS has two keywords.
        if self.eat_keyword("GROUPING") {
            self.expect_keyword("SETS")?;
            self.expect_sym("(")?;
            let mut sets = Vec::new();
            loop {
                self.expect_sym("(")?;
                let set = self.ident_list()?;
                self.expect_sym(")")?;
                sets.push(set);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            // Dims: union of set members in first appearance order.
            let mut attrs: Vec<String> = Vec::new();
            for set in &sets {
                for a in set {
                    if !attrs.contains(a) {
                        attrs.push(a.clone());
                    }
                }
            }
            return Ok(GroupClause::AnalyzeBy {
                shape: Shape::GroupingSets(sets),
                attrs,
            });
        }
        let shape = if self.eat_keyword("CUBE") {
            Shape::Cube
        } else if self.eat_keyword("ROLLUP") {
            Shape::Rollup
        } else if self.eat_keyword("UNPIVOT") {
            Shape::Unpivot
        } else if self.eat_keyword("GROUP") {
            Shape::Group
        } else {
            Shape::Table(self.ident()?)
        };
        self.expect_sym("(")?;
        let attrs = self.ident_list()?;
        self.expect_sym(")")?;
        Ok(GroupClause::AnalyzeBy { shape, attrs })
    }

    // ----- expressions -----

    fn expr(&mut self) -> Result<PExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<PExpr> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = PExpr::Binary {
                op: "OR".into(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<PExpr> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = PExpr::Binary {
                op: "AND".into(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<PExpr> {
        if self.eat_keyword("NOT") {
            Ok(PExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<PExpr> {
        let lhs = self.add_expr()?;
        if self.eat_keyword("BETWEEN") {
            // `x BETWEEN lo AND hi` desugars to `x >= lo AND x <= hi`.
            let lo = self.add_expr()?;
            self.expect_keyword("AND")?;
            let hi = self.add_expr()?;
            let ge = PExpr::Binary {
                op: ">=".into(),
                lhs: Box::new(lhs.clone()),
                rhs: Box::new(lo),
            };
            let le = PExpr::Binary {
                op: "<=".into(),
                lhs: Box::new(lhs),
                rhs: Box::new(hi),
            };
            return Ok(PExpr::Binary {
                op: "AND".into(),
                lhs: Box::new(ge),
                rhs: Box::new(le),
            });
        }
        let op = match self.peek() {
            Token::Sym(s) if ["=", "<>", "<", "<=", ">", ">="].contains(&s.as_str()) => s.clone(),
            _ => return Ok(lhs),
        };
        self.advance();
        let rhs = self.add_expr()?;
        Ok(PExpr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<PExpr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Sym(s) if s == "+" || s == "-" => s.clone(),
                _ => break,
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = PExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<PExpr> {
        let mut lhs = self.atom()?;
        loop {
            let op = match self.peek() {
                Token::Sym(s) if s == "*" || s == "/" || s == "%" => s.clone(),
                _ => break,
            };
            self.advance();
            let rhs = self.atom()?;
            lhs = PExpr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<PExpr> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.advance();
                Ok(PExpr::Lit(Value::Int(v)))
            }
            Token::Float(v) => {
                self.advance();
                Ok(PExpr::Lit(Value::Float(v)))
            }
            Token::Str(s) => {
                self.advance();
                Ok(PExpr::Lit(Value::str(s)))
            }
            Token::Sym(s) if s == "?" => {
                self.advance();
                let pos = self.params;
                self.params += 1;
                Ok(PExpr::Param(pos))
            }
            Token::Sym(s) if s == "(" => {
                self.advance();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Token::Sym(s) if s == "-" => {
                // Unary minus: 0 - atom.
                self.advance();
                let e = self.atom()?;
                Ok(PExpr::Binary {
                    op: "-".into(),
                    lhs: Box::new(PExpr::Lit(Value::Int(0))),
                    rhs: Box::new(e),
                })
            }
            Token::Ident(name) => {
                self.advance();
                if self.eat_sym("(") {
                    let (scope, column) = self.agg_arg()?;
                    self.expect_sym(")")?;
                    return Ok(PExpr::AggCall {
                        func: name.to_ascii_lowercase(),
                        scope,
                        column,
                    });
                }
                if matches!(self.peek(), Token::Sym(s) if s == ".")
                    && matches!(self.peek2(), Token::Ident(_))
                {
                    self.advance();
                    let col = self.ident()?;
                    return Ok(PExpr::Qualified(name, col));
                }
                Ok(PExpr::Ident(name))
            }
            _ => self.err("expected expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_group_by() {
        let q = parse("select cust, avg(sale) from Sales group by cust").unwrap();
        assert_eq!(q.from, "Sales");
        assert_eq!(q.select.len(), 2);
        match &q.group {
            GroupClause::GroupBy { attrs, vars } => {
                assert_eq!(attrs, &["cust"]);
                assert!(vars.is_empty());
            }
            _ => panic!("wrong clause"),
        }
    }

    #[test]
    fn analyze_by_cube() {
        let q = parse(
            "select prod, month, state, sum(sale) from Sales analyze by cube(prod, month, state)",
        )
        .unwrap();
        match &q.group {
            GroupClause::AnalyzeBy { shape, attrs } => {
                assert_eq!(*shape, Shape::Cube);
                assert_eq!(attrs, &["prod", "month", "state"]);
            }
            _ => panic!("wrong clause"),
        }
    }

    #[test]
    fn analyze_by_table_and_unpivot() {
        let q = parse("select prod, sum(sale) from Sales analyze by T(prod, month)").unwrap();
        match &q.group {
            GroupClause::AnalyzeBy { shape, .. } => {
                assert_eq!(*shape, Shape::Table("T".into()))
            }
            _ => panic!(),
        }
        let q = parse("select prod, sum(sale) from Sales analyze by unpivot(prod, month)").unwrap();
        assert!(matches!(
            q.group,
            GroupClause::AnalyzeBy {
                shape: Shape::Unpivot,
                ..
            }
        ));
    }

    #[test]
    fn grouping_sets() {
        let q = parse(
            "select prod, month, state, sum(sale) from Sales analyze by grouping sets ((prod), (month), (state))",
        )
        .unwrap();
        match &q.group {
            GroupClause::AnalyzeBy {
                shape: Shape::GroupingSets(sets),
                attrs,
            } => {
                assert_eq!(sets.len(), 3);
                assert_eq!(attrs, &["prod", "month", "state"]);
            }
            _ => panic!("wrong clause"),
        }
    }

    #[test]
    fn grouping_variables_example_2_5() {
        let q = parse(
            "select prod, month, count(Z.*) from Sales where year = 1997 \
             group by prod, month ; X, Y, Z \
             such that X.prod = prod and X.month = month - 1, \
                       Y.prod = prod and Y.month = month + 1, \
                       Z.prod = prod and Z.month = month and Z.sale > avg(X.sale) and Z.sale < avg(Y.sale)",
        )
        .unwrap();
        match &q.group {
            GroupClause::GroupBy { attrs, vars } => {
                assert_eq!(attrs, &["prod", "month"]);
                assert_eq!(vars.len(), 3);
                assert_eq!(vars[2].name, "Z");
                // Z's condition mentions an AggCall over X.
                let s = format!("{:?}", vars[2].condition);
                assert!(s.contains("AggCall"));
            }
            _ => panic!("wrong clause"),
        }
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn count_star_and_scoped_star() {
        let q = parse(
            "select count(*), count(Z.*) from Sales group by cust ; Z such that Z.cust = cust",
        )
        .unwrap();
        match &q.select[0] {
            SelectItem::Agg { scope, column, .. } => {
                assert!(scope.is_none() && column.is_none())
            }
            _ => panic!(),
        }
        match &q.select[1] {
            SelectItem::Agg { scope, column, .. } => {
                assert_eq!(scope.as_deref(), Some("Z"));
                assert!(column.is_none());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn operator_precedence() {
        let q = parse("select count(*) from T where a = 1 + 2 * 3 and b = 2 or c = 3").unwrap();
        let w = format!("{:?}", q.where_clause.unwrap());
        // OR at top.
        assert!(w.starts_with("Binary { op: \"OR\""));
    }

    #[test]
    fn unary_minus_and_not() {
        let q = parse("select count(*) from T where not a < -1").unwrap();
        let w = format!("{:?}", q.where_clause.unwrap());
        assert!(w.contains("Not"));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("select from T").is_err());
        assert!(parse("select a from T group cust").is_err());
        assert!(parse("select a from T where").is_err());
        assert!(parse("select a from T extra").is_err());
        assert!(parse("select a from T group by a ; X such that X.a = a, X.b = b").is_err());
    }

    #[test]
    fn between_desugars_to_range() {
        let q = parse("select count(*) from Sales where year between 1994 and 1996").unwrap();
        let w = format!("{:?}", q.where_clause.unwrap());
        assert!(w.contains("\">=\""));
        assert!(w.contains("\"<=\""));
        // BETWEEN binds tighter than AND:
        let q = parse("select count(*) from Sales where year between 1994 and 1996 and month = 2")
            .unwrap();
        let w = format!("{:?}", q.where_clause.unwrap());
        assert!(w.starts_with("Binary { op: \"AND\""));
    }

    #[test]
    fn order_by_and_limit_parse() {
        let q = parse(
            "select cust, sum(sale) from Sales group by cust \
                       order by sum_sale desc, cust limit 5",
        )
        .unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(q.order_by[0].descending);
        assert!(!q.order_by[1].descending);
        assert_eq!(q.limit, Some(5));
        assert!(parse("select a from T order by a limit x").is_err());
    }

    #[test]
    fn having_clause_parses() {
        let q =
            parse("select cust, sum(sale) from Sales group by cust having sum(sale) > 10").unwrap();
        assert!(q.having.is_some());
    }
}
